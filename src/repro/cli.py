"""The ``repro`` command-line interface: one entry point for every way of running this
reproduction.

Subcommands
-----------
``repro run <experiment>``
    Run one of the figure-level experiment harnesses (scaled-down by default) and print
    its text report.
``repro matrix``
    Expand a declarative experiment matrix (scenario kinds × protocols × sizes × seeds)
    and execute it on a sharded multiprocess pool, writing JSON/CSV/markdown artifacts.
``repro bench``
    Run the perf-trajectory benchmark (``benchmarks/run_bench.py``) from a source
    checkout.
``repro report <aggregate.json>``
    Re-render the markdown summary of a previously written matrix aggregate.
``repro lint``
    Run the AST-based determinism & invariant linter (``repro.lint``) over the
    source tree — the cheapest of the CI gates, run ahead of tier-1.

Examples, benchmarks and CI all drive these same code paths: the CI gate
(``.github/workflows/ci.yml`` / ``scripts/ci.sh``) runs a mini-matrix through
``repro matrix`` and compares the aggregate bytes across worker counts.
"""

from __future__ import annotations

import argparse
import json
import runpy
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.version import __version__


def _build_runners() -> Dict[str, Callable]:
    """Experiments runnable via ``repro run``: CLI args -> a harness result with
    ``to_text()``. Built on demand so the CLI starts without importing the stack."""
    from repro import experiments as exp

    return {
        "quick": lambda a: exp.quick_croupier_run(
            n_public=max(1, a.nodes // 5),
            n_private=a.nodes - max(1, a.nodes // 5),
            rounds=a.rounds,
            seed=a.seed,
            latency=a.latency,
        ),
        "history-static": lambda a: exp.run_history_window_experiment(
            dynamic=False,
            n_public=max(1, a.nodes // 5),
            n_private=a.nodes - max(1, a.nodes // 5),
            rounds=a.rounds,
            seed=a.seed,
            latency=a.latency,
        ),
        "history-dynamic": lambda a: exp.run_history_window_experiment(
            dynamic=True,
            n_public=max(1, a.nodes // 5),
            n_private=a.nodes - max(1, a.nodes // 5),
            rounds=a.rounds,
            seed=a.seed,
            latency=a.latency,
        ),
        "system-size": lambda a: exp.run_system_size_experiment(
            sizes=(a.nodes // 2, a.nodes), rounds=a.rounds, seed=a.seed, latency=a.latency
        ),
        "ratio-sweep": lambda a: exp.run_ratio_sweep_experiment(
            total_nodes=a.nodes, rounds=a.rounds, seed=a.seed, latency=a.latency
        ),
        "churn": lambda a: exp.run_churn_experiment(
            total_nodes=a.nodes, rounds=a.rounds, seed=a.seed, latency=a.latency
        ),
        "randomness": lambda a: exp.run_randomness_experiment(
            total_nodes=a.nodes, rounds=a.rounds, seed=a.seed, latency=a.latency
        ),
        "overhead": lambda a: exp.run_overhead_experiment(
            total_nodes=a.nodes,
            warmup_rounds=max(1, a.rounds // 2),
            measure_rounds=max(1, a.rounds // 2),
            seed=a.seed,
            latency=a.latency,
        ),
        "failure": lambda a: exp.run_failure_experiment(
            total_nodes=a.nodes,
            warmup_rounds=a.rounds,
            seed=a.seed,
            latency=a.latency,
        ),
        "nat-indegree": lambda a: exp.run_nat_indegree_experiment(
            total_nodes=a.nodes,
            rounds=a.rounds,
            seed=a.seed,
            latency=a.latency,
        ),
        "scale": lambda a: exp.run_scale_experiment(
            nodes=a.nodes,
            rounds=a.rounds,
            seed=a.seed,
            latency=a.latency,
        ),
    }


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(item) for item in _csv_list(text)]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Croupier reproduction: experiments, matrices, benchmarks, reports.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one figure-level experiment harness")
    run.add_argument("experiment", help="harness name (see `repro run list`)")
    run.add_argument("--nodes", type=int, default=100, help="total system size")
    run.add_argument("--rounds", type=int, default=60, help="gossip rounds to simulate")
    run.add_argument("--seed", type=int, default=42)
    run.add_argument("--latency", default="king", help="king, constant or uniform")

    matrix = subparsers.add_parser(
        "matrix", help="run a declarative experiment matrix on a worker pool"
    )
    matrix.add_argument(
        "--scenarios",
        type=_csv_list,
        default=["static"],
        help="comma-separated scenario kinds (`--list` shows them)",
    )
    matrix.add_argument("--protocols", type=_csv_list, default=["croupier"])
    matrix.add_argument("--sizes", type=_csv_ints, default=[100])
    matrix.add_argument("--seeds", type=int, default=1, help="seed indices per cell group")
    matrix.add_argument("--rounds", type=int, default=30)
    matrix.add_argument("--public-ratio", type=float, default=0.2)
    matrix.add_argument("--root-seed", type=int, default=42)
    matrix.add_argument("--latency", default="king")
    matrix.add_argument(
        "--nat-profiles",
        type=_csv_list,
        default=["restricted_cone"],
        help="NAT-profile axis: comma-separated profile names, or 'paper' for the "
        "paper-setup sweep (full_cone,restricted_cone,port_restricted_cone,symmetric)",
    )
    matrix.add_argument(
        "--loss-rates",
        type=_csv_list,
        default=["0"],
        help="packet-loss axis: comma-separated probabilities, or 'paper' for the "
        "paper-setup sweep (0,0.01,0.05)",
    )
    matrix.add_argument(
        "--nat-mixtures",
        type=_csv_list,
        default=["none"],
        help="NAT-mixture axis: comma-separated registered mixture names ('paper' is "
        "the paper's measured NAT-type distribution) or 'none' for homogeneous "
        "gateways (the --nat-profiles axis)",
    )
    matrix.add_argument(
        "--upnp-fractions",
        type=_csv_list,
        default=["0"],
        help="UPnP axis: comma-separated fractions of gateways whose NAT supports "
        "UPnP port mapping, or 'paper' for the paper-setup sweep (0,0.2,0.5)",
    )
    matrix.add_argument(
        "--timelines",
        type=_csv_list,
        default=["none"],
        help="workload-timeline axis: comma-separated registered timeline names "
        "(paper-churn, paper-failure, flash-crowd, diurnal, partition-heal, ... — "
        "`--list` shows them) or paths to timeline JSON files; 'none' adds no "
        "extra dynamics",
    )
    matrix.add_argument(
        "--engines",
        type=_csv_list,
        default=["object"],
        help="execution-backend axis: comma-separated engine names ('object' — "
        "per-node component simulation; 'columnar' — flat-array batched engine "
        "for 1e5+ node cells, croupier/cyclon/gozar/nylon)",
    )
    matrix.add_argument(
        "--variants",
        choices=("default", "paper", "first"),
        default="default",
        help="which registered parameter variants to expand per scenario kind",
    )
    matrix.add_argument("--workers", type=int, default=1)
    matrix.add_argument("--out", type=Path, default=Path("artifacts/matrix"))
    matrix.add_argument(
        "--journal",
        type=Path,
        default=None,
        help="cell-result journal path (default: <out>/matrix_journal.jsonl); "
        "terminal cells are appended as they complete so a killed run can --resume",
    )
    matrix.add_argument(
        "--resume",
        type=Path,
        default=None,
        metavar="JOURNAL",
        help="resume from a journal written by a previous (killed) run of the same "
        "spec: journalled ok/failed cells replay, only the rest execute; the "
        "rebuilt aggregate is byte-identical to an uninterrupted run",
    )
    matrix.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection: 'seed=7,crash=0.2,hang=0.1,corrupt=0.2' "
        "or a repro-faultplan-v1 JSON file; same spec → same injection schedule",
    )
    matrix.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell watchdog budget overriding the scenario kinds' defaults "
        "(0 disables timeouts; needs --workers > 1 — the in-process executor "
        "cannot interrupt itself)",
    )
    matrix.add_argument(
        "--retries",
        type=int,
        default=3,
        metavar="N",
        help="total attempts per cell for transient worker faults (crash, timeout, "
        "corruption) before the cell degrades; deterministic cell exceptions are "
        "never retried (default 3)",
    )
    matrix.add_argument(
        "--heartbeat",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="progress-heartbeat interval on stderr (cells done/failed/retried, "
        "ETA); 0 disables (default 30)",
    )
    matrix.add_argument(
        "--list", action="store_true", help="list registered scenario kinds and exit"
    )
    matrix.add_argument(
        "--dry-run",
        action="store_true",
        help="print the expanded cell list (key, derived seed, timeline digest) as "
        "tab-separated rows without running anything — the cell-key stability gate",
    )

    bench = subparsers.add_parser("bench", help="run the perf-trajectory benchmark")
    bench.add_argument("--quick", action="store_true", help="<=60s smoke subset")
    bench.add_argument("--output", type=Path, default=None)

    report = subparsers.add_parser(
        "report",
        help="render the markdown summary of a matrix aggregate JSON, or diff two "
        "aggregates and gate on regressions",
    )
    report.add_argument("aggregate", type=Path, nargs="?", default=None)
    report.add_argument("--out", type=Path, default=None, help="write instead of print")
    report.add_argument(
        "--diff",
        type=Path,
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="compare two aggregates; exits 1 if NEW regresses beyond --tolerance",
    )
    report.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative change of a group's metric mean tolerated by --diff (default 5%%)",
    )
    report.add_argument(
        "--ks-tolerance",
        type=float,
        default=0.1,
        help="Kolmogorov–Smirnov distance tolerated by --diff on per-group "
        "histograms, e.g. the in-degree distributions (default 0.1)",
    )
    report.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when the rendered aggregate contains degraded or failed cells "
        "(degraded = transient-fault retries exhausted)",
    )

    lint = subparsers.add_parser(
        "lint",
        help="run the determinism & invariant linter (AST-based, seconds)",
    )
    lint.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="files or directories to lint (default: the repro package sources)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="finding output format (json follows the repro-lint-v1 schema; "
        "sarif emits a SARIF 2.1.0 document for code-scanning upload)",
    )
    lint.add_argument(
        "--rules",
        type=_csv_list,
        default=None,
        help="comma-separated rule ids to run (default: all; `--list-rules` shows them)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="audit the escape hatches too: unknown suppression rule ids and "
        "unused suppressions/allowlist entries become findings (the CI mode)",
    )
    lint.add_argument(
        "--changed",
        action="store_true",
        help="lint only files differing from the committed state (git diff HEAD "
        "+ untracked) — fast local iteration; CI lints everything",
    )
    lint.add_argument(
        "--allowlist",
        type=Path,
        default=None,
        help="allowlist file (default: .repro-lint-allow discovered upward from "
        "the first lint path)",
    )
    lint.add_argument(
        "--cache",
        action="store_true",
        help="reuse per-file rule output for content-unchanged files (keyed by "
        "file sha256 + ruleset fingerprint; suppressions and the allowlist are "
        "replayed live, so escape-hatch edits are never stale)",
    )
    lint.add_argument(
        "--cache-path",
        type=Path,
        default=Path(".repro-lint-cache.json"),
        help="where --cache persists between runs (default: "
        ".repro-lint-cache.json in the current directory)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )

    return parser


# ------------------------------------------------------------------ subcommands


def _resolve_timeline_value(value: str) -> str:
    """Turn one ``--timelines`` value into a registered timeline name.

    Registered names (and the default ``none``) pass through; a value ending in
    ``.json`` is parsed as a timeline document and registered under ``file:<stem>``
    so the matrix machinery — including forked pool workers — can resolve it. (Under
    a spawn start method file-based timelines need ``--workers 1``, like any
    run-time registration.)
    """
    if not value.endswith(".json"):
        return value
    from repro.workload.timeline import TIMELINES, Timeline, register_timeline

    path = Path(value)
    if not path.exists():
        raise ReproError(f"timeline file not found: {path}")
    timeline = Timeline.from_json(path.read_text())
    name = f"file:{path.stem}"
    existing = TIMELINES.get(name)
    if existing is not None and existing.timeline != timeline:
        raise ReproError(
            f"timeline name {name!r} (from {path}) collides with a different "
            f"timeline already registered under that name — file-based timelines "
            f"are keyed by stem, so rename one of the files"
        )
    register_timeline(name, timeline, description=f"loaded from {path}", replace=True)
    return name


def _dry_run_matrix(spec) -> int:
    """``repro matrix --dry-run``: the expanded cell list, nothing executed.

    One tab-separated row per cell — cell key, derived seed, timeline digest (``-``
    for the default timeline) — in expansion order. The output is a pure function of
    the spec, which is what makes it a reviewable cell-key stability artifact (CI
    diffs it against a committed copy).
    """
    from repro.experiments.matrix import DEFAULT_TIMELINE, derive_cell_seed, timeline_digest

    cells = spec.validate()
    print(f"dry run: {spec.describe()}", file=sys.stderr)
    for cell in cells:
        digest = (
            "-" if cell.timeline == DEFAULT_TIMELINE else timeline_digest(cell.timeline)
        )
        print(f"{cell.key}\t{derive_cell_seed(spec.root_seed, cell.key)}\t{digest}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    runners = _build_runners()
    if args.experiment == "list":
        print("available experiments:")
        for name in sorted(runners):
            print(f"  {name}")
        return 0
    runner = runners.get(args.experiment)
    if runner is None:
        print(
            f"unknown experiment {args.experiment!r}; try: {', '.join(sorted(runners))}",
            file=sys.stderr,
        )
        return 2
    result = runner(args)
    print(result.to_text())
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.experiments.matrix import (
        PAPER_LOSS_RATES,
        PAPER_NAT_PROFILES,
        PAPER_UPNP_FRACTIONS,
        MatrixSpec,
        SCENARIOS,
    )
    from repro.experiments.runner import run_matrix, write_artifacts
    from repro.membership.plugin import all_plugins

    if args.list:
        from repro.workload.timeline import all_timeline_presets

        print("registered scenario kinds:")
        for name in sorted(SCENARIOS):
            kind = SCENARIOS[name]
            variants = len(kind.paper_variants) or 1
            print(f"  {name:<10} ({variants} paper variant(s)) — {kind.description}")
        print("registered protocols:")
        for plugin in all_plugins():
            capabilities = ", ".join(plugin.capability_names())
            print(f"  {plugin.name:<10} [{capabilities}] — {plugin.description}")
        print("registered timelines (--timelines):")
        for preset in all_timeline_presets():
            print(
                f"  {preset.name:<15} [{preset.timeline.digest}] — {preset.description}"
            )
        return 0

    nat_profiles = (
        list(PAPER_NAT_PROFILES) if args.nat_profiles == ["paper"] else args.nat_profiles
    )
    if args.loss_rates == ["paper"]:
        loss_rates: List[float] = list(PAPER_LOSS_RATES)
    else:
        try:
            loss_rates = [float(rate) for rate in args.loss_rates]
        except ValueError as error:
            # 'paper' only works as the sole value; anything unparsable fails cleanly.
            raise ReproError(
                f"--loss-rates must be comma-separated probabilities or exactly "
                f"'paper' (got {','.join(args.loss_rates)!r}): {error}"
            ) from None
    if args.upnp_fractions == ["paper"]:
        upnp_fractions: List[float] = list(PAPER_UPNP_FRACTIONS)
    else:
        try:
            upnp_fractions = [float(fraction) for fraction in args.upnp_fractions]
        except ValueError as error:
            raise ReproError(
                f"--upnp-fractions must be comma-separated fractions or exactly "
                f"'paper' (got {','.join(args.upnp_fractions)!r}): {error}"
            ) from None
    timelines = [_resolve_timeline_value(value) for value in args.timelines]
    spec = MatrixSpec(
        scenarios=args.scenarios,
        protocols=args.protocols,
        sizes=args.sizes,
        seeds=args.seeds,
        rounds=args.rounds,
        public_ratio=args.public_ratio,
        root_seed=args.root_seed,
        latency=args.latency,
        variants=args.variants,
        nat_profiles=nat_profiles,
        loss_rates=loss_rates,
        nat_mixtures=args.nat_mixtures,
        upnp_fractions=upnp_fractions,
        timelines=timelines,
        engines=args.engines,
    )

    if args.dry_run:
        return _dry_run_matrix(spec)

    from repro.experiments.faults import FaultPlan, RetryPolicy

    fault_plan = FaultPlan.parse(args.chaos) if args.chaos else None
    retry = RetryPolicy(max_attempts=max(1, args.retries))
    journal_path = args.journal
    if journal_path is None:
        journal_path = (
            args.resume if args.resume is not None
            else args.out / "matrix_journal.jsonl"
        )

    extras = [f"workers={args.workers}"]
    if fault_plan is not None:
        extras.append(fault_plan.describe())
    if args.resume is not None:
        extras.append(f"resume={args.resume}")
    print(f"matrix: {spec.describe()} ({', '.join(extras)})")

    def progress(result, done, total):
        status = {"ok": "ok", "failed": "FAILED", "degraded": "DEGRADED"}[result.status]
        retried = f" after {result.attempts} attempts" if result.attempts > 1 else ""
        print(
            f"  [{done}/{total}] {status}  {result.key}  "
            f"({result.duration_s:.1f}s{retried})"
        )

    run = run_matrix(
        spec,
        workers=args.workers,
        progress=progress,
        retry=retry,
        fault_plan=fault_plan,
        cell_timeout_s=args.cell_timeout,
        journal_path=journal_path,
        resume_from=args.resume,
        heartbeat_s=args.heartbeat if args.heartbeat and args.heartbeat > 0 else None,
    )
    paths = write_artifacts(run, args.out)
    print(
        f"wall time: {run.wall_seconds:.1f}s, failed cells: {len(run.failed)}, "
        f"degraded cells: {len(run.degraded)}, retries: {run.retries}"
        + (f", resumed: {run.resumed}" if run.resumed else "")
    )
    print(f"  journal: {journal_path}")
    for label, path in sorted(paths.items()):
        print(f"  {label}: {path}")
    if run.degraded:
        for result in run.degraded:
            print(f"DEGRADED {result.key}: {result.error}", file=sys.stderr)
        print(
            f"warning: {len(run.degraded)} cell(s) degraded — aggregate is "
            "incomplete (repro report --strict gates on this)",
            file=sys.stderr,
        )
    if run.failed:
        for result in run.failed:
            print(f"FAILED {result.key}:\n{result.error}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    script = Path(__file__).resolve().parents[2] / "benchmarks" / "run_bench.py"
    if not script.exists():
        print(
            "repro bench needs a source checkout (benchmarks/run_bench.py not found "
            f"next to the package: {script})",
            file=sys.stderr,
        )
        return 2
    argv = [str(script)]
    if args.quick:
        argv.append("--quick")
    if args.output is not None:
        argv.extend(["--output", str(args.output)])
    old_argv = sys.argv
    sys.argv = argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    except SystemExit as exit_info:
        if exit_info.code is None:
            return 0
        if isinstance(exit_info.code, int):
            return exit_info.code
        # The bench script aborts with SystemExit("FIDELITY FAILURE: ...") messages.
        print(exit_info.code, file=sys.stderr)
        return 1
    finally:
        sys.argv = old_argv
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import diff_aggregates, matrix_markdown_summary

    if args.diff is not None:
        if args.aggregate is not None:
            print(
                "error: give either an aggregate to render or --diff OLD NEW, not both",
                file=sys.stderr,
            )
            return 2
        old_path, new_path = args.diff
        diff = diff_aggregates(
            json.loads(old_path.read_text()),
            json.loads(new_path.read_text()),
            tolerance=args.tolerance,
            ks_tolerance=args.ks_tolerance,
        )
        text = diff.to_text()
        if args.out is not None:
            args.out.parent.mkdir(parents=True, exist_ok=True)
            args.out.write_text(text + "\n")
            print(f"wrote {args.out}")
        else:
            print(text)
        if diff.has_regressions:
            print(
                f"REGRESSION: {new_path} is worse than {old_path} "
                f"(see verdicts above)",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.aggregate is None:
        print("error: report needs an aggregate path or --diff OLD NEW", file=sys.stderr)
        return 2
    aggregate = json.loads(args.aggregate.read_text())
    summary = matrix_markdown_summary(aggregate)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(summary)
        print(f"wrote {args.out}")
    else:
        print(summary)
    if args.strict:
        degraded = aggregate.get("degraded", {})
        failed = aggregate.get("failed", [])
        if degraded or failed:
            print(
                f"STRICT: aggregate has {len(failed)} failed and {len(degraded)} "
                "degraded cell(s)",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import (
        Allowlist,
        LintCache,
        all_rules,
        changed_files,
        rule_ids,
        ruleset_fingerprint,
        run_lint,
        to_sarif_json,
    )

    if args.list_rules:
        print("registered lint rules:")
        for rule in all_rules():
            print(f"  {rule.id:<20} — {rule.description}")
        return 0

    if args.paths:
        paths: List[Path] = list(args.paths)
    else:
        # Prefer the source checkout layout (what CI lints); fall back to the
        # installed package so `repro lint` works from anywhere.
        src = Path("src/repro")
        paths = [src if src.is_dir() else Path(__file__).resolve().parent]

    if args.changed:
        changed = changed_files(Path.cwd())
        roots = [Path(path).resolve() for path in paths]
        paths = [
            file
            for file in changed
            if any(
                root == file.resolve() or root in file.resolve().parents
                for root in roots
            )
        ]
        if not paths:
            print("lint: no changed python files under the requested paths")
            return 0

    allowlist = (
        Allowlist.load(args.allowlist) if args.allowlist is not None else None
    )
    cache = None
    if args.cache:
        fingerprint = ruleset_fingerprint(
            args.rules if args.rules else rule_ids()
        )
        cache = LintCache.load(args.cache_path, fingerprint)
    report = run_lint(
        paths,
        rules=args.rules,
        strict=args.strict,
        allowlist=allowlist,
        cache=cache,
    )
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(to_sarif_json(report))
    else:
        print(report.to_text())
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "run": _cmd_run,
        "matrix": _cmd_matrix,
        "bench": _cmd_bench,
        "report": _cmd_report,
        "lint": _cmd_lint,
    }
    try:
        return commands[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
