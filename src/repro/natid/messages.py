"""Messages of the NAT-type identification protocol (Algorithm 1 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.net.address import Endpoint, NodeAddress
from repro.simulator.message import Message


@dataclass
class MatchingIpTest(Message):
    """Client → first public node.

    Carries the client's request identifier and the list of public nodes the bootstrap
    server returned to the client, so the first public node can pick a *different*
    public node for the forward test (Algorithm 1, line 28).
    """

    request_id: int
    client: NodeAddress
    bootstrap_nodes: Tuple[NodeAddress, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return 4 + self.client.wire_size + sum(n.wire_size for n in self.bootstrap_nodes)


@dataclass
class ForwardTest(Message):
    """First public node → second public node.

    ``observed_client`` is the source endpoint the first public node saw on the
    MatchingIpTest packet — i.e. the client's address *as the Internet sees it*.
    """

    request_id: int
    observed_client: Endpoint
    client: NodeAddress

    def payload_size(self) -> int:
        return 4 + self.observed_client.wire_size + self.client.wire_size


@dataclass
class ForwardResp(Message):
    """Second public node → client (at its observed address).

    Carries the observed client IP so the client can compare it against its local IP
    (Algorithm 1, lines 18–25).
    """

    request_id: int
    observed_client: Endpoint

    def payload_size(self) -> int:
        return 4 + self.observed_client.wire_size
