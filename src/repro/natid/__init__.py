"""The paper's minimal distributed NAT-type identification protocol (Algorithm 1).

A joining node decides whether it is *public* or *private* with three network messages
and no STUN server:

1. It asks the bootstrap service for a handful of public nodes.
2. If its gateway supports UPnP IGD, it is public — done, zero messages.
3. Otherwise it sends a ``MatchingIpTest`` to each of the returned public nodes (the
   instances run in parallel; the first to complete wins).
4. A public node that receives the test forwards a ``ForwardTest`` — carrying the IP
   address it observed for the client — to a *different* public node, one that was not
   in the client's bootstrap list (so the client's NAT cannot already hold a mapping to
   it).
5. That second public node sends a ``ForwardResp`` straight to the client's observed
   address. If the client receives it and the observed IP equals its local IP, it is
   public; if the IPs differ, or the response never arrives before the timeout, it is
   private.
"""

from repro.natid.messages import (
    ForwardResp,
    ForwardTest,
    MatchingIpTest,
)
from repro.natid.protocol import (
    NatIdentificationClient,
    NatIdentificationResult,
    NatIdentificationServer,
)

__all__ = [
    "ForwardResp",
    "ForwardTest",
    "MatchingIpTest",
    "NatIdentificationClient",
    "NatIdentificationResult",
    "NatIdentificationServer",
]
