"""Client and server components of the NAT-type identification protocol.

The protocol is Algorithm 1 of the paper, split across two components:

* :class:`NatIdentificationServer` runs on every public node. It answers
  ``MatchingIpTest`` by forwarding a ``ForwardTest`` to a different public node, and
  answers ``ForwardTest`` by sending a ``ForwardResp`` straight to the client's
  observed address.
* :class:`NatIdentificationClient` runs on the node under test. It short-circuits to
  *public* if the local gateway supports UPnP IGD, otherwise launches parallel test
  instances against the bootstrap-provided public nodes and classifies itself from the
  first conclusive answer (or the timeout).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.constants import NATID_CLIENT_PORT, NATID_SERVER_PORT
from repro.errors import ProtocolError
from repro.natid.messages import ForwardResp, ForwardTest, MatchingIpTest
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.component import Component
from repro.simulator.core import EventHandle
from repro.simulator.host import Host
from repro.simulator.message import Packet

#: Default time the client waits for a ForwardResp before declaring itself private.
#: The paper requires it to be "long enough to prevent false positives"; four seconds
#: comfortably covers two King-style Internet round trips plus processing.
DEFAULT_TIMEOUT_MS = 4_000.0


@dataclass
class NatIdentificationResult:
    """Outcome of one run of the identification protocol."""

    nat_type: NatType
    reason: str
    elapsed_ms: float
    observed_ip: Optional[str] = None

    @property
    def is_public(self) -> bool:
        return self.nat_type is NatType.PUBLIC


class NatIdentificationServer(Component):
    """Public-node side of Algorithm 1 (lines 26–34).

    Parameters
    ----------
    host:
        The public host the server runs on.
    public_node_provider:
        Callable returning the public nodes this server currently knows about; used to
        pick the *second* public node for the forward test. In a deployed system this
        is the node's own public view; in the experiments it is backed by the bootstrap
        registry.
    """

    def __init__(
        self,
        host: Host,
        public_node_provider: Callable[[], Sequence[NodeAddress]],
        port: int = NATID_SERVER_PORT,
    ) -> None:
        super().__init__(host, port, name="NatIdServer")
        self.public_node_provider = public_node_provider
        self.forward_tests_sent = 0
        self.forward_resps_sent = 0
        self.subscribe(MatchingIpTest, self._on_matching_ip_test)
        self.subscribe(ForwardTest, self._on_forward_test)

    # ------------------------------------------------------------------ handlers

    def _on_matching_ip_test(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, MatchingIpTest)
        excluded = {node.node_id for node in message.bootstrap_nodes}
        excluded.add(self.address.node_id)
        second = self._pick_second_public_node(excluded)
        if second is None:
            # Without a second public node the test cannot proceed; the client's
            # timeout will (conservatively) classify it as private.
            return
        forward = ForwardTest(
            request_id=message.request_id,
            observed_client=packet.source,
            client=message.client,
        )
        self.forward_tests_sent += 1
        self.send(Endpoint(second.endpoint.ip, self.port), forward)

    def _on_forward_test(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, ForwardTest)
        response = ForwardResp(
            request_id=message.request_id,
            observed_client=message.observed_client,
        )
        self.forward_resps_sent += 1
        # Reply to the *observed* client endpoint: if the client is behind a NAT this
        # packet will only get through if the NAT's filtering policy allows a source
        # the client has never contacted — which is exactly the property being tested.
        self.send(message.observed_client, response)

    # ------------------------------------------------------------------ helpers

    def _pick_second_public_node(self, excluded_ids: set) -> Optional[NodeAddress]:
        candidates = [
            node
            for node in self.public_node_provider()
            if node.node_id not in excluded_ids and node.is_public
        ]
        if not candidates:
            return None
        return self.rng.choice(candidates)


class NatIdentificationClient(Component):
    """Client side of Algorithm 1 (lines 1–25)."""

    def __init__(
        self,
        host: Host,
        supports_upnp_igd: bool = False,
        timeout_ms: float = DEFAULT_TIMEOUT_MS,
        port: int = NATID_CLIENT_PORT,
        server_port: int = NATID_SERVER_PORT,
    ) -> None:
        super().__init__(host, port, name="NatIdClient")
        if timeout_ms <= 0:
            raise ProtocolError(f"timeout_ms must be positive, got {timeout_ms}")
        self.supports_upnp_igd = supports_upnp_igd
        self.timeout_ms = timeout_ms
        self.server_port = server_port
        self.result: Optional[NatIdentificationResult] = None
        self._callback: Optional[Callable[[NatIdentificationResult], None]] = None
        self._timeout_handle: Optional[EventHandle] = None
        self._started_at: float = 0.0
        self._request_id = 0
        self.subscribe(ForwardResp, self._on_forward_resp)

    # ------------------------------------------------------------------ API

    def identify(
        self,
        bootstrap_nodes: Sequence[NodeAddress],
        callback: Optional[Callable[[NatIdentificationResult], None]] = None,
    ) -> None:
        """Start one identification run against the given bootstrap public nodes.

        The result is delivered to ``callback`` (and stored in :attr:`result`). The
        protocol completes immediately for UPnP-capable gateways, otherwise after the
        first conclusive ``ForwardResp`` or after :attr:`timeout_ms`.
        """
        if not self.started:
            self.start()
        self._callback = callback
        self._started_at = self.sim.now
        self._request_id += 1

        if self.supports_upnp_igd:
            # Algorithm 1, lines 4–5: UPnP IGD support means the node can map a public
            # port explicitly, so it behaves as a public node.
            self._finish(NatType.PUBLIC, reason="upnp_igd", observed_ip=None)
            return

        public_targets: List[NodeAddress] = [n for n in bootstrap_nodes if n.is_public]
        if not public_targets:
            # No public node to test against: conservatively classify as private (the
            # node cannot prove it is reachable).
            self._finish(NatType.PRIVATE, reason="no_public_nodes", observed_ip=None)
            return

        test = MatchingIpTest(
            request_id=self._request_id,
            client=self.address,
            bootstrap_nodes=tuple(public_targets),
        )
        for node in public_targets:
            self.send(Endpoint(node.endpoint.ip, self.server_port), test)
        self._timeout_handle = self.schedule(self.timeout_ms, self._on_timeout)

    # ------------------------------------------------------------------ handlers

    def _on_forward_resp(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, ForwardResp)
        if self.result is not None or message.request_id != self._request_id:
            return
        local_ip = self.host.local_endpoint.ip
        observed_ip = message.observed_client.ip
        if observed_ip == local_ip:
            self._finish(NatType.PUBLIC, reason="matching_ip", observed_ip=observed_ip)
        else:
            # Behind a NAT with endpoint-independent filtering: reachable on existing
            # mappings, but the address is translated, so the node is private.
            self._finish(NatType.PRIVATE, reason="ip_mismatch", observed_ip=observed_ip)

    def _on_timeout(self) -> None:
        if self.result is not None:
            return
        self._finish(NatType.PRIVATE, reason="timeout", observed_ip=None)

    # ------------------------------------------------------------------ helpers

    def _finish(self, nat_type: NatType, reason: str, observed_ip: Optional[str]) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None
        self.result = NatIdentificationResult(
            nat_type=nat_type,
            reason=reason,
            elapsed_ms=self.sim.now - self._started_at,
            observed_ip=observed_ip,
        )
        if self._callback is not None:
            callback, self._callback = self._callback, None
            callback(self.result)
