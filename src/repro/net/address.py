"""Addressing primitives shared by the simulator, the NAT substrate and the protocols.

The model follows the paper's system model (Section III): every node is either *public*
(reachable on a globally routable IP address) or *private* (behind at least one NAT or
firewall, reachable only on connections it initiated itself).

Addresses are deliberately lightweight, hashable value objects: protocol views store
thousands of them and the simulator copies them into messages freely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


def format_ipv4(value: int) -> str:
    """Render a 32-bit integer as a dotted-quad IPv4 string.

    >>> format_ipv4(0x0A000001)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ConfigurationError(f"IPv4 value out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


#: Memoised successful parses. The simulator re-validates the same bounded set of
#: addresses on every Endpoint construction and every packet send; caching turns that
#: into a dict hit. Only valid addresses are cached, so error behaviour is unchanged,
#: and the cache is bounded by the number of distinct IPs in the topology.
_PARSE_CACHE: dict = {}


def parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 string into a 32-bit integer (memoised).

    >>> parse_ipv4('10.0.0.1') == 0x0A000001
    True
    """
    cached = _PARSE_CACHE.get(text)
    if cached is not None:
        return cached
    parts = text.split(".")
    if len(parts) != 4:
        raise ConfigurationError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError as exc:
            raise ConfigurationError(f"not a dotted-quad IPv4 address: {text!r}") from exc
        if not 0 <= octet <= 255:
            raise ConfigurationError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    _PARSE_CACHE[text] = value
    return value


class NatType(enum.Enum):
    """The node classification used throughout the paper.

    ``PUBLIC``
        The node has a globally reachable address (or a UPnP IGD mapping that makes it
        behave as if it had one).
    ``PRIVATE``
        The node sits behind at least one NAT or firewall and can only be reached on
        flows it initiated.
    ``UNKNOWN``
        The node has not yet run the NAT-type identification protocol.
    """

    PUBLIC = "public"
    PRIVATE = "private"
    UNKNOWN = "unknown"

    @property
    def is_public(self) -> bool:
        return self is NatType.PUBLIC

    @property
    def is_private(self) -> bool:
        return self is NatType.PRIVATE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class Endpoint:
    """A UDP endpoint: an IP address plus a port.

    Endpoints compare and hash by value so they can key NAT mapping tables and the
    simulator's routing table.
    """

    ip: str
    port: int

    def __post_init__(self) -> None:
        if not 0 < self.port <= 0xFFFF:
            raise ConfigurationError(f"port out of range: {self.port!r}")
        # Validate the IP eagerly so malformed endpoints fail at construction time.
        parse_ipv4(self.ip)

    def with_port(self, port: int) -> "Endpoint":
        """Return a copy of this endpoint with a different port."""
        return Endpoint(self.ip, port)

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"

    @property
    def wire_size(self) -> int:
        """Bytes needed to encode the endpoint on the wire (IPv4 + port)."""
        return 6


@dataclass(frozen=True)
class NodeAddress:
    """The identity and contact information of a node.

    Attributes
    ----------
    node_id:
        A globally unique integer identifier. Equality and hashing use only this field,
        which matches how the protocols treat node identity (a node that rejoins after a
        failure gets a fresh identifier).
    endpoint:
        The endpoint other nodes use to contact this node. For a public node this is its
        own globally reachable endpoint; for a private node it is the external endpoint
        of its NAT (which is only usable on NAT mappings the private node opened).
    nat_type:
        The node's NAT classification (:class:`NatType`).
    private_endpoint:
        For private nodes, the endpoint on the node's own private network. ``None`` for
        public nodes. The NAT-type identification protocol compares this with the
        publicly observed address.
    """

    node_id: int
    endpoint: Endpoint
    nat_type: NatType = NatType.UNKNOWN
    private_endpoint: Optional[Endpoint] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ConfigurationError(f"node_id must be non-negative, got {self.node_id}")

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeAddress):
            return NotImplemented
        return self.node_id == other.node_id

    @property
    def is_public(self) -> bool:
        return self.nat_type.is_public

    @property
    def is_private(self) -> bool:
        return self.nat_type.is_private

    def with_nat_type(self, nat_type: NatType) -> "NodeAddress":
        """Return a copy of this address with the NAT type replaced."""
        return NodeAddress(
            node_id=self.node_id,
            endpoint=self.endpoint,
            nat_type=nat_type,
            private_endpoint=self.private_endpoint,
        )

    def with_endpoint(self, endpoint: Endpoint) -> "NodeAddress":
        """Return a copy of this address with the contact endpoint replaced."""
        return NodeAddress(
            node_id=self.node_id,
            endpoint=endpoint,
            nat_type=self.nat_type,
            private_endpoint=self.private_endpoint,
        )

    @property
    def wire_size(self) -> int:
        """Bytes to encode the address in a message: node id (4) + endpoint (6) + type (1)."""
        return 4 + self.endpoint.wire_size + 1

    def __str__(self) -> str:
        return f"node{self.node_id}({self.nat_type.value}@{self.endpoint})"

    def __repr__(self) -> str:
        return (
            f"NodeAddress(node_id={self.node_id}, endpoint={self.endpoint!s}, "
            f"nat_type={self.nat_type.value})"
        )
