"""Network-level value objects: IP addresses, endpoints and node addresses.

The rest of the package never manipulates raw strings for addressing; it always goes
through :class:`~repro.net.address.Endpoint` and :class:`~repro.net.address.NodeAddress`.
"""

from repro.net.address import (
    Endpoint,
    NatType,
    NodeAddress,
    format_ipv4,
    parse_ipv4,
)

__all__ = [
    "Endpoint",
    "NatType",
    "NodeAddress",
    "format_ipv4",
    "parse_ipv4",
]
