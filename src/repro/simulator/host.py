"""A simulated machine: components bound to ports, optionally behind a NAT.

Hosts are the unit of churn in the experiments. Joining a node means creating a host,
registering it with the network and starting its components; a node leaving or failing
means calling :meth:`Host.kill`, which stops every component (cancelling their timers)
and makes the network drop any packet still in flight towards it.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.errors import NetworkError
from repro.net.address import Endpoint, NatType, NodeAddress

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nat.nat_box import NatBox
    from repro.simulator.component import Component
    from repro.simulator.core import Simulator
    from repro.simulator.message import Message, Packet
    from repro.simulator.network import Network


class Host:
    """A node's machine in the simulation.

    Parameters
    ----------
    sim:
        The simulator that owns the virtual clock.
    network:
        The network the host attaches to. The constructor registers the host (and its
        NAT box, if any) with the network.
    address:
        The node's :class:`~repro.net.address.NodeAddress`. For a private node the
        address's ``endpoint`` must carry the NAT's external IP, and ``private_endpoint``
        the host's own private IP.
    natbox:
        The :class:`~repro.nat.nat_box.NatBox` this host sits behind, or ``None`` for a
        public host.
    """

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        address: NodeAddress,
        natbox: Optional["NatBox"] = None,
    ) -> None:
        if address.is_private and natbox is None:
            raise NetworkError(
                f"private node {address.node_id} must be created with a NAT box"
            )
        if address.is_private and address.private_endpoint is None:
            raise NetworkError(
                f"private node {address.node_id} must have a private_endpoint"
            )
        self.sim = sim
        self.network = network
        self.address = address
        self.natbox = natbox
        self.alive = True
        self.components: Dict[int, "Component"] = {}
        # Per-port source endpoints, built once instead of per packet. The cache stays
        # valid for the host's lifetime: NAT-type identification swaps the address for
        # one with the same endpoints (with_nat_type), and a host that rejoins after a
        # failure is a brand-new Host object.
        self._source_endpoints: Dict[int, Endpoint] = {}
        network.register_host(self)

    # ------------------------------------------------------------------ identity

    @property
    def node_id(self) -> int:
        return self.address.node_id

    @property
    def is_public(self) -> bool:
        return self.address.is_public

    @property
    def nat_type(self) -> NatType:
        return self.address.nat_type

    @property
    def local_endpoint(self) -> Endpoint:
        """The endpoint the host itself binds sockets on.

        Public hosts bind on their globally reachable address; private hosts bind on
        their private address (the NAT rewrites it on the way out).
        """
        if self.address.private_endpoint is not None:
            return self.address.private_endpoint
        return self.address.endpoint

    def source_endpoint(self, src_port: int) -> Endpoint:
        """The (cached) endpoint a datagram sent from ``src_port`` originates from."""
        endpoint = self._source_endpoints.get(src_port)
        if endpoint is None:
            endpoint = Endpoint(self.local_endpoint.ip, src_port)
            self._source_endpoints[src_port] = endpoint
        return endpoint

    # ------------------------------------------------------------------ components

    def bind(self, port: int, component: "Component") -> None:
        """Attach a component to a UDP port. One component per port."""
        if port in self.components:
            raise NetworkError(
                f"node {self.node_id}: port {port} already bound to "
                f"{self.components[port].name}"
            )
        self.components[port] = component

    def unbind(self, port: int) -> None:
        self.components.pop(port, None)

    def component_on(self, port: int) -> Optional["Component"]:
        return self.components.get(port)

    def start_all(self) -> None:
        """Start every bound component."""
        for component in list(self.components.values()):
            component.start()

    # ------------------------------------------------------------------ messaging

    def send(self, src_port: int, destination: Endpoint, message: "Message") -> None:
        """Send a datagram from ``src_port`` to ``destination``."""
        if not self.alive:
            return
        self.network.send(self, src_port, destination, message)

    def deliver(self, packet: "Packet") -> None:
        """Deliver an incoming packet to the component bound on the destination port."""
        if not self.alive:
            self.network.monitor.record_drop("dead_host")
            return
        component = self.components.get(packet.destination.port)
        if component is None:
            self.network.monitor.record_drop("unbound_port")
            return
        self.network.monitor.record_received(self.address, packet.message)
        component.handle_packet(packet)

    # ------------------------------------------------------------------ lifecycle

    def kill(self) -> None:
        """Fail the host: stop all components and stop accepting packets.

        Used by the churn and catastrophic-failure workloads. The host's NAT box keeps
        its mapping state (a real NAT would too), but since the host no longer answers,
        that state is inert.
        """
        if not self.alive:
            return
        self.alive = False
        for component in list(self.components.values()):
            component.stop()
        self.network.unregister_host(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return f"Host(node={self.node_id}, {self.address.nat_type.value}, {status})"
