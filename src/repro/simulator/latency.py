"""Pairwise network latency models.

The paper models inter-node latency using the King data set of measured Internet
latencies [16]. The original matrix is not redistributable here, so
:class:`KingLatencyModel` synthesises a latency space with the same qualitative shape:
a median one-way delay of a few tens of milliseconds, a long right tail up to several
hundred milliseconds, per-node access-link delay, and symmetric pairwise values. The
protocol results only depend on this distribution shape, not on the exact matrix (see
DESIGN.md, substitution table).
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Tuple

from repro.errors import ConfigurationError


class LatencyModel:
    """Base class: maps an ordered node pair to a one-way latency in milliseconds."""

    def latency(self, src_id: int, dst_id: int) -> float:
        """One-way latency from ``src_id`` to ``dst_id`` in milliseconds."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description used in experiment reports."""
        return type(self).__name__


class ConstantLatency(LatencyModel):
    """Every packet takes exactly ``delay_ms`` to arrive. Useful in unit tests."""

    def __init__(self, delay_ms: float = 50.0) -> None:
        if delay_ms < 0:
            raise ConfigurationError(f"latency must be non-negative, got {delay_ms}")
        self.delay_ms = delay_ms

    def latency(self, src_id: int, dst_id: int) -> float:
        return self.delay_ms

    def describe(self) -> str:
        return f"ConstantLatency({self.delay_ms}ms)"


class UniformLatency(LatencyModel):
    """Latency drawn uniformly (and deterministically) per ordered node pair."""

    def __init__(self, low_ms: float = 10.0, high_ms: float = 150.0, seed: int = 0) -> None:
        if low_ms < 0 or high_ms < low_ms:
            raise ConfigurationError(
                f"invalid latency range: [{low_ms}, {high_ms}]"
            )
        self.low_ms = low_ms
        self.high_ms = high_ms
        self.seed = seed

    def latency(self, src_id: int, dst_id: int) -> float:
        rng = random.Random(_pair_seed(self.seed, src_id, dst_id, symmetric=True))
        return rng.uniform(self.low_ms, self.high_ms)

    def describe(self) -> str:
        return f"UniformLatency([{self.low_ms}, {self.high_ms}]ms)"


class KingLatencyModel(LatencyModel):
    """Synthetic Internet-like latency inspired by the King measurements.

    Every node is embedded deterministically in a two-dimensional virtual coordinate
    space (a crude but standard model of geographic spread) and given an access-link
    delay drawn from a log-normal distribution. The one-way latency between two nodes
    is::

        latency = base + distance(coord_a, coord_b) * scale + access_a + access_b

    Calibration targets (matching the published King statistics at the fidelity the
    experiments need): median one-way delay around 75–90 ms, 10th percentile around
    30 ms, 99th percentile of several hundred ms, and symmetric values. Latencies are
    memoised per pair, so repeated sends between the same nodes see a stable link.
    """

    #: Minimum propagation + processing delay applied to every packet.
    BASE_DELAY_MS = 5.0

    def __init__(
        self,
        seed: int = 0,
        plane_size: float = 120.0,
        access_median_ms: float = 12.0,
        access_sigma: float = 0.8,
    ) -> None:
        self.seed = seed
        self.plane_size = plane_size
        self.access_median_ms = access_median_ms
        self.access_sigma = access_sigma
        self._coords: Dict[int, Tuple[float, float]] = {}
        self._access: Dict[int, float] = {}
        self._cache: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------ internals

    def _node_rng(self, node_id: int) -> random.Random:
        return random.Random(_pair_seed(self.seed, node_id, node_id, symmetric=False))

    def _coord(self, node_id: int) -> Tuple[float, float]:
        coord = self._coords.get(node_id)
        if coord is None:
            rng = self._node_rng(node_id)
            coord = (rng.uniform(0.0, self.plane_size), rng.uniform(0.0, self.plane_size))
            self._coords[node_id] = coord
        return coord

    def _access_delay(self, node_id: int) -> float:
        delay = self._access.get(node_id)
        if delay is None:
            rng = self._node_rng(node_id)
            rng.random()  # decorrelate from the coordinate draws
            delay = rng.lognormvariate(math.log(self.access_median_ms), self.access_sigma)
            self._access[node_id] = delay
        return delay

    # ------------------------------------------------------------------ API

    def latency(self, src_id: int, dst_id: int) -> float:
        key = (src_id, dst_id) if src_id <= dst_id else (dst_id, src_id)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ax, ay = self._coord(key[0])
        bx, by = self._coord(key[1])
        distance = math.hypot(ax - bx, ay - by)
        value = (
            self.BASE_DELAY_MS
            + distance
            + self._access_delay(key[0])
            + self._access_delay(key[1])
        )
        self._cache[key] = value
        return value

    def describe(self) -> str:
        return f"KingLatencyModel(seed={self.seed})"


def _pair_seed(seed: int, a: int, b: int, symmetric: bool) -> int:
    """Derive a deterministic seed for a node pair, independent of Python hash salting."""
    if symmetric and a > b:
        a, b = b, a
    digest = hashlib.sha256(f"{seed}:{a}:{b}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
