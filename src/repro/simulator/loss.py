"""Message-loss models for the simulated network.

The estimation algorithm in the paper assumes "no bias in message loss between public
and private nodes" (Section VI). The loss models here let experiments both honour that
assumption (:class:`BernoulliLoss` applies the same probability everywhere) and break
it deliberately (:class:`BiasedLoss`) to study the estimator's sensitivity — one of the
ablations listed in DESIGN.md.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.address import NodeAddress


class LossModel:
    """Decides whether a packet is silently dropped in transit."""

    def should_drop(
        self,
        rng: random.Random,
        sender: Optional[NodeAddress],
        receiver_endpoint_ip: str,
    ) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoLoss(LossModel):
    """Never drop a packet. The default for the paper's experiments."""

    def should_drop(
        self,
        rng: random.Random,
        sender: Optional[NodeAddress],
        receiver_endpoint_ip: str,
    ) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Drop every packet independently with probability ``probability``."""

    def __init__(self, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"loss probability out of range: {probability}")
        self.probability = probability

    def should_drop(
        self,
        rng: random.Random,
        sender: Optional[NodeAddress],
        receiver_endpoint_ip: str,
    ) -> bool:
        return rng.random() < self.probability

    def describe(self) -> str:
        return f"BernoulliLoss(p={self.probability})"


class BiasedLoss(LossModel):
    """Different loss probability for packets originating at private vs. public nodes.

    Used by the ablation experiments to violate the estimator's third assumption and
    measure the resulting estimation bias.
    """

    def __init__(self, public_probability: float, private_probability: float) -> None:
        for name, value in (
            ("public_probability", public_probability),
            ("private_probability", private_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} out of range: {value}")
        self.public_probability = public_probability
        self.private_probability = private_probability

    def should_drop(
        self,
        rng: random.Random,
        sender: Optional[NodeAddress],
        receiver_endpoint_ip: str,
    ) -> bool:
        if sender is not None and sender.is_private:
            return rng.random() < self.private_probability
        return rng.random() < self.public_probability

    def describe(self) -> str:
        return (
            f"BiasedLoss(public={self.public_probability}, "
            f"private={self.private_probability})"
        )
