"""A Kompics-like discrete-event simulator for NAT-aware peer-to-peer protocols.

The paper evaluates Croupier on the Kompics platform, a Java component framework with a
discrete-event network simulator. This package provides the Python equivalent used by
the reproduction:

* :class:`~repro.simulator.core.Simulator` — the event loop, virtual clock and seeded
  random-number streams.
* :class:`~repro.simulator.component.Component` — the protocol building block: message
  handlers, one-shot and periodic timers, and a start/stop lifecycle.
* :class:`~repro.simulator.host.Host` — a simulated machine that binds components to
  ports, optionally sits behind a :class:`~repro.nat.nat_box.NatBox`.
* :class:`~repro.simulator.network.Network` — UDP-like datagram delivery with per-link
  latency, probabilistic loss, NAT interposition and byte accounting.
* latency and loss models in :mod:`~repro.simulator.latency` and
  :mod:`~repro.simulator.loss`.
* :class:`~repro.simulator.monitor.TrafficMonitor` — per-node traffic accounting used by
  the protocol-overhead experiments (Figure 7a).

Time is measured in **milliseconds** throughout; the paper's gossip round period of one
second is ``1000.0``.
"""

from repro.simulator.component import Component
from repro.simulator.core import EventHandle, Simulator
from repro.simulator.host import Host
from repro.simulator.latency import (
    ConstantLatency,
    KingLatencyModel,
    LatencyModel,
    UniformLatency,
)
from repro.simulator.loss import BernoulliLoss, LossModel, NoLoss
from repro.simulator.message import Message, Packet
from repro.simulator.monitor import TrafficMonitor
from repro.simulator.network import Network

__all__ = [
    "BernoulliLoss",
    "Component",
    "ConstantLatency",
    "EventHandle",
    "Host",
    "KingLatencyModel",
    "LatencyModel",
    "LossModel",
    "Message",
    "Network",
    "NoLoss",
    "Packet",
    "Simulator",
    "TrafficMonitor",
    "UniformLatency",
]

#: The gossip round period used by all experiments in the paper, in milliseconds.
ROUND_PERIOD_MS = 1000.0
