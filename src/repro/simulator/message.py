"""Message and packet abstractions.

Protocols define their messages as subclasses of :class:`Message` and give each one a
``payload_size`` so the traffic monitor can account protocol overhead in bytes, the way
Figure 7(a) of the paper reports it. The :class:`Packet` is what actually travels through
the simulated network: the message plus the source and destination endpoints as observed
*on the wire* — i.e. after NAT translation, which is what the NAT-type identification
protocol inspects.
"""

from __future__ import annotations

from typing import Optional

from repro.net.address import Endpoint, NodeAddress

#: IPv4 header (20 bytes) + UDP header (8 bytes).
UDP_IP_HEADER_SIZE = 28


class Message:
    """Base class for every protocol message.

    Subclasses should be small immutable containers (dataclasses are encouraged) and
    must override :meth:`payload_size` to report the number of payload bytes their wire
    encoding would occupy. The simulator never serialises messages — sizes are used
    purely for overhead accounting.
    """

    # Messages are allocated per shuffle per round; the base class must not force
    # a __dict__ on slotted subclasses. (Dataclass subclasses still carry their
    # own __dict__ for their fields — only the cache below lives in a slot.)
    __slots__ = ("_wire_size_cache",)

    def payload_size(self) -> int:
        """Size of the message payload in bytes (excluding IP/UDP headers)."""
        return 0

    @property
    def wire_size(self) -> int:
        """Total on-the-wire size in bytes including IP and UDP headers.

        Cached after the first computation: the traffic monitor reads the size on both
        send and receive, and message contents never change once the message is sent.
        """
        cached = getattr(self, "_wire_size_cache", None)
        if cached is None:
            cached = UDP_IP_HEADER_SIZE + self.payload_size()
            self._wire_size_cache = cached
        return cached

    @property
    def type_name(self) -> str:
        """Short name used for per-message-type accounting."""
        return type(self).__name__


class Packet:
    """A datagram in flight (or delivered).

    One packet is allocated per message per hop, which makes this the single
    hottest allocation site of the simulator — hence ``__slots__`` (a plain class
    rather than a dataclass: the project supports Python 3.9, which predates
    ``@dataclass(slots=True)``).

    Attributes
    ----------
    source:
        The source endpoint as seen by the receiver. For a sender behind a NAT this is
        the NAT's external mapping, not the sender's private endpoint.
    destination:
        The endpoint the packet was addressed to.
    message:
        The protocol message payload.
    sender:
        The :class:`NodeAddress` of the originating node, when known. This is metadata
        for tracing and assertions only — protocol handlers must not rely on it for
        information a real datagram would not carry (they should use addresses embedded
        in the message instead). The NAT-type identification tests deliberately ignore
        it.
    sent_at:
        Virtual time (ms) at which the packet entered the network.
    """

    __slots__ = ("source", "destination", "message", "sender", "sent_at")

    def __init__(
        self,
        source: Endpoint,
        destination: Endpoint,
        message: Message,
        sender: Optional[NodeAddress] = None,
        sent_at: float = 0.0,
    ) -> None:
        self.source = source
        self.destination = destination
        self.message = message
        self.sender = sender
        self.sent_at = sent_at

    @property
    def wire_size(self) -> int:
        return self.message.wire_size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet({self.message.type_name} {self.source} -> {self.destination}, "
            f"{self.wire_size}B)"
        )
