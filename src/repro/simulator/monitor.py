"""Per-node traffic accounting.

Figure 7(a) of the paper reports the *average load per node* in bytes per second,
separately for public and private nodes, for Croupier, Gozar and Nylon. The
:class:`TrafficMonitor` collects exactly the raw material needed for that figure (and
for the per-message-type breakdowns used in tests): every packet sent, received,
dropped by a NAT, or lost in transit is recorded against the node that sent or received
it, together with its wire size.

Experiments that want steady-state numbers take a :meth:`TrafficMonitor.snapshot` at
the start of the measurement window and subtract it from a later snapshot.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from repro.net.address import NodeAddress
from repro.simulator.message import Message


@dataclass
class NodeTraffic:
    """Cumulative traffic counters for a single node."""

    tx_bytes: int = 0
    rx_bytes: int = 0
    tx_messages: int = 0
    rx_messages: int = 0
    tx_by_type: Dict[str, int] = field(default_factory=dict)
    rx_by_type: Dict[str, int] = field(default_factory=dict)

    def copy(self) -> "NodeTraffic":
        clone = NodeTraffic(
            tx_bytes=self.tx_bytes,
            rx_bytes=self.rx_bytes,
            tx_messages=self.tx_messages,
            rx_messages=self.rx_messages,
        )
        clone.tx_by_type = dict(self.tx_by_type)
        clone.rx_by_type = dict(self.rx_by_type)
        return clone

    def minus(self, other: "NodeTraffic") -> "NodeTraffic":
        """Return the traffic accumulated since ``other`` was captured."""
        delta = NodeTraffic(
            tx_bytes=self.tx_bytes - other.tx_bytes,
            rx_bytes=self.rx_bytes - other.rx_bytes,
            tx_messages=self.tx_messages - other.tx_messages,
            rx_messages=self.rx_messages - other.rx_messages,
        )
        delta.tx_by_type = {
            name: count - other.tx_by_type.get(name, 0)
            for name, count in self.tx_by_type.items()
        }
        delta.rx_by_type = {
            name: count - other.rx_by_type.get(name, 0)
            for name, count in self.rx_by_type.items()
        }
        return delta

    @property
    def total_bytes(self) -> int:
        return self.tx_bytes + self.rx_bytes


@dataclass
class TrafficSnapshot:
    """A frozen copy of all per-node counters at a point in virtual time."""

    time_ms: float
    per_node: Dict[int, NodeTraffic]
    nat_type_by_node: Dict[int, bool]  # node_id -> is_public


class TrafficMonitor:
    """Collects traffic statistics for every node in a simulation run."""

    def __init__(self) -> None:
        self._per_node: Dict[int, NodeTraffic] = defaultdict(NodeTraffic)
        self._is_public: Dict[int, bool] = {}
        self._drops: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------ recording

    def record_sent(self, sender: NodeAddress, message: Message) -> None:
        traffic = self._per_node[sender.node_id]
        traffic.tx_bytes += message.wire_size
        traffic.tx_messages += 1
        traffic.tx_by_type[message.type_name] = (
            traffic.tx_by_type.get(message.type_name, 0) + message.wire_size
        )
        self._is_public[sender.node_id] = sender.is_public

    def record_received(self, receiver: NodeAddress, message: Message) -> None:
        traffic = self._per_node[receiver.node_id]
        traffic.rx_bytes += message.wire_size
        traffic.rx_messages += 1
        traffic.rx_by_type[message.type_name] = (
            traffic.rx_by_type.get(message.type_name, 0) + message.wire_size
        )
        self._is_public[receiver.node_id] = receiver.is_public

    def record_drop(self, reason: str) -> None:
        """Record a packet that never reached a node (NAT filtered, lost, dead host)."""
        self._drops[reason] += 1

    # ------------------------------------------------------------------ queries

    def node_traffic(self, node_id: int) -> NodeTraffic:
        """Cumulative traffic for one node (zeros if the node never communicated)."""
        return self._per_node.get(node_id, NodeTraffic())

    def drop_count(self, reason: Optional[str] = None) -> int:
        if reason is None:
            return sum(self._drops.values())
        return self._drops.get(reason, 0)

    @property
    def drop_reasons(self) -> Dict[str, int]:
        return dict(self._drops)

    def snapshot(self, time_ms: float) -> TrafficSnapshot:
        """Capture a copy of all counters, for windowed (steady-state) measurements."""
        return TrafficSnapshot(
            time_ms=time_ms,
            per_node={node_id: t.copy() for node_id, t in self._per_node.items()},
            nat_type_by_node=dict(self._is_public),
        )

    def average_load_bps(
        self,
        since: TrafficSnapshot,
        now_ms: float,
        node_filter: Optional[Callable[[int], bool]] = None,
        include_rx: bool = True,
        include_tx: bool = True,
    ) -> float:
        """Average per-node load in bytes/second over the window ``[since, now]``.

        Parameters
        ----------
        since:
            The snapshot taken at the start of the measurement window.
        now_ms:
            Current virtual time in milliseconds.
        node_filter:
            Restrict the average to nodes for which the predicate returns ``True``
            (e.g. only public nodes). Nodes with no recorded traffic in the window are
            still counted in the denominator if they appear in the snapshot.
        """
        window_seconds = (now_ms - since.time_ms) / 1000.0
        if window_seconds <= 0:
            return 0.0
        node_ids = set(self._per_node) | set(since.per_node)
        if node_filter is not None:
            node_ids = {node_id for node_id in node_ids if node_filter(node_id)}
        if not node_ids:
            return 0.0
        total = 0.0
        for node_id in node_ids:
            current = self._per_node.get(node_id, NodeTraffic())
            baseline = since.per_node.get(node_id, NodeTraffic())
            delta = current.minus(baseline)
            if include_tx:
                total += delta.tx_bytes
            if include_rx:
                total += delta.rx_bytes
        return total / window_seconds / len(node_ids)

    def average_load_by_nat_type(
        self,
        since: TrafficSnapshot,
        now_ms: float,
        public_node_ids: Iterable[int],
        private_node_ids: Iterable[int],
    ) -> Dict[str, float]:
        """Average load (B/s) for public and for private nodes — the Figure 7(a) rows."""
        public_set = set(public_node_ids)
        private_set = set(private_node_ids)
        return {
            "public": self.average_load_bps(
                since, now_ms, node_filter=lambda node_id: node_id in public_set
            ),
            "private": self.average_load_bps(
                since, now_ms, node_filter=lambda node_id: node_id in private_set
            ),
        }

    def is_public(self, node_id: int) -> Optional[bool]:
        """Last-known NAT class of a node, or ``None`` if it never communicated."""
        return self._is_public.get(node_id)
