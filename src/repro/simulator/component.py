"""The protocol building block: a component bound to a port on a host.

This mirrors the Kompics component model the paper's implementation used, reduced to the
features the reproduced protocols actually need:

* message handlers registered per message type (:meth:`Component.subscribe`),
* one-shot and periodic timers (:meth:`Component.schedule`,
  :meth:`Component.schedule_periodic`),
* a start/stop lifecycle tied to the owning host — killing a host (churn, catastrophic
  failure) stops all of its components and cancels their timers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.errors import ProtocolError
from repro.net.address import Endpoint, NodeAddress
from repro.simulator.core import EventHandle
from repro.simulator.message import Message, Packet


class PeriodicTimer:
    """A repeating timer owned by a component.

    The timer re-arms itself after every firing until cancelled. An optional jitter adds
    a uniformly distributed offset to each period, which protocols use to desynchronise
    gossip rounds across nodes (all nodes run rounds at "roughly the same rate, subject
    to clock skew", as the paper puts it).
    """

    def __init__(
        self,
        component: "Component",
        period_ms: float,
        callback: Callable[[], None],
        jitter_ms: float = 0.0,
    ) -> None:
        if period_ms <= 0:
            raise ProtocolError(f"timer period must be positive, got {period_ms}")
        self.component = component
        self.period_ms = period_ms
        self.callback = callback
        self.jitter_ms = jitter_ms
        self.cancelled = False
        self._handle: Optional[EventHandle] = None

    def start(self, initial_delay_ms: Optional[float] = None) -> None:
        delay = self.period_ms if initial_delay_ms is None else initial_delay_ms
        self._arm(delay)

    def cancel(self) -> None:
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _arm(self, delay_ms: float) -> None:
        if self.cancelled:
            return
        jitter = 0.0
        if self.jitter_ms > 0:
            jitter = self.component.rng.uniform(0.0, self.jitter_ms)
        self._handle = self.component.sim.schedule(delay_ms + jitter, self._fire)

    def _fire(self) -> None:
        if self.cancelled or not self.component.started:
            return
        try:
            self.callback()
        finally:
            self._arm(self.period_ms)


class Component:
    """Base class for every protocol in the reproduction.

    A component lives on a :class:`~repro.simulator.host.Host`, is bound to a UDP port,
    and exchanges :class:`~repro.simulator.message.Message` objects with components on
    other hosts through the simulated network.

    Subclasses typically:

    1. call :meth:`subscribe` in ``__init__`` for each message type they handle,
    2. override :meth:`on_start` to arm their gossip round timer,
    3. call :meth:`send` from handlers and timer callbacks.
    """

    def __init__(self, host: "Host", port: int, name: Optional[str] = None) -> None:  # noqa: F821
        from repro.simulator.host import Host  # local import to avoid a cycle

        if not isinstance(host, Host):
            raise ProtocolError(f"expected a Host, got {type(host).__name__}")
        self.host = host
        self.sim = host.sim
        self.port = port
        self.name = name or type(self).__name__
        self.rng = self.sim.derive_rng(self.name, host.address.node_id, port)
        self.started = False
        self._handlers: Dict[Type[Message], Callable[[Packet], None]] = {}
        self._timers: List[PeriodicTimer] = []
        self._scheduled_events: List[EventHandle] = []
        host.bind(port, self)

    # ------------------------------------------------------------------ identity

    @property
    def address(self) -> NodeAddress:
        """The owning host's node address."""
        return self.host.address

    @property
    def self_endpoint(self) -> Endpoint:
        """The endpoint other nodes should use to reach this component."""
        return Endpoint(self.host.address.endpoint.ip, self.port)

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start the component. Idempotent."""
        if self.started:
            return
        self.started = True
        self.on_start()

    def stop(self) -> None:
        """Stop the component, cancelling every timer and pending callback."""
        if not self.started:
            return
        self.started = False
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()
        for handle in self._scheduled_events:
            handle.cancel()
        self._scheduled_events.clear()
        self.on_stop()

    def on_start(self) -> None:
        """Hook for subclasses; called once when the component starts."""

    def on_stop(self) -> None:
        """Hook for subclasses; called once when the component stops."""

    # ------------------------------------------------------------------ messaging

    def subscribe(self, message_type: Type[Message], handler: Callable[[Packet], None]) -> None:
        """Register ``handler`` for packets whose message is of ``message_type``."""
        if message_type in self._handlers:
            raise ProtocolError(
                f"{self.name}: duplicate handler for {message_type.__name__}"
            )
        self._handlers[message_type] = handler

    def handle_packet(self, packet: Packet) -> None:
        """Dispatch an incoming packet to the registered handler (if any)."""
        if not self.started:
            return
        handler = self._handlers.get(type(packet.message))
        if handler is None:
            self.on_unhandled(packet)
            return
        handler(packet)

    def on_unhandled(self, packet: Packet) -> None:
        """Called for packets with no registered handler. Default: ignore silently."""

    def send(self, destination: Endpoint, message: Message) -> None:
        """Send ``message`` to ``destination`` through the simulated network."""
        self.host.send(self.port, destination, message)

    def send_to_node(self, destination: NodeAddress, message: Message) -> None:
        """Send to a node's protocol port (same port number as this component)."""
        self.send(Endpoint(destination.endpoint.ip, self.port), message)

    # ------------------------------------------------------------------ timers

    def schedule(self, delay_ms: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay_ms`` unless the component stops first."""

        def guarded() -> None:
            if self.started:
                callback()

        handle = self.sim.schedule(delay_ms, guarded)
        self._scheduled_events.append(handle)
        if len(self._scheduled_events) > 256:
            self._scheduled_events = [h for h in self._scheduled_events if not h.cancelled and h.callback]
        return handle

    def schedule_periodic(
        self,
        period_ms: float,
        callback: Callable[[], None],
        jitter_ms: float = 0.0,
        initial_delay_ms: Optional[float] = None,
    ) -> PeriodicTimer:
        """Arm a repeating timer; it is cancelled automatically when the component stops."""
        timer = PeriodicTimer(self, period_ms, callback, jitter_ms=jitter_ms)
        self._timers.append(timer)
        timer.start(initial_delay_ms)
        return timer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}(node={self.host.address.node_id}, port={self.port})"
