"""The discrete-event kernel: virtual clock, event queue and seeded RNG streams.

The simulator is deliberately minimal — a binary heap of ``(time, sequence, callback)``
entries — because the protocols above it only need three primitives: *schedule a callback
after a delay*, *cancel it*, and *what time is it now*. Determinism is a first-class
requirement: two runs with the same seed and the same scenario produce identical event
orders, which the integration tests rely on.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Callable, List, Optional

from repro.errors import SimulationError


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the heap entry stays in the queue but is skipped when it
    reaches the front. This keeps cancellation O(1), which matters because protocols
    cancel large numbers of timeouts (every successfully answered request cancels one).
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once."""
        self.cancelled = True
        self.callback = None

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Virtual clock plus event queue.

    Parameters
    ----------
    seed:
        Master seed for the run. All randomness in a simulation must be drawn either
        from :attr:`rng` or from a stream derived with :meth:`derive_rng`, never from
        the global :mod:`random` module, so that runs are reproducible.

    Notes
    -----
    Time is a float number of milliseconds since the start of the run. Events scheduled
    at the same timestamp fire in scheduling order (FIFO), which keeps protocol
    behaviour stable across platforms.
    """

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._events_executed = 0
        self._running = False

    # ------------------------------------------------------------------ scheduling

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``time`` (ms)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, handle)
        return handle

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback)

    # ------------------------------------------------------------------ execution

    def step(self) -> bool:
        """Execute the next pending event. Returns ``False`` if the queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = handle.time
            callback = handle.callback
            handle.callback = None
            self._events_executed += 1
            if callback is not None:
                callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the virtual clock would advance past this time (ms). Events at
            exactly ``until`` are executed. If ``None``, run until the queue drains.
        max_events:
            Safety valve: stop after this many events even if more are pending.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                if not self.step():
                    break
                executed += 1
            if until is not None and self.now < until:
                # Advance the clock even if no event lands exactly on the horizon, so
                # repeated run(until=...) calls see monotonically increasing time.
                self.now = until
        finally:
            self._running = False
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run the event loop for ``duration`` more milliseconds of virtual time."""
        return self.run(until=self.now + duration, max_events=max_events)

    # ------------------------------------------------------------------ randomness

    def derive_rng(self, *labels: object) -> random.Random:
        """Create an independent, reproducible random stream.

        The stream is a pure function of the master seed and the given labels, so
        components can create their own generators without perturbing each other:

        >>> sim = Simulator(seed=7)
        >>> a = sim.derive_rng("croupier", 12)
        >>> b = sim.derive_rng("croupier", 12)
        >>> a.random() == b.random()
        True
        """
        digest = hashlib.sha256()
        digest.update(str(self.seed).encode("utf-8"))
        for label in labels:
            digest.update(b"\x1f")
            digest.update(repr(label).encode("utf-8"))
        derived_seed = int.from_bytes(digest.digest()[:8], "big")
        return random.Random(derived_seed)

    # ------------------------------------------------------------------ introspection

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for handle in self._queue if not handle.cancelled)

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(seed={self.seed}, now={self.now:.1f}ms, "
            f"pending={self.pending_events})"
        )
