"""The discrete-event kernel: virtual clock, event queue and seeded RNG streams.

The simulator is deliberately minimal — a binary heap of ``(time, sequence, callback)``
entries — because the protocols above it only need three primitives: *schedule a callback
after a delay*, *cancel it*, and *what time is it now*. Determinism is a first-class
requirement: two runs with the same seed and the same scenario produce identical event
orders, which the integration tests rely on.

Hot-path notes
--------------
Events carry an optional single ``arg`` slot so high-volume callers (one scheduled
delivery per network packet) can schedule a bound method plus its argument directly
instead of allocating a closure per packet. The kernel also maintains a live-event
counter so :attr:`Simulator.pending_events` is O(1) instead of an O(queue) scan, and
the run loop pops each heap entry exactly once (cancelled entries are discarded the
first time they surface, never re-examined).
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Callable, List, Optional

from repro.errors import SimulationError

class _NoArg:
    """Sentinel type distinguishing "no argument" from "argument is None".

    The sentinel is compared by identity in the event hot path, so it must survive
    ``copy.deepcopy`` as the *same* object — a cloned simulator (``Scenario.clone``)
    still has to recognise argument-less events.
    """

    __slots__ = ()

    def __copy__(self) -> "_NoArg":
        return self

    def __deepcopy__(self, memo: dict) -> "_NoArg":
        return self


#: Sentinel distinguishing "no argument" from "argument is None".
_NO_ARG = _NoArg()


def derive_seed(root_seed: object, *labels: object) -> int:
    """Derive an independent 64-bit seed from a root seed and a label path.

    This is the one seed-derivation rule in the codebase: :meth:`Simulator.derive_rng`
    uses it for per-component RNG streams, and the experiment-matrix runner uses it to
    give every (protocol, scenario, size, seed) cell its own deterministic seed, so a
    cell's result is a pure function of the root seed and its key — independent of
    which worker process runs it, or in what order.
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is *lazy*: the heap entry stays in the queue but is skipped when it
    reaches the front. This keeps cancellation O(1), which matters because protocols
    cancel large numbers of timeouts (every successfully answered request cancels one).
    """

    __slots__ = ("time", "seq", "callback", "arg", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        arg: object = _NO_ARG,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.arg = arg
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing. Safe to call more than once (or after firing)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.callback is not None:
            # Still pending (never fired): drop it from the owning kernel's live count.
            self.callback = None
            if self._sim is not None:
                self._sim._live_events -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Virtual clock plus event queue.

    Parameters
    ----------
    seed:
        Master seed for the run. All randomness in a simulation must be drawn either
        from :attr:`rng` or from a stream derived with :meth:`derive_rng`, never from
        the global :mod:`random` module, so that runs are reproducible.

    Notes
    -----
    Time is a float number of milliseconds since the start of the run. Events scheduled
    at the same timestamp fire in scheduling order (FIFO), which keeps protocol
    behaviour stable across platforms.
    """

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self.now: float = 0.0
        self.rng = random.Random(seed)
        # The heap stores (time, seq, handle) tuples: unique sequence numbers break
        # time ties, so comparisons stay inside C tuple code and never reach the
        # handle object (EventHandle needs no __lt__ at all).
        self._queue: List[tuple] = []
        self._seq = 0
        self._events_executed = 0
        self._live_events = 0
        self._running = False

    # ------------------------------------------------------------------ scheduling

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        arg: object = _NO_ARG,
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``time`` (ms).

        If ``arg`` is given, the callback is invoked as ``callback(arg)`` — the
        allocation-free alternative to wrapping the argument in a lambda.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: t={time} < now={self.now}"
            )
        handle = EventHandle(time, self._seq, callback, arg, self)
        self._seq += 1
        self._live_events += 1
        heapq.heappush(self._queue, (time, handle.seq, handle))
        return handle

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        arg: object = _NO_ARG,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, callback, arg)

    # ------------------------------------------------------------------ execution

    def _fire(self, handle: EventHandle) -> None:
        """Execute one live event that has already been popped from the heap."""
        self.now = handle.time
        callback = handle.callback
        arg = handle.arg
        handle.callback = None
        self._live_events -= 1
        self._events_executed += 1
        if arg is _NO_ARG:
            callback()  # type: ignore[misc]
        else:
            callback(arg)  # type: ignore[misc]

    def step(self) -> bool:
        """Execute the next pending event. Returns ``False`` if the queue is empty."""
        queue = self._queue
        while queue:
            handle = heapq.heappop(queue)[2]
            if handle.cancelled:
                continue
            self._fire(handle)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the virtual clock would advance past this time (ms). Events at
            exactly ``until`` are executed. If ``None``, run until the queue drains.
        max_events:
            Safety valve: stop after this many events even if more are pending.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        executed = 0
        queue = self._queue
        self._running = True
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                head = queue[0][2]
                if head.cancelled:
                    # Discard exactly once; the entry is never re-examined.
                    heapq.heappop(queue)
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(queue)
                self._fire(head)
                executed += 1
            if until is not None and self.now < until:
                # Advance the clock even if no event lands exactly on the horizon, so
                # repeated run(until=...) calls see monotonically increasing time.
                self.now = until
        finally:
            self._running = False
        return executed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run the event loop for ``duration`` more milliseconds of virtual time."""
        return self.run(until=self.now + duration, max_events=max_events)

    # ------------------------------------------------------------------ randomness

    def derive_rng(self, *labels: object) -> random.Random:
        """Create an independent, reproducible random stream.

        The stream is a pure function of the master seed and the given labels, so
        components can create their own generators without perturbing each other:

        >>> sim = Simulator(seed=7)
        >>> a = sim.derive_rng("croupier", 12)
        >>> b = sim.derive_rng("croupier", 12)
        >>> a.random() == b.random()
        True
        """
        return random.Random(derive_seed(self.seed, *labels))

    # ------------------------------------------------------------------ introspection

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1): a live counter)."""
        return self._live_events

    @property
    def events_executed(self) -> int:
        """Total number of live (non-cancelled) callbacks executed so far."""
        return self._events_executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(seed={self.seed}, now={self.now:.1f}ms, "
            f"pending={self.pending_events})"
        )
