"""The simulated datagram network with NAT interposition.

Every packet goes through the same pipeline, which mirrors what a UDP datagram
experiences on the real Internet path the paper's protocols care about:

1. **Outbound translation.** If the sender is behind a NAT, the NAT box allocates (or
   refreshes) a mapping and the packet's wire source becomes the NAT's external
   endpoint. This is how receivers observe private senders — exactly the observation
   Croupier's NAT-type identification protocol and ratio estimator rely on.
2. **Loss.** The configured :class:`~repro.simulator.loss.LossModel` may silently drop
   the packet.
3. **Latency.** The configured :class:`~repro.simulator.latency.LatencyModel` assigns a
   one-way delay and the delivery is scheduled on the simulator.
4. **Inbound filtering.** If the destination IP belongs to a NAT box, the box checks its
   mapping table and filtering policy; packets with no matching mapping are dropped
   (this is what makes private nodes unreachable for unsolicited traffic). Otherwise the
   destination is a public host and the packet is delivered directly.
5. **Dispatch.** The receiving host hands the packet to the component bound on the
   destination port.

All traffic is accounted in a :class:`~repro.simulator.monitor.TrafficMonitor`.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.errors import NetworkError
from repro.net.address import Endpoint, parse_ipv4
from repro.simulator.core import Simulator
from repro.simulator.host import Host
from repro.simulator.latency import ConstantLatency, LatencyModel
from repro.simulator.loss import LossModel, NoLoss
from repro.simulator.message import Message, Packet
from repro.simulator.monitor import TrafficMonitor


class Network:
    """UDP-like datagram delivery between hosts, with NAT and firewall interposition."""

    def __init__(
        self,
        sim: Simulator,
        latency_model: Optional[LatencyModel] = None,
        loss_model: Optional[LossModel] = None,
        monitor: Optional[TrafficMonitor] = None,
    ) -> None:
        self.sim = sim
        self.latency_model = latency_model or ConstantLatency(50.0)
        self.loss_model = loss_model or NoLoss()
        self.monitor = monitor or TrafficMonitor()
        self.rng = sim.derive_rng("network")
        # Maps an IP address to whatever answers for it: a public Host or a NAT box.
        self._ip_table: Dict[str, Union[Host, "NatGateway"]] = {}
        self._packets_sent = 0
        self._packets_delivered = 0
        # Optional network split (the workload timeline's Partition event): when set,
        # packets whose source and destination wire IPs sit on different sides are
        # dropped. ``None`` — the default, and the only state the paper's experiments
        # use — costs one identity check per send.
        self.partition: Optional["NetworkPartition"] = None

    # ------------------------------------------------------------------ registration

    def register_host(self, host: Host) -> None:
        """Attach a host to the network.

        Public hosts claim their own IP address. Private hosts are attached *behind*
        their NAT box; the NAT box claims its external IP (idempotently, so several
        private hosts can share one NAT).
        """
        if host.natbox is None:
            ip = host.address.endpoint.ip
            existing = self._ip_table.get(ip)
            if existing is not None and existing is not host:
                raise NetworkError(f"IP {ip} already registered to {existing!r}")
            self._ip_table[ip] = host
            # Warm the shared parse_ipv4 memo so the first packet pays no parse.
            parse_ipv4(ip)
        else:
            natbox = host.natbox
            existing = self._ip_table.get(natbox.external_ip)
            if existing is None:
                self._ip_table[natbox.external_ip] = natbox
            elif existing is not natbox:
                raise NetworkError(
                    f"external IP {natbox.external_ip} already registered to {existing!r}"
                )
            natbox.attach_host(host)
            # Latency is always resolved from the NAT's *external* IP (the wire
            # source after outbound translation), so that is what we pre-parse.
            parse_ipv4(natbox.external_ip)

    def unregister_host(self, host: Host) -> None:
        """Detach a (failed) host. NAT boxes stay registered; they just lead nowhere."""
        if host.natbox is None:
            current = self._ip_table.get(host.address.endpoint.ip)
            if current is host:
                del self._ip_table[host.address.endpoint.ip]
        else:
            host.natbox.detach_host(host)

    def lookup_ip(self, ip: str) -> Optional[Union[Host, "NatGateway"]]:
        """Return whatever answers for ``ip`` (used by tests and the NAT substrate)."""
        return self._ip_table.get(ip)

    # ------------------------------------------------------------------ sending

    def send(self, host: Host, src_port: int, destination: Endpoint, message: Message) -> None:
        """Send one datagram. See the module docstring for the pipeline."""
        if not host.alive:
            return
        internal_source = host.source_endpoint(src_port)
        if host.natbox is not None:
            wire_source = host.natbox.translate_outbound(
                internal_source, destination, self.sim.now
            )
            if wire_source is None:
                self.monitor.record_drop("nat_allocation_failed")
                return
        else:
            wire_source = internal_source

        self.monitor.record_sent(host.address, message)
        self._packets_sent += 1

        if self.loss_model.should_drop(self.rng, host.address, destination.ip):
            self.monitor.record_drop("link_loss")
            return

        if self.partition is not None and self.partition.blocks(
            wire_source.ip, destination.ip
        ):
            self.monitor.record_drop("partitioned")
            return

        # parse_ipv4 is memoised, so both lookups are dict hits: no string parsing
        # on the per-packet path.
        delay = self.latency_model.latency(
            parse_ipv4(wire_source.ip), parse_ipv4(destination.ip)
        )
        packet = Packet(
            source=wire_source,
            destination=destination,
            message=message,
            sender=host.address,
            sent_at=self.sim.now,
        )
        # Direct (callback, arg) event slot: no per-packet closure allocation.
        self.sim.schedule(delay, self._deliver, packet)

    # ------------------------------------------------------------------ delivery

    def _deliver(self, packet: Packet) -> None:
        target = self._ip_table.get(packet.destination.ip)
        if target is None:
            self.monitor.record_drop("unknown_destination")
            return
        if isinstance(target, Host):
            self._packets_delivered += 1
            target.deliver(packet)
            return
        # The destination IP belongs to a NAT box: apply inbound filtering.
        internal = target.accept_inbound(packet.source, packet.destination, self.sim.now)
        if internal is None:
            self.monitor.record_drop("nat_filtered")
            return
        inner_host = target.host_for(internal)
        if inner_host is None or not inner_host.alive:
            self.monitor.record_drop("dead_host")
            return
        rewritten = Packet(
            source=packet.source,
            destination=internal,
            message=packet.message,
            sender=packet.sender,
            sent_at=packet.sent_at,
        )
        self._packets_delivered += 1
        inner_host.deliver(rewritten)

    # ------------------------------------------------------------------ stats

    @property
    def packets_sent(self) -> int:
        return self._packets_sent

    @property
    def packets_delivered(self) -> int:
        return self._packets_delivered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(hosts={len(self._ip_table)}, sent={self._packets_sent}, "
            f"delivered={self._packets_delivered})"
        )


class NetworkPartition:
    """A two-sided network split over wire IPs (installed by the Partition event).

    ``isolated`` holds one side's external IPs (a NAT'ed node's side is decided by
    its gateway's external IP — the address its packets actually travel under). IPs
    never assigned to a side (e.g. nodes that joined after the split) are treated as
    the majority side, so a partition only ever blocks traffic it explicitly named.
    """

    __slots__ = ("isolated",)

    def __init__(self, isolated) -> None:
        self.isolated = frozenset(isolated)

    def blocks(self, source_ip: str, destination_ip: str) -> bool:
        return (source_ip in self.isolated) != (destination_ip in self.isolated)


class NatGateway:
    """Protocol (interface) that NAT boxes implement so the network can route through them.

    Defined here to document the contract without importing :mod:`repro.nat` (which
    would create an import cycle); :class:`repro.nat.nat_box.NatBox` satisfies it.
    """

    external_ip: str

    def attach_host(self, host: Host) -> None:  # pragma: no cover - interface only
        raise NotImplementedError

    def detach_host(self, host: Host) -> None:  # pragma: no cover - interface only
        raise NotImplementedError

    def translate_outbound(
        self, internal_source: Endpoint, destination: Endpoint, now: float
    ) -> Optional[Endpoint]:  # pragma: no cover - interface only
        raise NotImplementedError

    def accept_inbound(
        self, source: Endpoint, external_destination: Endpoint, now: float
    ) -> Optional[Endpoint]:  # pragma: no cover - interface only
        raise NotImplementedError

    def host_for(self, internal_endpoint: Endpoint) -> Optional[Host]:  # pragma: no cover
        raise NotImplementedError
