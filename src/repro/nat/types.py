"""NAT behaviour vocabulary (RFC 4787 / NATCracker terminology).

A NAT's observable behaviour is described by three orthogonal policies plus a UDP
mapping timeout. The combinations commonly referred to as *full cone*, *restricted
cone*, *port-restricted cone* and *symmetric* NATs are provided as ready-made
:class:`NatProfile` instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class MappingPolicy(enum.Enum):
    """How the NAT reuses an external port for flows from the same internal endpoint.

    ``ENDPOINT_INDEPENDENT``
        One external port per internal endpoint, reused for every destination. This is
        the behaviour required for hole punching to work reliably.
    ``ADDRESS_DEPENDENT``
        A separate external port per (internal endpoint, destination IP).
    ``ADDRESS_PORT_DEPENDENT``
        A separate external port per (internal endpoint, destination IP, destination
        port) — the "symmetric" NAT behaviour that defeats simple hole punching.
    """

    ENDPOINT_INDEPENDENT = "ei"
    ADDRESS_DEPENDENT = "ad"
    ADDRESS_PORT_DEPENDENT = "apd"


class FilteringPolicy(enum.Enum):
    """Which inbound packets the NAT lets through to an existing mapping.

    ``ENDPOINT_INDEPENDENT``
        Anyone may send to the mapping's external port once it exists.
    ``ADDRESS_DEPENDENT``
        Only hosts (IP addresses) the internal endpoint has already sent to.
    ``ADDRESS_PORT_DEPENDENT``
        Only the exact (IP, port) endpoints the internal endpoint has already sent to.
    """

    ENDPOINT_INDEPENDENT = "ei"
    ADDRESS_DEPENDENT = "ad"
    ADDRESS_PORT_DEPENDENT = "apd"


@dataclass(frozen=True)
class NatProfile:
    """A complete description of a NAT box's behaviour.

    Attributes
    ----------
    mapping:
        The mapping (binding re-use) policy.
    filtering:
        The inbound filtering policy.
    mapping_timeout_ms:
        Idle time after which a UDP mapping is dropped. The paper assumes this is below
        five minutes (it uses a five-minute quiet period in the ForwardTest); 60 seconds
        is a common measured value and the default here.
    refresh_on_inbound:
        Whether inbound traffic refreshes the mapping timer (most consumer NATs only
        refresh on outbound traffic, which is the default).
    port_preservation:
        Whether the NAT tries to keep the external port equal to the internal port.
    """

    mapping: MappingPolicy = MappingPolicy.ENDPOINT_INDEPENDENT
    filtering: FilteringPolicy = FilteringPolicy.ENDPOINT_INDEPENDENT
    mapping_timeout_ms: float = 60_000.0
    refresh_on_inbound: bool = False
    port_preservation: bool = True

    def __post_init__(self) -> None:
        if self.mapping_timeout_ms <= 0:
            raise ConfigurationError(
                f"mapping_timeout_ms must be positive, got {self.mapping_timeout_ms}"
            )

    # ------------------------------------------------------------------ common profiles

    @staticmethod
    def full_cone(mapping_timeout_ms: float = 60_000.0) -> "NatProfile":
        """Endpoint-independent mapping and filtering."""
        return NatProfile(
            mapping=MappingPolicy.ENDPOINT_INDEPENDENT,
            filtering=FilteringPolicy.ENDPOINT_INDEPENDENT,
            mapping_timeout_ms=mapping_timeout_ms,
        )

    @staticmethod
    def restricted_cone(mapping_timeout_ms: float = 60_000.0) -> "NatProfile":
        """Endpoint-independent mapping, address-dependent filtering."""
        return NatProfile(
            mapping=MappingPolicy.ENDPOINT_INDEPENDENT,
            filtering=FilteringPolicy.ADDRESS_DEPENDENT,
            mapping_timeout_ms=mapping_timeout_ms,
        )

    @staticmethod
    def port_restricted_cone(mapping_timeout_ms: float = 60_000.0) -> "NatProfile":
        """Endpoint-independent mapping, address-and-port-dependent filtering."""
        return NatProfile(
            mapping=MappingPolicy.ENDPOINT_INDEPENDENT,
            filtering=FilteringPolicy.ADDRESS_PORT_DEPENDENT,
            mapping_timeout_ms=mapping_timeout_ms,
        )

    @staticmethod
    def symmetric(mapping_timeout_ms: float = 60_000.0) -> "NatProfile":
        """Address-and-port-dependent mapping and filtering (hardest to traverse)."""
        return NatProfile(
            mapping=MappingPolicy.ADDRESS_PORT_DEPENDENT,
            filtering=FilteringPolicy.ADDRESS_PORT_DEPENDENT,
            mapping_timeout_ms=mapping_timeout_ms,
            port_preservation=False,
        )

    def describe(self) -> str:
        return (
            f"NatProfile(mapping={self.mapping.value}, filtering={self.filtering.value}, "
            f"timeout={self.mapping_timeout_ms / 1000:.0f}s)"
        )


#: The canonical name -> factory mapping for the standard profiles. This is the one
#: vocabulary shared by the matrix axes (``--nat-profiles``), the NAT mixtures
#: (:mod:`repro.nat.mixture`) and the per-NAT-type metric breakdowns.
NAMED_PROFILES = {
    "full_cone": NatProfile.full_cone,
    "restricted_cone": NatProfile.restricted_cone,
    "port_restricted_cone": NatProfile.port_restricted_cone,
    "symmetric": NatProfile.symmetric,
}


def profile_name(profile: NatProfile) -> str:
    """The canonical name of a profile, or ``"custom"`` for non-standard ones."""
    for name, factory in NAMED_PROFILES.items():
        if profile == factory(mapping_timeout_ms=profile.mapping_timeout_ms):
            return name
    return "custom"
