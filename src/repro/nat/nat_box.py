"""The NAT gateway itself: bindings, translation, filtering and expiry.

A :class:`NatBox` owns one external (public) IP address and any number of internal
hosts. It satisfies the :class:`repro.simulator.network.NatGateway` contract, so the
network routes every packet addressed to the NAT's external IP through
:meth:`NatBox.accept_inbound`, and every packet sent by an internal host through
:meth:`NatBox.translate_outbound`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import NatError
from repro.nat.allocator import AllocationPolicy, PortAllocator
from repro.nat.types import FilteringPolicy, MappingPolicy, NatProfile
from repro.net.address import Endpoint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.host import Host


@dataclass
class NatBinding:
    """One UDP mapping in the NAT's translation table.

    Attributes
    ----------
    internal:
        The internal endpoint (private IP and port) the binding belongs to.
    external_port:
        The external port allocated for it on the NAT's public IP.
    created_at / last_refreshed:
        Virtual timestamps (ms) used for idle expiry.
    contacted:
        The set of remote endpoints this binding has sent packets to; consulted by the
        address-dependent and address-and-port-dependent filtering policies.
    """

    internal: Endpoint
    external_port: int
    created_at: float
    last_refreshed: float
    contacted: Set[Endpoint] = field(default_factory=set)
    permanent: bool = False

    def is_expired(self, now: float, timeout_ms: float) -> bool:
        if self.permanent:
            return False
        return (now - self.last_refreshed) > timeout_ms

    def allows_inbound(self, source: Endpoint, policy: FilteringPolicy) -> bool:
        if policy is FilteringPolicy.ENDPOINT_INDEPENDENT:
            return True
        if policy is FilteringPolicy.ADDRESS_DEPENDENT:
            return any(remote.ip == source.ip for remote in self.contacted)
        return source in self.contacted


class NatBox:
    """A NAT gateway with configurable mapping, filtering and allocation behaviour."""

    def __init__(
        self,
        external_ip: str,
        profile: Optional[NatProfile] = None,
        allocation: AllocationPolicy = AllocationPolicy.PORT_PRESERVATION,
    ) -> None:
        self.external_ip = external_ip
        self.profile = profile or NatProfile.restricted_cone()
        self._allocator = PortAllocator(allocation)
        # Mapping key -> binding. The key shape depends on the mapping policy.
        self._bindings: Dict[Tuple, NatBinding] = {}
        # External port -> binding, for inbound lookup.
        self._by_external_port: Dict[int, NatBinding] = {}
        # Internal IP -> host, for final delivery.
        self._hosts: Dict[str, "Host"] = {}

    # ------------------------------------------------------------------ host attachment

    def attach_host(self, host: "Host") -> None:
        internal_ip = host.local_endpoint.ip
        existing = self._hosts.get(internal_ip)
        if existing is not None and existing is not host:
            raise NatError(
                f"NAT {self.external_ip}: internal IP {internal_ip} already attached"
            )
        self._hosts[internal_ip] = host

    def detach_host(self, host: "Host") -> None:
        internal_ip = host.local_endpoint.ip
        if self._hosts.get(internal_ip) is host:
            del self._hosts[internal_ip]

    def host_for(self, internal_endpoint: Endpoint) -> Optional["Host"]:
        return self._hosts.get(internal_endpoint.ip)

    @property
    def attached_hosts(self) -> int:
        return len(self._hosts)

    # ------------------------------------------------------------------ outbound

    def translate_outbound(
        self, internal_source: Endpoint, destination: Endpoint, now: float
    ) -> Optional[Endpoint]:
        """Allocate/refresh the binding for an outbound packet and return the wire source."""
        self._expire_bindings(now)
        key = self._mapping_key(internal_source, destination)
        binding = self._bindings.get(key)
        if binding is None:
            external_port = self._allocator.allocate(preferred_port=internal_source.port)
            binding = NatBinding(
                internal=internal_source,
                external_port=external_port,
                created_at=now,
                last_refreshed=now,
            )
            self._bindings[key] = binding
            self._by_external_port[external_port] = binding
        binding.last_refreshed = now
        binding.contacted.add(destination)
        return Endpoint(self.external_ip, binding.external_port)

    # ------------------------------------------------------------------ inbound

    def accept_inbound(
        self, source: Endpoint, external_destination: Endpoint, now: float
    ) -> Optional[Endpoint]:
        """Apply filtering to an inbound packet; return the internal endpoint or ``None``."""
        self._expire_bindings(now)
        binding = self._by_external_port.get(external_destination.port)
        if binding is None:
            return None
        if not binding.allows_inbound(source, self.profile.filtering):
            return None
        if self.profile.refresh_on_inbound:
            binding.last_refreshed = now
        return binding.internal

    # ------------------------------------------------------------------ introspection

    def binding_for_internal(self, internal_source: Endpoint) -> Optional[NatBinding]:
        """Return any live binding for an internal endpoint (testing/diagnostics)."""
        for binding in self._bindings.values():
            if binding.internal == internal_source:
                return binding
        return None

    @property
    def active_bindings(self) -> int:
        return len(self._bindings)

    def has_mapping_to(self, internal_source: Endpoint, remote: Endpoint) -> bool:
        """Whether the internal endpoint has an unexpired binding that contacted ``remote``."""
        binding = self.binding_for_internal(internal_source)
        return binding is not None and remote in binding.contacted

    # ------------------------------------------------------------------ internals

    def _mapping_key(self, internal_source: Endpoint, destination: Endpoint) -> Tuple:
        if self.profile.mapping is MappingPolicy.ENDPOINT_INDEPENDENT:
            return (internal_source,)
        if self.profile.mapping is MappingPolicy.ADDRESS_DEPENDENT:
            return (internal_source, destination.ip)
        return (internal_source, destination.ip, destination.port)

    def _expire_bindings(self, now: float) -> None:
        expired = [
            key
            for key, binding in self._bindings.items()
            if binding.is_expired(now, self.profile.mapping_timeout_ms)
        ]
        for key in expired:
            binding = self._bindings.pop(key)
            self._by_external_port.pop(binding.external_port, None)
            self._allocator.release(binding.external_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NatBox({self.external_ip}, {self.profile.describe()}, "
            f"bindings={self.active_bindings})"
        )
