"""A stateful firewall: no address translation, but unsolicited inbound is blocked.

The paper's system model groups firewalled nodes together with NATed nodes as *private*:
"a private node resides behind at least one NAT or firewall, and is not reachable from
outside its private network unless it is the private node that initiates contact"
(Section III). :class:`FirewallBox` models that case: the host keeps its own globally
routable IP address (no translation), but the gateway only admits inbound packets on
flows the host opened recently.
"""

from __future__ import annotations

from typing import Optional

from repro.nat.nat_box import NatBox
from repro.nat.types import FilteringPolicy, NatProfile
from repro.net.address import Endpoint


class FirewallBox(NatBox):
    """A stateful firewall in front of a single host.

    The firewall claims the host's own IP on the network; outbound packets keep their
    source endpoint unchanged, and inbound packets are admitted only if the host has an
    unexpired outbound flow matching the configured filtering policy.
    """

    def __init__(
        self,
        host_ip: str,
        filtering: FilteringPolicy = FilteringPolicy.ADDRESS_PORT_DEPENDENT,
        flow_timeout_ms: float = 60_000.0,
    ) -> None:
        profile = NatProfile(
            filtering=filtering,
            mapping_timeout_ms=flow_timeout_ms,
            port_preservation=True,
        )
        super().__init__(external_ip=host_ip, profile=profile)

    def translate_outbound(
        self, internal_source: Endpoint, destination: Endpoint, now: float
    ) -> Optional[Endpoint]:
        """Record the flow but keep the source endpoint unchanged (no translation)."""
        translated = super().translate_outbound(internal_source, destination, now)
        if translated is None:
            return None
        # Port preservation plus a single host behind the box guarantees that the
        # allocated external port equals the internal one; assert the invariant so a
        # future change to the allocator cannot silently break firewall semantics.
        assert translated.port == internal_source.port, "firewall must not rewrite ports"
        return Endpoint(self.external_ip, internal_source.port)
