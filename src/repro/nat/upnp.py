"""UPnP Internet Gateway Device (IGD) emulation.

The paper's NAT-type identification protocol (Algorithm 1, line 4) first checks whether
the node's gateway supports the UPnP IGD protocol; if it does, the node explicitly maps
a local port to a public port and is classified as a **public** node, because any other
node can then reach it directly.

:class:`UpnpNatBox` is a regular :class:`~repro.nat.nat_box.NatBox` that additionally
accepts explicit, permanent port mappings with endpoint-independent filtering — which is
precisely the observable effect of a UPnP ``AddPortMapping`` call.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import NatError
from repro.nat.allocator import AllocationPolicy
from repro.nat.nat_box import NatBinding, NatBox
from repro.nat.types import FilteringPolicy, NatProfile
from repro.net.address import Endpoint


class UpnpNatBox(NatBox):
    """A NAT box whose owner can install explicit port mappings (UPnP IGD)."""

    def __init__(
        self,
        external_ip: str,
        profile: Optional[NatProfile] = None,
        allocation: AllocationPolicy = AllocationPolicy.PORT_PRESERVATION,
    ) -> None:
        super().__init__(external_ip, profile=profile, allocation=allocation)
        self.supports_upnp_igd = True

    def add_port_mapping(
        self,
        internal_endpoint: Endpoint,
        external_port: Optional[int] = None,
        now: float = 0.0,
    ) -> Endpoint:
        """Install a permanent mapping from ``external_port`` to ``internal_endpoint``.

        Returns the resulting external endpoint. The mapping never expires and accepts
        inbound packets from any source (endpoint-independent filtering), regardless of
        the box's normal filtering policy — that is what makes the node effectively
        public.
        """
        requested = external_port if external_port is not None else internal_endpoint.port
        if requested in self._by_external_port:
            binding = self._by_external_port[requested]
            if binding.internal != internal_endpoint:
                raise NatError(
                    f"UPnP mapping conflict on external port {requested} "
                    f"(held by {binding.internal})"
                )
            binding.permanent = True
            return Endpoint(self.external_ip, requested)
        allocated = self._allocator.allocate(preferred_port=requested)
        binding = NatBinding(
            internal=internal_endpoint,
            external_port=allocated,
            created_at=now,
            last_refreshed=now,
            permanent=True,
        )
        self._bindings[("upnp", internal_endpoint, allocated)] = binding
        self._by_external_port[allocated] = binding
        return Endpoint(self.external_ip, allocated)

    def accept_inbound(
        self, source: Endpoint, external_destination: Endpoint, now: float
    ) -> Optional[Endpoint]:
        """Permanent (UPnP) bindings accept from anyone; others follow the NAT profile."""
        binding = self._by_external_port.get(external_destination.port)
        if binding is not None and binding.permanent:
            if binding.allows_inbound(source, FilteringPolicy.ENDPOINT_INDEPENDENT):
                return binding.internal
        return super().accept_inbound(source, external_destination, now)

    def remove_port_mapping(self, external_port: int) -> None:
        """Remove a previously installed explicit mapping (UPnP ``DeletePortMapping``)."""
        binding = self._by_external_port.get(external_port)
        if binding is None or not binding.permanent:
            return
        self._by_external_port.pop(external_port, None)
        for key, value in list(self._bindings.items()):
            if value is binding:
                del self._bindings[key]
        self._allocator.release(external_port)
