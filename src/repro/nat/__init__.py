"""NAT gateway emulation: mapping, filtering and allocation policies, UPnP, firewalls.

The paper's protocols never inspect NAT internals — they only experience their
*effects*: unsolicited packets to private nodes disappear, replies on recently used
mappings get through, and mappings expire after an idle timeout. This package implements
exactly those effects with the policy vocabulary of RFC 4787 and the NATCracker paper
the authors cite ([20]): endpoint-independent / address-dependent / address-and-port-
dependent mapping and filtering, plus port-preserving, sequential or random port
allocation.

It also provides the two ways a node behind a gateway can still be *public*:

* :class:`~repro.nat.upnp.UpnpNatBox` — a NAT whose owner can install an explicit port
  mapping through the UPnP IGD protocol, making it reachable like a public node (the
  paper's NAT-type identification treats such nodes as public);
* and the degenerate :class:`~repro.nat.firewall.FirewallBox`, a stateful firewall that
  performs no address translation but still blocks unsolicited inbound traffic.

Finally, :mod:`repro.nat.traversal` contains the relaying envelope and hole-punching
coordination messages that the **baseline** protocols (Nylon, Gozar) need. Croupier
itself never uses them — that is the point of the paper.
"""

from repro.nat.allocator import AllocationPolicy, PortAllocator
from repro.nat.firewall import FirewallBox
from repro.nat.mixture import NAT_MIXTURES, NatMixture, get_mixture
from repro.nat.nat_box import NatBinding, NatBox
from repro.nat.types import (
    NAMED_PROFILES,
    FilteringPolicy,
    MappingPolicy,
    NatProfile,
    profile_name,
)
from repro.nat.upnp import UpnpNatBox

__all__ = [
    "AllocationPolicy",
    "FilteringPolicy",
    "FirewallBox",
    "MappingPolicy",
    "NAMED_PROFILES",
    "NAT_MIXTURES",
    "NatBinding",
    "NatBox",
    "NatMixture",
    "NatProfile",
    "PortAllocator",
    "UpnpNatBox",
    "get_mixture",
    "profile_name",
]
