"""External port allocation strategies for NAT boxes."""

from __future__ import annotations

import enum
import random
from typing import Optional, Set

from repro.errors import NatError

#: The range of external ports a NAT box hands out (inclusive start, exclusive end).
EPHEMERAL_PORT_RANGE = (1024, 65536)


class AllocationPolicy(enum.Enum):
    """How a NAT chooses the external port for a new mapping."""

    PORT_PRESERVATION = "preserve"
    SEQUENTIAL = "sequential"
    RANDOM = "random"


class PortAllocator:
    """Hands out unused external ports according to an :class:`AllocationPolicy`."""

    def __init__(
        self,
        policy: AllocationPolicy = AllocationPolicy.PORT_PRESERVATION,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.policy = policy
        self.rng = rng or random.Random(0)
        self._in_use: Set[int] = set()
        self._next_sequential = EPHEMERAL_PORT_RANGE[0]

    def allocate(self, preferred_port: Optional[int] = None) -> int:
        """Allocate an external port.

        With :attr:`AllocationPolicy.PORT_PRESERVATION` the preferred (internal) port is
        used when free, falling back to sequential allocation on collision — which is
        what most consumer NATs do and what keeps descriptor endpoints stable in the
        simulation.
        """
        if self.policy is AllocationPolicy.PORT_PRESERVATION and preferred_port is not None:
            if preferred_port not in self._in_use:
                self._in_use.add(preferred_port)
                return preferred_port
        if self.policy is AllocationPolicy.RANDOM:
            return self._allocate_random()
        return self._allocate_sequential()

    def release(self, port: int) -> None:
        """Return a port to the pool (called when a mapping expires)."""
        self._in_use.discard(port)

    @property
    def in_use(self) -> int:
        """Number of currently allocated ports."""
        return len(self._in_use)

    # ------------------------------------------------------------------ internals

    def _allocate_sequential(self) -> int:
        start, end = EPHEMERAL_PORT_RANGE
        for _ in range(end - start):
            candidate = self._next_sequential
            self._next_sequential += 1
            if self._next_sequential >= end:
                self._next_sequential = start
            if candidate not in self._in_use:
                self._in_use.add(candidate)
                return candidate
        raise NatError("NAT port pool exhausted")

    def _allocate_random(self) -> int:
        start, end = EPHEMERAL_PORT_RANGE
        for _ in range(4096):
            candidate = self.rng.randrange(start, end)
            if candidate not in self._in_use:
                self._in_use.add(candidate)
                return candidate
        # Extremely unlikely unless the pool is nearly full; fall back to a scan.
        return self._allocate_sequential()
