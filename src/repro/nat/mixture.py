"""NAT-type mixtures: heterogeneous gateway populations.

The paper's evaluation does not run one NAT behaviour for every gateway — it runs
against the *measured distribution* of NAT types its authors observed in deployed
networks (the NATCracker-style measurement cited by the paper: cone NATs dominate,
with address-and-port-dependent "symmetric" boxes a sizeable minority). A
:class:`NatMixture` captures exactly that: a named weighting over the standard
:class:`~repro.nat.types.NatProfile` vocabulary, sampled deterministically per
gateway from a seeded random stream.

Two mixtures are registered by default:

* ``paper`` — the measured NAT-type distribution the paper evaluates against;
* ``uniform`` — every standard profile equally likely (a stress mixture for tests).

Mixtures are immutable and validated at construction, so a registry entry can be
shared freely across scenarios, worker processes and matrix cells.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.nat.types import NAMED_PROFILES, NatProfile


@dataclass(frozen=True)
class NatMixture:
    """A weighted distribution over named NAT profiles.

    ``weights`` maps profile names (keys of :data:`~repro.nat.types.NAMED_PROFILES`)
    to positive weights; they need not sum to one — sampling normalises. Sampling is
    deterministic given the RNG: one ``rng.random()`` draw per gateway, resolved
    against the precomputed cumulative table, so the assignment of NAT types to
    gateways is a pure function of the scenario seed.
    """

    name: str
    weights: Tuple[Tuple[str, float], ...]
    _cumulative: Tuple[float, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError(f"NAT mixture {self.name!r} has no weights")
        total = 0.0
        for profile_name, weight in self.weights:
            if profile_name not in NAMED_PROFILES:
                raise ConfigurationError(
                    f"NAT mixture {self.name!r} references unknown profile "
                    f"{profile_name!r}; known profiles: {sorted(NAMED_PROFILES)}"
                )
            if not weight > 0.0:
                raise ConfigurationError(
                    f"NAT mixture {self.name!r} has non-positive weight "
                    f"{weight!r} for profile {profile_name!r}"
                )
            total += weight
        names = [profile_name for profile_name, _ in self.weights]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"NAT mixture {self.name!r} lists a profile more than once"
            )
        cumulative = tuple(
            itertools.accumulate(weight / total for _, weight in self.weights)
        )
        object.__setattr__(self, "_cumulative", cumulative)

    @classmethod
    def from_weights(cls, name: str, weights: Mapping[str, float]) -> "NatMixture":
        """Build a mixture from a plain ``{profile_name: weight}`` mapping."""
        return cls(name=name, weights=tuple(weights.items()))

    def sample_name(self, rng: random.Random) -> str:
        """Draw one profile name (exactly one ``rng.random()`` consumption)."""
        draw = rng.random()
        for (profile_name, _), bound in zip(self.weights, self._cumulative):
            if draw < bound:
                return profile_name
        return self.weights[-1][0]  # guard against draw == 1.0 rounding

    def sample(self, rng: random.Random) -> Tuple[str, NatProfile]:
        """Draw one ``(profile_name, NatProfile)`` pair."""
        profile_name = self.sample_name(rng)
        return profile_name, NAMED_PROFILES[profile_name]()

    def profile_names(self) -> List[str]:
        return [profile_name for profile_name, _ in self.weights]

    def describe(self) -> str:
        parts = ", ".join(
            f"{profile_name}={weight:g}" for profile_name, weight in self.weights
        )
        return f"NatMixture({self.name}: {parts})"


#: The paper's measured NAT-type distribution: endpoint-independent-mapping cone
#: NATs dominate (restricted-cone filtering most common), symmetric NATs are a
#: ~15 % minority — the skew the paper's heterogeneous-gateway runs assume.
PAPER_NAT_MIXTURE = NatMixture(
    name="paper",
    weights=(
        ("full_cone", 0.24),
        ("restricted_cone", 0.33),
        ("port_restricted_cone", 0.28),
        ("symmetric", 0.15),
    ),
)

#: Every standard profile equally likely — a stress mixture for tests and sweeps.
UNIFORM_NAT_MIXTURE = NatMixture(
    name="uniform",
    weights=tuple((profile_name, 1.0) for profile_name in sorted(NAMED_PROFILES)),
)

#: Named mixtures usable as matrix-axis values (``--nat-mixtures``).
NAT_MIXTURES: Dict[str, NatMixture] = {
    mixture.name: mixture for mixture in (PAPER_NAT_MIXTURE, UNIFORM_NAT_MIXTURE)
}


def get_mixture(name: str) -> NatMixture:
    """Look up a registered mixture, raising a helpful error on unknown names."""
    try:
        return NAT_MIXTURES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown NAT mixture {name!r}; registered: {sorted(NAT_MIXTURES)}"
        ) from None
