"""NAT traversal primitives used by the *baseline* protocols (Nylon, Gozar).

Croupier's whole point is that it needs none of this — view exchanges are only ever sent
to public nodes. The baselines, however, must reach private nodes, and they do so with
two classic techniques that this module provides as reusable message types:

* **Relaying** (:class:`RelayEnvelope`): the payload is wrapped in an envelope addressed
  to a relay node, which unwraps it and forwards it (directly, or along a further chain
  of relays) to the final private target. Gozar uses a single relay hop through one of
  the private node's *parents*; Nylon may traverse an unbounded chain of rendezvous
  points (RVPs).
* **Hole punching** (:class:`HolePunchRequest` / :class:`HolePunchPing`): a rendezvous
  node asks the private target to open an outbound flow towards the initiator, which
  installs the NAT mapping the initiator's subsequent packets will traverse.
* **Keep-alives** (:class:`KeepAlive`): private nodes periodically refresh the NAT
  mappings towards their relays/RVPs so that relayed traffic keeps flowing. These
  messages are a real cost and are accounted like any other traffic — they are part of
  why the baselines have higher overhead in Figure 7(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.net.address import NodeAddress
from repro.simulator.message import Message

#: Extra bytes a relay envelope adds on the wire: final target address + hop counter.
RELAY_HEADER_BYTES = 12


@dataclass
class RelayEnvelope(Message):
    """A message wrapped for delivery to a private node via one or more relays.

    Attributes
    ----------
    target:
        The private node the payload is ultimately destined for.
    initiator:
        The node that originated the payload (so the target can reply directly).
    payload:
        The wrapped protocol message.
    hops:
        How many relay hops the envelope has already traversed. Incremented by each
        relay; used both for loop protection and for the overhead statistics.
    max_hops:
        Relays drop the envelope once this limit is reached (loop/fragility guard).
    """

    target: NodeAddress
    initiator: NodeAddress
    payload: Message
    hops: int = 0
    max_hops: int = 16

    def payload_size(self) -> int:
        return RELAY_HEADER_BYTES + self.initiator.wire_size + self.payload.payload_size()

    def forwarded(self) -> "RelayEnvelope":
        """Return a copy with the hop counter incremented (used by each relay)."""
        return RelayEnvelope(
            target=self.target,
            initiator=self.initiator,
            payload=self.payload,
            hops=self.hops + 1,
            max_hops=self.max_hops,
        )

    @property
    def exceeded_hop_limit(self) -> bool:
        return self.hops >= self.max_hops


@dataclass
class HolePunchRequest(Message):
    """Ask a private node (via its rendezvous) to open a flow towards ``initiator``."""

    initiator: NodeAddress
    target: NodeAddress
    hops: int = 0
    max_hops: int = 16

    def payload_size(self) -> int:
        return self.initiator.wire_size + self.target.wire_size + 2

    def forwarded(self) -> "HolePunchRequest":
        return HolePunchRequest(
            initiator=self.initiator,
            target=self.target,
            hops=self.hops + 1,
            max_hops=self.max_hops,
        )

    @property
    def exceeded_hop_limit(self) -> bool:
        return self.hops >= self.max_hops


@dataclass
class HolePunchPing(Message):
    """The outbound packet a private node sends to punch a hole in its own NAT."""

    origin: NodeAddress

    def payload_size(self) -> int:
        return self.origin.wire_size


@dataclass
class KeepAlive(Message):
    """Periodic refresh of a NAT mapping towards a relay or rendezvous node."""

    origin: NodeAddress

    def payload_size(self) -> int:
        return self.origin.wire_size


@dataclass
class KeepAliveAck(Message):
    """Acknowledgement of a :class:`KeepAlive` (lets the sender detect dead relays)."""

    origin: NodeAddress

    def payload_size(self) -> int:
        return self.origin.wire_size


@dataclass
class RelayRegistration(Message):
    """A private node asking a public node to act as its relay/parent (Gozar)."""

    origin: NodeAddress

    def payload_size(self) -> int:
        return self.origin.wire_size + 1


@dataclass
class RelayRegistrationAck(Message):
    """A public node accepting (or refusing) a relay registration."""

    origin: NodeAddress
    accepted: bool = True

    def payload_size(self) -> int:
        return self.origin.wire_size + 1


@dataclass
class RelayPath(Message):
    """Diagnostic record of the relay path a message traversed (testing only)."""

    waypoints: Tuple[int, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return 4 * len(self.waypoints)
