"""Per-file analysis context shared by every lint rule.

A :class:`FileContext` parses one source file once and exposes what rules need:

* the ``ast`` tree plus a line → enclosing-scope map (for allowlist scoping);
* inline suppression comments — ``# repro-lint: allow[rule-a,rule-b]`` on a code
  line suppresses that line, on a standalone line it suppresses the next line;
* an import-alias table that normalizes call targets to dotted names
  (``from time import perf_counter as pc; pc()`` → ``time.perf_counter``), so
  rules match semantics, not spellings;
* a :class:`ModuleResolver` that parses sibling ``repro.*`` modules on demand and
  answers "which capability ABCs does this class transitively inherit?" — the
  static half of what :func:`repro.membership.capabilities.capabilities_of` does
  at runtime.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError


class LintError(ReproError):
    """The linter itself was misconfigured (bad rule id, unreadable allowlist, ...)."""


#: Inline suppression syntax. The rule list is comma-separated; ids must be
#: registered (``--strict`` turns unknown ids into findings instead of silence).
SUPPRESS_RE = re.compile(r"repro-lint:\s*allow\[([^\]]*)\]")


class Suppression:
    """One parsed ``repro-lint: allow[...]`` comment."""

    __slots__ = ("line", "target_line", "rules", "used")

    def __init__(self, line: int, target_line: int, rules: Tuple[str, ...]) -> None:
        self.line = line  # where the comment sits (reported in strict findings)
        self.target_line = target_line  # the line whose findings it suppresses
        self.rules = rules
        self.used = False


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class FileContext:
    """Everything the rules need to know about one parsed source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        #: Repo-relative posix path used in findings and allowlist matching.
        self.display_path = display_path
        self.source = source
        self.tree = ast.parse(source, filename=display_path)
        self.suppressions = self._parse_suppressions(source)
        #: alias → dotted module or module.attr, from import statements.
        self.import_aliases = self._parse_imports(self.tree)
        self._scope_spans = self._scope_map(self.tree)

    # ------------------------------------------------------------------ parsing

    @staticmethod
    def _parse_suppressions(source: str) -> List[Suppression]:
        suppressions: List[Suppression] = []
        code_lines: Set[int] = set()
        comments: List[Tuple[int, str]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    comments.append((token.start[0], token.string))
                elif token.type not in (
                    tokenize.NL,
                    tokenize.NEWLINE,
                    tokenize.INDENT,
                    tokenize.DEDENT,
                    tokenize.ENCODING,
                    tokenize.ENDMARKER,
                ):
                    code_lines.add(token.start[0])
        except tokenize.TokenError:
            # ast.parse succeeded, so this is a tokenizer edge case; no comments
            # is the safe (non-suppressing) answer.
            return []
        for line, text in comments:
            match = SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            )
            target = line if line in code_lines else line + 1
            suppressions.append(Suppression(line, target, rules))
        return suppressions

    @staticmethod
    def _parse_imports(tree: ast.Module) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    aliases[item.asname or item.name.split(".")[0]] = (
                        item.name if item.asname else item.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for item in node.names:
                    if item.name == "*":
                        continue
                    aliases[item.asname or item.name] = f"{node.module}.{item.name}"
        return aliases

    @staticmethod
    def _scope_map(tree: ast.Module) -> List[Tuple[int, int, str]]:
        spans: List[Tuple[int, int, str]] = []

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    name = f"{prefix}.{child.name}" if prefix else child.name
                    end = getattr(child, "end_lineno", child.lineno) or child.lineno
                    spans.append((child.lineno, end, name))
                    visit(child, name)
                else:
                    visit(child, prefix)

        visit(tree, "")
        # Inner-most scope must win: sort by span start so later (nested, hence
        # shorter and later-starting) spans override on lookup.
        spans.sort(key=lambda span: (span[0], -span[1]))
        return spans

    # ------------------------------------------------------------------ queries

    def scope_at(self, line: int) -> str:
        """Qualified name of the innermost def/class enclosing ``line``."""
        best = "<module>"
        for start, end, name in self._scope_spans:
            if start <= line <= end:
                best = name
            elif start > line:
                break
        return best

    def resolve_call_target(self, func: ast.AST) -> Optional[str]:
        """Normalized dotted name of a call target, through import aliases.

        ``pc()`` after ``from time import perf_counter as pc`` resolves to
        ``time.perf_counter``; ``self.anything()`` resolves to ``None`` (rules
        never guess about attribute access on objects).
        """
        dotted = _dotted(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        expansion = self.import_aliases.get(head)
        if expansion is not None:
            dotted = f"{expansion}.{rest}" if rest else expansion
        return dotted

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Does an inline comment suppress ``rule`` on ``line``? Marks the
        matching suppression(s) used — only genuinely matching ones, so the
        strict unused-suppression audit stays truthful."""
        hit = False
        for suppression in self.suppressions:
            if suppression.target_line == line and rule in suppression.rules:
                suppression.used = True
                hit = True
        return hit


# ---------------------------------------------------------------- class resolver


class ModuleClasses:
    """The classes one module defines: name → base expressions (dotted strings)."""

    __slots__ = ("bases", "import_aliases")

    def __init__(self, bases: Dict[str, List[str]], import_aliases: Dict[str, str]):
        self.bases = bases
        self.import_aliases = import_aliases


class ModuleResolver:
    """Cross-module, AST-only class-hierarchy resolution for ``repro.*`` modules.

    Rules that reason about inheritance (capability conformance) need to see
    through ``class Croupier(PeerSamplingService, ...)`` into
    ``repro.membership.base`` without importing anything. The resolver maps a
    dotted module name to its source file — preferring the tree the linted file
    lives in, falling back to the installed ``repro`` package for standalone
    fixtures — parses it once, and walks base-class edges transitively.
    """

    def __init__(self, package_root: Optional[Path] = None) -> None:
        #: Directory that contains the ``repro/`` package directory.
        self.package_root = package_root
        self._cache: Dict[str, Optional[ModuleClasses]] = {}

    @staticmethod
    def for_file(path: Path) -> "ModuleResolver":
        for parent in path.resolve().parents:
            if (parent / "repro" / "__init__.py").exists():
                return ModuleResolver(parent)
        try:
            import repro

            return ModuleResolver(Path(repro.__file__).resolve().parents[1])
        except Exception:
            return ModuleResolver(None)

    def _module_classes(self, module: str) -> Optional[ModuleClasses]:
        if module in self._cache:
            return self._cache[module]
        result: Optional[ModuleClasses] = None
        if self.package_root is not None and module.split(".")[0] == "repro":
            candidate = self.package_root.joinpath(*module.split("."))
            for path in (candidate.with_suffix(".py"), candidate / "__init__.py"):
                if path.exists():
                    try:
                        tree = ast.parse(path.read_text())
                    except (OSError, SyntaxError):
                        break
                    bases = {
                        node.name: [
                            base
                            for base in map(_dotted, node.bases)
                            if base is not None
                        ]
                        for node in tree.body
                        if isinstance(node, ast.ClassDef)
                    }
                    result = ModuleClasses(bases, FileContext._parse_imports(tree))
                    break
        self._cache[module] = result
        return result

    def transitive_bases(
        self, module: str, class_name: str, _depth: int = 0, _seen: Optional[Set] = None
    ) -> Set[str]:
        """Every dotted base name reachable from ``module.class_name`` (the class
        itself included), resolving import aliases module by module. Unknown
        modules (stdlib, third-party) terminate the walk — their names still
        appear in the result, they just contribute no further edges."""
        seen: Set[str] = set() if _seen is None else _seen
        key = f"{module}.{class_name}"
        if key in seen or _depth > 20:
            return seen
        seen.add(key)
        classes = self._module_classes(module)
        if classes is None or class_name not in classes.bases:
            return seen
        for base in classes.bases[class_name]:
            head, _, rest = base.partition(".")
            expansion = classes.import_aliases.get(head)
            if expansion is None:
                if "." in base:  # e.g. ``abc.ABC`` with no matching import: opaque
                    seen.add(base)
                    continue
                base_module, base_class = module, base
            elif rest:
                base_module, base_class = expansion, rest
            else:
                base_module, _, base_class = expansion.rpartition(".")
            # The recursive call records the base's own key before expanding it —
            # adding it here first would trip the cycle guard and stop the walk
            # one level deep.
            self.transitive_bases(base_module or module, base_class, _depth + 1, seen)
        return seen

    def capability_names(self) -> Set[str]:
        """The capability ABC names, read statically from
        ``repro.membership.capabilities`` (classes transitively inheriting the
        ``Capability`` marker). Falls back to the documented trio if the module
        cannot be located."""
        module = "repro.membership.capabilities"
        classes = self._module_classes(module)
        if classes is None:
            return {"OverlaySampling", "RatioEstimating", "NatAware"}
        names = {
            name
            for name in classes.bases
            if name != "Capability"
            and any(
                base.endswith("Capability")
                for base in self.transitive_bases(module, name)
            )
        }
        return names or {"OverlaySampling", "RatioEstimating", "NatAware"}
