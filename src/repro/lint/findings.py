"""Findings: what a lint rule reports and how reports are serialized.

A :class:`Finding` is one violation at one source location. Findings are value
objects with a total order (path, line, column, rule id) so that every rendering —
text, JSON, test assertions — is deterministic regardless of rule execution order;
the linter holds itself to the same canonical-output discipline it enforces.

The JSON document schema (``repro-lint-v1``) is part of the repo's CI surface
(``repro lint --format json``) and is pinned by ``tests/test_lint.py``; extend it
only by adding keys, never by renaming or re-typing existing ones.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: Schema tag of a JSON lint report.
LINT_SCHEMA = "repro-lint-v1"

#: Finding severities, in increasing order of importance. Every built-in rule
#: reports ``error`` — a determinism violation is never advisory — but the field
#: exists so downstream tooling can triage if softer rules are ever added.
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"
SEVERITIES = (SEVERITY_WARNING, SEVERITY_ERROR)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Repo-relative posix path of the offending file (what text output prints and
        what allowlist entries match against).
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        The registered rule id (``global-rng``, ``wall-clock``, ...).
    message:
        Human-readable description: what is wrong and what the fix is.
    severity:
        ``error`` or ``warning``; only errors affect the exit code.
    scope:
        Qualified name of the innermost enclosing function or class
        (``ClassName.method``), or ``<module>`` — what scoped allowlist entries
        match against.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR
    scope: str = "<module>"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "scope": self.scope,
            "message": self.message,
        }


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: Tuple[str, ...] = ()
    suppressed: int = 0
    allowlisted: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def to_text(self) -> str:
        lines = [finding.to_text() for finding in self.sorted_findings()]
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s) "
            f"({self.suppressed} suppressed inline, {self.allowlisted} allowlisted)"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": LINT_SCHEMA,
            "rules": list(self.rules_run),
            "files_checked": self.files_checked,
            "findings": [f.to_json_dict() for f in self.sorted_findings()],
            "suppressed": self.suppressed,
            "allowlisted": self.allowlisted,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=1)


def merge_reports(reports: Sequence[LintReport]) -> LintReport:
    """Fold per-file reports into one run-level report."""
    merged = LintReport()
    rules: Tuple[str, ...] = ()
    for report in reports:
        merged.findings.extend(report.findings)
        merged.files_checked += report.files_checked
        merged.suppressed += report.suppressed
        merged.allowlisted += report.allowlisted
        rules = rules or report.rules_run
    merged.rules_run = rules
    return merged
