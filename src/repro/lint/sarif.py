"""SARIF 2.1.0 rendering of a lint report (``repro lint --format sarif``).

SARIF (Static Analysis Results Interchange Format, OASIS standard) is what
code-scanning UIs ingest; emitting it lets CI upload the strict-gate run as an
artifact that standard viewers annotate onto the diff. One run object, one
driver (``repro-lint``), every executed rule declared with its description and
rationale, every finding a ``result`` with a single physical location.

The document is deterministic for a given report: rules sort by id, results
follow :meth:`~repro.lint.findings.LintReport.sorted_findings`, and the JSON is
dumped with sorted keys — the same canonical-bytes discipline the linter
enforces on the repo (and what makes the cold/warm cache parity check in CI a
byte comparison).
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import Finding, LintReport, SEVERITY_ERROR

#: SARIF spec version and the schema URI code-scanning consumers validate against.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthesized finding ids that are not registered rules (parse failures and the
#: strict escape-hatch audit); they get stub rule metadata so every result's
#: ``ruleId`` is declared in the driver, as the spec recommends.
_SYNTHETIC_RULES: Dict[str, str] = {
    "parse-error": "the file does not parse; nothing else can be checked",
    "unknown-suppression": (
        "a suppression comment or allowlist entry names an unregistered rule"
    ),
    "unused-suppression": "an inline suppression matched no finding",
    "unused-allowlist": "an allowlist entry matched no finding",
    "allowlist-path-form": (
        "an allowlist entry uses a non-canonical path spelling"
    ),
}


def _level(finding: Finding) -> str:
    return "error" if finding.severity == SEVERITY_ERROR else "warning"


def _rule_metadata(report: LintReport) -> List[Dict[str, object]]:
    from repro.lint.registry import get_rule, load_builtin_rules, rule_ids

    load_builtin_rules()
    known = set(rule_ids())
    ids = set(report.rules_run) | {finding.rule for finding in report.findings}
    rules: List[Dict[str, object]] = []
    for rule_id in sorted(ids):
        entry: Dict[str, object] = {"id": rule_id}
        if rule_id in known:
            rule = get_rule(rule_id)
            entry["shortDescription"] = {"text": rule.description}
            if rule.rationale:
                entry["fullDescription"] = {"text": rule.rationale}
        else:
            entry["shortDescription"] = {
                "text": _SYNTHETIC_RULES.get(rule_id, "synthesized lint finding")
            }
        entry["defaultConfiguration"] = {"level": "error"}
        rules.append(entry)
    return rules


def _result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _level(finding),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        # SARIF columns are 1-based; findings carry ast's 0-based.
                        "startColumn": finding.col + 1,
                    },
                },
                "logicalLocations": [
                    {"fullyQualifiedName": finding.scope, "kind": "function"}
                ],
            }
        ],
    }


def report_to_sarif(report: LintReport) -> Dict[str, object]:
    """The report as a SARIF 2.1.0 document (a plain dict, ready to dump)."""
    rules = _rule_metadata(report)
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/determinism_lint"
                        ),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///repo/"}},
                "results": [
                    _result(finding, rule_index)
                    for finding in report.sorted_findings()
                ],
                "columnKind": "utf16CodeUnits",
                "properties": {
                    "filesChecked": report.files_checked,
                    "suppressed": report.suppressed,
                    "allowlisted": report.allowlisted,
                },
            }
        ],
    }


def to_sarif_json(report: LintReport) -> str:
    """Canonical SARIF bytes: sorted keys, one-space indent, trailing-newline-free."""
    return json.dumps(report_to_sarif(report), sort_keys=True, indent=1)
