"""Incremental lint cache: skip re-analysis of files that cannot have changed.

The full strict run re-parses and re-analyzes every file on every invocation,
which is wasteful in the common case — a local edit touches one or two files.
The cache (``.repro-lint-cache.json``, git-ignored) stores, per file, the
**raw** rule output: the findings every selected rule produced *before* inline
suppressions and the allowlist were applied, plus the file's parsed suppression
table. On a later run with an unchanged file, the engine replays suppression
and allowlist filtering over the cached raw findings instead of re-running the
rules — so editing ``.repro-lint-allow`` or adding a suppression elsewhere
never serves a stale verdict, and the strict escape-hatch audit (which needs
per-suppression usage and scopes) still sees every file.

Keying is deliberately conservative:

* per entry — the SHA-256 of the file's bytes (content, not mtime: a ``touch``
  is a hit, a one-byte edit is a miss);
* per cache — a *ruleset fingerprint* over the sorted selected rule ids **and**
  the bytes of every source file in ``repro/lint`` itself. Any change to a
  rule, the dataflow layer, the policy tiers or this module invalidates the
  whole cache, so a heuristic fix can never be masked by yesterday's verdicts.

One staleness channel is out of key-range by design: the dataflow rules consult
*other* modules (cross-module return summaries), so editing module B can in
principle change module A's findings while A's digest is unchanged. The lint
package fingerprint does not see that. CI therefore keeps one cold-cache job as
a backstop (`.github/workflows/ci.yml`), and the cache is an opt-in flag
(``repro lint --cache``), never default-on for correctness gates without it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterable, List, Optional

#: Schema tag of the on-disk cache document; bump on layout changes.
CACHE_SCHEMA = "repro-lint-cache-v1"

#: Default cache filename, resolved against the invocation cwd by the CLI.
CACHE_FILENAME = ".repro-lint-cache.json"


def file_digest(data: bytes) -> str:
    """Content key of one linted file (SHA-256 hex of its bytes)."""
    return hashlib.sha256(data).hexdigest()


def ruleset_fingerprint(rule_ids: Iterable[str]) -> str:
    """Cache-wide validity key: the selected rules plus the linter's own code.

    Hashes the sorted rule ids and every ``.py`` file under ``repro/lint``
    (paths and bytes), so editing a rule, a policy tier or the dataflow layer
    discards every cached verdict at once.
    """
    digest = hashlib.sha256()
    for rule_id in sorted(rule_ids):
        digest.update(rule_id.encode())
        digest.update(b"\x00")
    package = Path(__file__).resolve().parent
    for source in sorted(package.rglob("*.py")):
        if "__pycache__" in source.parts:
            continue
        digest.update(source.relative_to(package).as_posix().encode())
        digest.update(b"\x00")
        try:
            digest.update(source.read_bytes())
        except OSError:
            digest.update(b"<unreadable>")
        digest.update(b"\x00")
    return digest.hexdigest()


class CachedSuppression:
    """A replayed ``repro-lint: allow[...]`` comment from a cache hit.

    Duck-types :class:`repro.lint.context.Suppression` (plus the scope the
    strict audit would otherwise recompute from the AST).
    """

    __slots__ = ("line", "target_line", "rules", "scope", "used")

    def __init__(self, line: int, target_line: int, rules, scope: str) -> None:
        self.line = line
        self.target_line = target_line
        self.rules = tuple(rules)
        self.scope = scope
        self.used = False


class CachedContext:
    """Stand-in for :class:`~repro.lint.context.FileContext` on a cache hit.

    Provides exactly the surface the post-rule pipeline touches: the display
    path, the suppression table (for filtering and the strict audit) and
    ``scope_at``/``is_suppressed`` with the same semantics.
    """

    __slots__ = ("display_path", "suppressions")

    def __init__(self, display_path: str, suppressions: List[CachedSuppression]):
        self.display_path = display_path
        self.suppressions = suppressions

    def scope_at(self, line: int) -> str:
        for suppression in self.suppressions:
            if suppression.line == line:
                return suppression.scope
        return "<module>"

    def is_suppressed(self, line: int, rule: str) -> bool:
        hit = False
        for suppression in self.suppressions:
            if suppression.target_line == line and rule in suppression.rules:
                suppression.used = True
                hit = True
        return hit


class LintCache:
    """The per-run cache handle: load, look up, record, save atomically."""

    __slots__ = ("path", "fingerprint", "entries", "hits", "misses", "_dirty")

    def __init__(self, path: Path, fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        #: display_path -> {"digest", "parse_error", "findings", "suppressions"}
        self.entries: Dict[str, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False

    @classmethod
    def load(cls, path: Path, fingerprint: str) -> "LintCache":
        """Read the cache at ``path``; any mismatch or damage yields an empty
        cache (a cache failure must only ever cost time, never correctness)."""
        cache = cls(path, fingerprint)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if (
            not isinstance(document, dict)
            or document.get("schema") != CACHE_SCHEMA
            or document.get("fingerprint") != fingerprint
        ):
            return cache
        entries = document.get("entries")
        if isinstance(entries, dict):
            cache.entries = {
                str(key): value
                for key, value in entries.items()
                if isinstance(value, dict) and "digest" in value
            }
        return cache

    def lookup(self, display_path: str, digest: str) -> Optional[Dict[str, object]]:
        """The cached entry for ``display_path`` iff its content key matches."""
        entry = self.entries.get(display_path)
        if entry is not None and entry.get("digest") == digest:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def store(
        self,
        display_path: str,
        digest: str,
        raw_findings: List[Dict[str, object]],
        suppressions: List[Dict[str, object]],
        parse_error: bool = False,
    ) -> None:
        self.entries[display_path] = {
            "digest": digest,
            "parse_error": parse_error,
            "findings": raw_findings,
            "suppressions": suppressions,
        }
        self._dirty = True

    def save(self) -> None:
        """Write the cache atomically (tmp file + rename) if anything changed."""
        if not self._dirty:
            return
        document = {
            "schema": CACHE_SCHEMA,
            "fingerprint": self.fingerprint,
            "entries": self.entries,
        }
        payload = json.dumps(document, sort_keys=True, indent=1)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(payload)
            os.replace(tmp_name, self.path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self._dirty = False
