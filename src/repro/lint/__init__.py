"""``repro.lint`` — AST-based determinism & invariant linter for this repo.

Every guarantee the reproduction makes — byte-identical aggregates across worker
counts (PR 2), chaos/resume recovery to identical bytes (PR 6), object-vs-columnar
parity (PR 7) — rests on source-level discipline: randomness flows through
``derive_seed``-derived streams, canonical JSON is sorted, wall-clock never leaks
into digested payloads, plugin declarations match their classes, hot-path tiers
stay ``__slots__``-lean. The runtime ``cmp`` gates catch violations *after* an
expensive run; this package catches them at the cheapest point — the source —
as ``repro lint`` (wired into CI ahead of tier-1).

Layout mirrors the protocol plugin stack: a rule registry
(:mod:`repro.lint.registry`, the :mod:`repro.membership.plugin` idiom), per-file
AST contexts (:mod:`repro.lint.context`), rule modules under
:mod:`repro.lint.rules`, the committed-allowlist escape hatch
(:mod:`repro.lint.allowlist`) and the engine (:mod:`repro.lint.engine`). The
interprocedural RNG-custody taint pass lives in :mod:`repro.lint.dataflow`, the
incremental cache in :mod:`repro.lint.cache` and the SARIF renderer in
:mod:`repro.lint.sarif`. Rules and policy tiers are documented in
``docs/determinism_lint.md``.
"""

from repro.lint.allowlist import ALLOWLIST_FILENAME, Allowlist
from repro.lint.cache import CACHE_FILENAME, LintCache, ruleset_fingerprint
from repro.lint.context import FileContext, LintError, ModuleResolver
from repro.lint.engine import changed_files, collect_files, run_lint
from repro.lint.findings import LINT_SCHEMA, Finding, LintReport
from repro.lint.sarif import report_to_sarif, to_sarif_json
from repro.lint.registry import (
    LintRule,
    all_rules,
    get_rule,
    load_builtin_rules,
    register_rule,
    rule_ids,
    unregister_rule,
)

__all__ = [
    "ALLOWLIST_FILENAME",
    "Allowlist",
    "CACHE_FILENAME",
    "FileContext",
    "Finding",
    "LINT_SCHEMA",
    "LintCache",
    "LintError",
    "LintReport",
    "LintRule",
    "ModuleResolver",
    "all_rules",
    "changed_files",
    "collect_files",
    "get_rule",
    "load_builtin_rules",
    "register_rule",
    "report_to_sarif",
    "rule_ids",
    "ruleset_fingerprint",
    "run_lint",
    "to_sarif_json",
    "unregister_rule",
]
