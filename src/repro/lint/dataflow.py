"""Interprocedural RNG-custody dataflow: who holds a stream, and where it flows.

PR 8's rules are *syntactic* — they match call names. The two failure modes that
actually bit PR 9 are *dataflow* properties: a seeded stream drawn inside
hash-ordered iteration (order-dependent consumption), and an RNG leaking across
a process boundary. This module is the shared analysis those rules run on: a
per-module def-use/taint pass over the :class:`~repro.lint.context.FileContext`
AST, with cross-module propagation through the import-alias table.

Taint kinds
-----------

``RNG``
    A stateful stream — ``random.Random(seed)``, anything returned by a
    ``derive_rng`` method, a parameter or attribute named ``rng``, or a call to
    a function another ``repro.*`` module defines that returns one (resolved by
    :class:`DataflowResolver`). Draw order matters for these, so they are what
    the custody rules track.
``STREAM``
    A positional counter-stream key from :func:`repro.columnar.rng.stream` —
    order-*independent* by construction (PR 9), tracked so rules can tell the
    two apart instead of flagging the safe kind.
``SEED``
    A ``derive_seed(...)`` value: an integer, safe to ship anywhere; tracked so
    custody rules can suggest "send the seed, re-derive on the far side".
``SET``
    A hash-ordered container (set/frozenset literal, constructor or set
    algebra). Iterating one while drawing from an ``RNG`` stream is the
    evaluation-order hazard ``draw-in-unordered-loop`` exists for.

The pass is a *may*-analysis: per function it unions every binding to a fixpoint
(``a = rng; b = a`` taints both), which over-approximates — the right polarity
for a linter that asks "could this value be a live stream?". Module-level
bindings form an outer environment that function bodies fall back to.

Cross-module resolution is summary-based and deliberately one level deep: a
:class:`DataflowResolver` parses the target module, computes which of its
functions return ``RNG``, and caches the summary. Summaries are computed without
further cross-module recursion, so import cycles terminate by construction.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.context import FileContext

#: Methods of ``random.Random`` that consume stream state. Drawing any of these
#: inside hash-ordered iteration couples results to iteration order.
DRAW_METHODS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

#: Taint kinds (see module docstring).
KIND_RNG = "RNG"
KIND_STREAM = "STREAM"
KIND_SEED = "SEED"
KIND_SET = "SET"

#: Set-algebra methods whose result is again hash-ordered.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Parameter/attribute names conventionally holding an injected stream. The
#: repo's injection idiom (``def __init__(self, rng): self.rng = rng``) has no
#: constructor call to trace, so the name is the contract.
_RNG_NAMES = frozenset({"rng"})

_MAX_PASSES = 10  # fixpoint bound; taint chains in practice are 2-3 hops


def _last_attr(node: ast.AST) -> Optional[str]:
    """Final attribute/name component of an expression, if it has one."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ModuleSummary:
    """What one module exports, dataflow-wise: functions that return ``RNG``."""

    __slots__ = ("returns_rng",)

    def __init__(self, returns_rng: Set[str]) -> None:
        #: Bare names of module-level functions whose return value is RNG-tainted.
        self.returns_rng = returns_rng


class DataflowResolver:
    """Cross-module RNG-return summaries for ``repro.*`` modules.

    Shares :class:`~repro.lint.context.ModuleResolver`'s location strategy
    (``package_root`` is the directory containing ``repro/__init__.py``) but
    answers a different question: *does function F of module M return a stream?*
    Summaries are cached per module and computed summary-free (no recursive
    cross-module lookups), so cycles cannot recurse.
    """

    def __init__(self, package_root: Optional[Path] = None) -> None:
        self.package_root = package_root
        self._cache: Dict[str, Optional[ModuleSummary]] = {}

    @staticmethod
    def for_file(path: Path) -> "DataflowResolver":
        for parent in path.resolve().parents:
            if (parent / "repro" / "__init__.py").exists():
                return DataflowResolver(parent)
        try:
            import repro

            return DataflowResolver(Path(repro.__file__).resolve().parents[1])
        except Exception:
            return DataflowResolver(None)

    def summary(self, module: str) -> Optional[ModuleSummary]:
        """Summary for dotted ``module``, or None if it cannot be located."""
        if module in self._cache:
            return self._cache[module]
        result: Optional[ModuleSummary] = None
        if self.package_root is not None and module.split(".")[0] == "repro":
            candidate = self.package_root.joinpath(*module.split("."))
            for path in (candidate.with_suffix(".py"), candidate / "__init__.py"):
                if path.exists():
                    try:
                        source = path.read_text()
                        context = FileContext(path, path.as_posix(), source)
                    except (OSError, SyntaxError):
                        break
                    analysis = TaintAnalysis(context, resolver=None)
                    result = ModuleSummary(analysis.returns_rng)
                    break
        self._cache[module] = result
        return result

    def call_returns_rng(self, dotted: str) -> bool:
        """Does a call resolved to ``dotted`` (module path + function) return RNG?"""
        module, _, func = dotted.rpartition(".")
        if not module or not func:
            return False
        summary = self.summary(module)
        return summary is not None and func in summary.returns_rng


class TaintAnalysis:
    """The per-module def-use/taint pass (see module docstring).

    Construction runs the whole analysis; rules then query:

    * :attr:`module_env` / :meth:`scope_env` — name → kind environments;
    * :attr:`returns_rng` — this module's own RNG-returning functions
      (also what :class:`DataflowResolver` exports to other modules);
    * :meth:`expr_kind` — the taint kind of an arbitrary expression;
    * :meth:`iter_scopes` — (function node, chained environment) pairs.
    """

    def __init__(
        self, context: FileContext, resolver: Optional[DataflowResolver] = None
    ) -> None:
        self.context = context
        self.resolver = resolver
        #: ``self.<attr>`` names that hold a stream anywhere in this module.
        self.rng_attrs: Set[str] = set(_RNG_NAMES)
        #: Module-scope bindings (the outer environment for every function).
        self.module_env: Dict[str, str] = {}
        #: Bare names of functions/methods in this module returning RNG.
        self.returns_rng: Set[str] = set()
        self._scope_envs: Dict[int, Dict[str, str]] = {}
        self._functions: List[ast.AST] = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        self._analyze()

    # ------------------------------------------------------------------ queries

    def scope_env(self, func: ast.AST) -> Dict[str, str]:
        """name → kind for one function body (falls back to :attr:`module_env`)."""
        env = dict(self.module_env)
        env.update(self._scope_envs.get(id(func), {}))
        return env

    def iter_scopes(self) -> Iterator[Tuple[Optional[ast.AST], Dict[str, str]]]:
        """Every analysis scope: ``(None, module_env)`` then each function."""
        yield None, dict(self.module_env)
        for func in self._functions:
            yield func, self.scope_env(func)

    def expr_kind(self, node: ast.AST, env: Dict[str, str]) -> Optional[str]:
        """Taint kind of an expression under ``env``, or None."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            if node.id in _RNG_NAMES:
                return KIND_RNG
            return None
        if isinstance(node, ast.Attribute):
            if node.attr in self.rng_attrs:
                return KIND_RNG
            return None
        if isinstance(node, (ast.Set, ast.SetComp)):
            return KIND_SET
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            left = self.expr_kind(node.left, env)
            right = self.expr_kind(node.right, env)
            if KIND_SET in (left, right):
                return KIND_SET
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:  # ``rng or random.Random(0)``
                kind = self.expr_kind(value, env)
                if kind is not None:
                    return kind
            return None
        if isinstance(node, ast.IfExp):
            return self.expr_kind(node.body, env) or self.expr_kind(
                node.orelse, env
            )
        if isinstance(node, ast.NamedExpr):
            return self.expr_kind(node.value, env)
        if isinstance(node, ast.Await):
            return self.expr_kind(node.value, env)
        if isinstance(node, ast.Call):
            return self._call_kind(node, env)
        return None

    def draw_receiver(self, node: ast.AST, env: Dict[str, str]) -> Optional[ast.AST]:
        """If ``node`` is a draw (``<stream>.random()`` etc.), the receiver."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DRAW_METHODS
            and self.expr_kind(node.func.value, env) == KIND_RNG
        ):
            return node.func.value
        return None

    # ----------------------------------------------------------------- analysis

    def _call_kind(self, node: ast.Call, env: Dict[str, str]) -> Optional[str]:
        target = self.context.resolve_call_target(node.func)
        last = _last_attr(node.func)
        if target == "random.Random":
            return KIND_RNG
        if last == "derive_rng":  # the Simulator seed-derivation rule
            return KIND_RNG
        if last == "derive_seed" or (target or "").endswith(".derive_seed"):
            return KIND_SEED
        if target is not None and target.endswith("columnar.rng.stream"):
            return KIND_STREAM
        if target in ("set", "frozenset"):
            return KIND_SET
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and self.expr_kind(node.func.value, env) == KIND_SET
        ):
            return KIND_SET
        # A function of this module known to return a stream (``make_rng()``,
        # ``self._make_rng()``) — matched on the bare name.
        if last in self.returns_rng:
            return KIND_RNG
        # A function of another repro module, through the import-alias table.
        if (
            target is not None
            and self.resolver is not None
            and target.split(".")[0] == "repro"
            and self.resolver.call_returns_rng(target)
        ):
            return KIND_RNG
        return None

    def _bind_target(self, target: ast.AST, kind: str, env: Dict[str, str]) -> bool:
        """Record ``target = <kind>``; returns True if the env changed."""
        changed = False
        if isinstance(target, ast.Name):
            if env.get(target.id) != kind:
                env[target.id] = kind
                changed = True
        elif isinstance(target, ast.Attribute) and kind == KIND_RNG:
            if target.attr not in self.rng_attrs:
                self.rng_attrs.add(target.attr)
                changed = True
        elif isinstance(target, (ast.Tuple, ast.List)):
            # ``a, b = make_rng(), x`` is rare; taint every element (may-analysis).
            for element in target.elts:
                changed |= self._bind_target(element, kind, env)
        return changed

    def _scan_bindings(self, body: List[ast.stmt], env: Dict[str, str]) -> bool:
        """One pass over every binding in ``body`` (nested blocks included,
        nested function bodies excluded — they get their own env)."""
        changed = False
        for stmt in body:
            for node in self._walk_same_scope(stmt):
                value: Optional[ast.AST] = None
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    value, targets = node.value, list(node.targets)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    value, targets = node.value, [node.target]
                elif isinstance(node, ast.NamedExpr):
                    value, targets = node.value, [node.target]
                elif isinstance(node, ast.withitem) and node.optional_vars:
                    value, targets = node.context_expr, [node.optional_vars]
                if value is None:
                    continue
                kind = self.expr_kind(value, env)
                if kind is None:
                    continue
                for target in targets:
                    changed |= self._bind_target(target, kind, env)
        return changed

    @staticmethod
    def _walk_same_scope(stmt: ast.stmt) -> Iterator[ast.AST]:
        """``ast.walk`` that does not descend into nested function/class bodies.

        The pop-time check also covers a function/class def handed in *as* the
        seed (a module-body statement): its body belongs to the inner scope.
        """
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _analyze(self) -> None:
        # Module scope first: module-level streams are the shared-stream hazard.
        for _ in range(_MAX_PASSES):
            if not self._scan_bindings(self.context.tree.body, self.module_env):
                break
        # Function scopes + return summaries, to a cross-function fixpoint:
        # ``def a(): return make_rng()`` must taint callers of ``a`` found in an
        # earlier pass, and ``self.rng_attrs`` grows as constructors are scanned.
        for _ in range(_MAX_PASSES):
            changed = False
            for func in self._functions:
                env = self._scope_envs.setdefault(id(func), {})
                for arg in self._all_args(func):
                    if arg.arg in _RNG_NAMES and env.get(arg.arg) != KIND_RNG:
                        env[arg.arg] = KIND_RNG
                        changed = True
                merged = dict(self.module_env)
                merged.update(env)
                if self._scan_bindings(func.body, merged):
                    changed = True
                for name, kind in merged.items():
                    if name not in self.module_env and env.get(name) != kind:
                        env[name] = kind
                        changed = True
                if self._returns_kind(func, merged) == KIND_RNG:
                    if func.name not in self.returns_rng:
                        self.returns_rng.add(func.name)
                        changed = True
            if not changed:
                break

    @staticmethod
    def _all_args(func: ast.AST) -> List[ast.arg]:
        args = func.args
        return [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]

    def _returns_kind(self, func: ast.AST, env: Dict[str, str]) -> Optional[str]:
        for node in self._walk_same_scope_body(func):
            if isinstance(node, ast.Return) and node.value is not None:
                kind = self.expr_kind(node.value, env)
                if kind == KIND_RNG:
                    return KIND_RNG
        return None

    def _walk_same_scope_body(self, func: ast.AST) -> Iterator[ast.AST]:
        for stmt in func.body:
            yield from self._walk_same_scope(stmt)


def unordered_iterable(
    analysis: TaintAnalysis, node: ast.AST, env: Dict[str, str]
) -> Optional[str]:
    """Why ``node`` (a loop's iterable) is hash-ordered, or None if it is safe.

    ``sorted(...)`` / ``list(...)`` wrappers come out as plain calls with no SET
    kind, so they pass without special-casing.
    """
    kind = analysis.expr_kind(node, env)
    if kind == KIND_SET:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal iterates in hash order"
        if isinstance(node, ast.Name):
            return f"{node.id!r} holds a set, which iterates in hash order"
        return "this expression yields a set, which iterates in hash order"
    return None
