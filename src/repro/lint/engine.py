"""The lint engine: file collection, rule execution, suppression and strictness.

:func:`run_lint` is the one entry point (the CLI and the tests both call it). Per
file it parses once into a :class:`~repro.lint.context.FileContext`, runs the
selected rules, then applies the two sanctioned escape hatches in order — inline
``# repro-lint: allow[rule]`` comments, then the committed allowlist — counting
what each absorbed so the report stays honest about how clean the tree really is.

Strict mode (the CI gate) additionally audits the escape hatches themselves:

``unknown-suppression``
    A suppression comment or allowlist entry names a rule id that is not
    registered — a typo that would otherwise silently suppress nothing (or, after
    a rule rename, everything it used to).
``unused-suppression`` / ``unused-allowlist``
    The comment/entry matched no finding in this run. Dead escape hatches are how
    allowlists rot into blanket immunity; they are removed, not kept "just in
    case". (Only audited when the full rule set runs — a ``--rules`` subset
    legitimately leaves other rules' suppressions idle.)
``allowlist-path-form``
    An allowlist entry spells its path suffix non-canonically (``src/repro/...``
    instead of ``repro/...``). Both spellings *match* (the one shared matcher
    normalizes), but strict mode pins the convention so the allowlist and the
    policy tiers cannot drift into mixed forms.

``--changed`` support lives here too: :func:`changed_files` asks git for the
files differing from the committed state (``HEAD``), the fast local iteration
mode — CI always lints everything.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.allowlist import Allowlist
from repro.lint.cache import (
    CachedContext,
    CachedSuppression,
    LintCache,
    file_digest,
)
from repro.lint.context import FileContext, LintError
from repro.lint.findings import Finding, LintReport, SEVERITY_ERROR
from repro.lint.policy import normalize_path_suffix
from repro.lint.registry import all_rules, get_rule, load_builtin_rules, rule_ids


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files to lint."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py" and path.exists():
            files.append(path)
        elif not path.exists():
            raise LintError(f"lint target does not exist: {path}")
    # De-duplicate while preserving the sorted-per-argument order.
    seen = set()
    unique: List[Path] = []
    for file in files:
        resolved = file.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(file)
    return unique


def display_path(path: Path, base_dir: Optional[Path] = None) -> str:
    """Repo-relative posix path for findings (falls back to the path as given)."""
    base = base_dir if base_dir is not None else Path.cwd()
    try:
        return path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def changed_files(root: Path) -> List[Path]:
    """Python files differing from the committed state (``git diff HEAD`` plus
    untracked), for ``repro lint --changed``. Raises :class:`LintError` when
    ``root`` is not inside a git work tree.

    Both listings are anchored on the work-tree top level: ``git diff`` always
    prints toplevel-relative names (even when invoked from a subdirectory, where
    joining them onto ``root`` used to silently drop every changed file), and
    running ``ls-files --others`` *from* the top level makes untracked names
    toplevel-relative too — so new, not-yet-``git add``-ed ``.py`` files are
    included, which is exactly when lint feedback matters most.
    """
    try:
        toplevel_result = subprocess.run(
            ["git", "-C", str(root), "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as error:
        raise LintError(
            f"--changed needs a git work tree at {root} "
            f"(rev-parse --show-toplevel failed: {error})"
        ) from None
    toplevel = Path(toplevel_result.stdout.strip())
    commands = (
        ["git", "-C", str(toplevel), "diff", "--name-only", "HEAD", "--"],
        ["git", "-C", str(toplevel), "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as error:
            raise LintError(
                f"--changed needs a git work tree at {root} "
                f"({' '.join(command[3:])} failed: {error})"
            ) from None
        names.extend(result.stdout.splitlines())
    files = []
    for name in dict.fromkeys(names):  # de-duplicate, keep order
        path = toplevel / name
        if path.suffix == ".py" and path.exists():
            files.append(path)
    return files


def _lint_one(
    path: Path,
    rules,
    allowlist: Allowlist,
    base_dir: Optional[Path],
    cache: Optional[LintCache] = None,
) -> LintReport:
    report = LintReport(files_checked=1, rules_run=tuple(rule.id for rule in rules))
    shown = display_path(path, base_dir)
    try:
        source = path.read_text()
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}") from None

    digest = file_digest(source.encode("utf-8")) if cache is not None else ""
    entry = cache.lookup(shown, digest) if cache is not None else None
    if entry is not None:
        # Replay the cached *raw* rule output through the live suppression table
        # and allowlist — an escape-hatch edit elsewhere must never be masked by
        # a stale verdict, and the strict audit still sees this file.
        raw = [Finding(**fields) for fields in entry.get("findings", ())]
        if entry.get("parse_error"):
            report.findings.extend(raw)
            return report
        replay = CachedContext(
            shown,
            [
                CachedSuppression(
                    int(record["line"]),
                    int(record["target_line"]),
                    record["rules"],
                    str(record.get("scope", "<module>")),
                )
                for record in entry.get("suppressions", ())
            ],
        )
        for finding in raw:
            if replay.is_suppressed(finding.line, finding.rule):
                report.suppressed += 1
            elif allowlist.allows(finding):
                report.allowlisted += 1
            else:
                report.findings.append(finding)
        report._context = replay  # type: ignore[attr-defined]  # strict-audit hook
        return report

    try:
        context = FileContext(path, shown, source)
    except SyntaxError as error:
        finding = Finding(
            path=shown,
            line=error.lineno or 1,
            col=(error.offset or 1) - 1,
            rule="parse-error",
            message=f"file does not parse: {error.msg}",
            severity=SEVERITY_ERROR,
        )
        report.findings.append(finding)
        if cache is not None:
            cache.store(
                shown, digest, [finding.to_json_dict()], [], parse_error=True
            )
        return report

    raw = []
    for rule in rules:
        raw.extend(rule.check(context))

    if cache is not None:
        cache.store(
            shown,
            digest,
            [finding.to_json_dict() for finding in raw],
            [
                {
                    "line": suppression.line,
                    "target_line": suppression.target_line,
                    "rules": list(suppression.rules),
                    "scope": context.scope_at(suppression.line),
                }
                for suppression in context.suppressions
            ],
        )

    for finding in raw:
        if context.is_suppressed(finding.line, finding.rule):
            report.suppressed += 1
        elif allowlist.allows(finding):
            report.allowlisted += 1
        else:
            report.findings.append(finding)

    report._context = context  # type: ignore[attr-defined]  # strict-audit hook
    return report


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Iterable[str]] = None,
    strict: bool = False,
    allowlist: Optional[Allowlist] = None,
    base_dir: Optional[Path] = None,
    cache: Optional[LintCache] = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and return the merged report.

    ``rules`` selects a subset by id (default: every registered rule); unknown
    ids raise :class:`LintError`. ``strict`` adds the escape-hatch audit
    findings described in the module docstring. ``allowlist`` defaults to
    discovery (walking up from the first path for ``.repro-lint-allow``).
    ``cache`` (a pre-loaded :class:`~repro.lint.cache.LintCache`) replays rule
    output for content-unchanged files and is saved back when the run ends.
    """
    load_builtin_rules()
    if rules is None:
        selected = all_rules()
        full_run = True
    else:
        selected = [get_rule(rule_id) for rule_id in rules]
        full_run = False
    if allowlist is None:
        allowlist = (
            Allowlist.discover(Path(paths[0])) if paths else Allowlist.empty()
        )

    files = collect_files([Path(path) for path in paths])
    merged = LintReport(rules_run=tuple(rule.id for rule in selected))
    contexts: List[FileContext] = []
    for file in files:
        report = _lint_one(file, selected, allowlist, base_dir, cache)
        context = getattr(report, "_context", None)
        if context is not None:
            contexts.append(context)
        merged.findings.extend(report.findings)
        merged.files_checked += report.files_checked
        merged.suppressed += report.suppressed
        merged.allowlisted += report.allowlisted

    if strict:
        merged.findings.extend(
            _strict_audit(contexts, allowlist, full_run=full_run)
        )
    if cache is not None:
        cache.save()
        merged._cache = cache  # type: ignore[attr-defined]  # hit/miss telemetry
    return merged


def _strict_audit(
    contexts: List[FileContext], allowlist: Allowlist, full_run: bool
) -> List[Finding]:
    known = set(rule_ids())
    findings: List[Finding] = []
    for context in contexts:
        for suppression in context.suppressions:
            unknown = [rule for rule in suppression.rules if rule not in known]
            for rule in unknown:
                findings.append(
                    Finding(
                        path=context.display_path,
                        line=suppression.line,
                        col=0,
                        rule="unknown-suppression",
                        message=(
                            f"suppression names unregistered rule {rule!r} "
                            f"(registered: {sorted(known)})"
                        ),
                        scope=context.scope_at(suppression.line),
                    )
                )
            if full_run and not suppression.used and not unknown:
                findings.append(
                    Finding(
                        path=context.display_path,
                        line=suppression.line,
                        col=0,
                        rule="unused-suppression",
                        message=(
                            f"suppression allow[{','.join(suppression.rules)}] "
                            f"matched no finding; remove it"
                        ),
                        scope=context.scope_at(suppression.line),
                    )
                )
    allowlist_path = (
        allowlist.source_path.as_posix() if allowlist.source_path else "<allowlist>"
    )
    for entry in allowlist.unknown_rules(known):
        findings.append(
            Finding(
                path=allowlist_path,
                line=entry.line,
                col=0,
                rule="unknown-suppression",
                message=(
                    f"allowlist entry '{entry.describe()}' names unregistered "
                    f"rule {entry.rule!r}"
                ),
            )
        )
    for entry in allowlist.entries:
        if entry.is_canonical_form():
            continue
        findings.append(
            Finding(
                path=allowlist_path,
                line=entry.line,
                col=0,
                rule="allowlist-path-form",
                message=(
                    f"allowlist entry '{entry.describe()}' spells its path "
                    f"non-canonically; write it package-relative as "
                    f"{normalize_path_suffix(entry.path_suffix)!r} so the "
                    f"allowlist and the policy tiers share one convention"
                ),
            )
        )
    if full_run:
        for entry in allowlist.unused_entries():
            if entry.rule not in known:
                continue  # already reported as unknown-suppression
            findings.append(
                Finding(
                    path=allowlist_path,
                    line=entry.line,
                    col=0,
                    rule="unused-allowlist",
                    message=(
                        f"allowlist entry '{entry.describe()}' matched no "
                        f"finding; remove it so the allowlist cannot rot"
                    ),
                )
            )
    return findings
