"""The committed allowlist: legitimate violations, recorded and reviewable.

Some wall-clock sites are *supposed* to exist — the matrix runner times cell
execution for journal diagnostics, the scale harness reports node·rounds/s — and
an inline suppression per call would drown those files in comments. The allowlist
(``.repro-lint-allow`` at the repo root) records them centrally, one entry per
line::

    # rule          path-suffix                      scope
    wall-clock      repro/experiments/runner.py      *

* ``rule`` is a registered rule id.
* ``path-suffix`` matches the end of a finding's posix path (through
  :func:`repro.lint.policy.path_matches_suffix`, the same matcher the policy
  tiers use), so entries survive checkout relocation. The canonical spelling is
  package-relative (``repro/...``); a ``src/``-prefixed form still matches but
  ``--strict`` rejects it, so the allowlist and the policy tiers cannot drift
  into mixed conventions.
* ``scope`` (optional, default ``*``) is the qualified name of the enclosing
  function/class (as printed by ``--format json``) or ``*`` for the whole file.

Every entry must be justified in ``docs/determinism_lint.md``; ``--strict`` (the
CI mode) errors on entries that no longer match anything, so the list cannot rot.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.lint.context import LintError
from repro.lint.findings import Finding
from repro.lint.policy import normalize_path_suffix, path_matches_suffix

#: Default allowlist filename, looked up at the repo root.
ALLOWLIST_FILENAME = ".repro-lint-allow"


class AllowlistEntry:
    """One parsed allowlist line."""

    __slots__ = ("rule", "path_suffix", "scope", "line", "hits")

    def __init__(self, rule: str, path_suffix: str, scope: str, line: int) -> None:
        self.rule = rule
        self.path_suffix = path_suffix
        self.scope = scope
        self.line = line
        self.hits = 0

    def matches(self, finding: Finding) -> bool:
        if finding.rule != self.rule:
            return False
        if not path_matches_suffix(finding.path, self.path_suffix):
            return False
        return self.scope == "*" or finding.scope == self.scope

    def is_canonical_form(self) -> bool:
        """Is the entry's path suffix in the canonical ``repro/...`` spelling?"""
        return self.path_suffix == normalize_path_suffix(self.path_suffix)

    def describe(self) -> str:
        return f"{self.rule} {self.path_suffix} {self.scope}"


class Allowlist:
    """The parsed allowlist plus usage tracking for the strict gate."""

    __slots__ = ("entries", "source_path")

    def __init__(self, entries: List[AllowlistEntry], source_path: Optional[Path]):
        self.entries = entries
        self.source_path = source_path

    @classmethod
    def empty(cls) -> "Allowlist":
        return cls([], None)

    @classmethod
    def load(cls, path: Path) -> "Allowlist":
        entries: List[AllowlistEntry] = []
        try:
            text = path.read_text()
        except OSError as error:
            raise LintError(f"cannot read allowlist {path}: {error}") from None
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise LintError(
                    f"{path}:{lineno}: allowlist entries are "
                    f"'<rule> <path-suffix> [scope]', got {raw.strip()!r}"
                )
            rule, path_suffix = fields[0], fields[1]
            scope = fields[2] if len(fields) == 3 else "*"
            entries.append(AllowlistEntry(rule, path_suffix, scope, lineno))
        return cls(entries, path)

    @classmethod
    def discover(cls, start: Path) -> "Allowlist":
        """Find ``.repro-lint-allow`` by walking up from ``start`` (a lint target)."""
        candidate = start if start.is_dir() else start.parent
        for directory in [candidate, *candidate.resolve().parents]:
            path = directory / ALLOWLIST_FILENAME
            if path.exists():
                return cls.load(path)
        return cls.empty()

    def allows(self, finding: Finding) -> bool:
        allowed = False
        for entry in self.entries:
            if entry.matches(finding):
                entry.hits += 1
                allowed = True
        return allowed

    def unused_entries(self) -> List[AllowlistEntry]:
        return [entry for entry in self.entries if entry.hits == 0]

    def unknown_rules(self, known_ids) -> List[AllowlistEntry]:
        return [entry for entry in self.entries if entry.rule not in known_ids]
