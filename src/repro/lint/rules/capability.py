"""Capability conformance: plugin declarations must match the classes behind them.

``capability-mismatch`` statically cross-checks every ``register_protocol(...)``
call against the factory class it registers:

* the factory class must (transitively) inherit ``OverlaySampling`` — every
  peer-sampling protocol owes the core sampling contract, and the probes and
  harnesses assume it;
* an explicit ``capabilities=frozenset({...})`` argument must name exactly the
  capability ABCs the class actually inherits — an over-declaration would make
  ``Scenario.services_with`` hand the component to a probe that calls methods it
  does not have, an under-declaration hides a real capability from the matrix.

Inheritance is resolved through :class:`repro.lint.context.ModuleResolver` —
pure-AST walking of ``repro.*`` sources across module boundaries (``Croupier`` →
``PeerSamplingService`` in ``membership/base.py`` → ``OverlaySampling``) — so the
check needs no imports and runs on unimportable work-in-progress code. Factories
that are not resolvable classes (functions, re-exports) are skipped: the runtime
registry already forces those registrations to pass capabilities explicitly.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.context import FileContext, ModuleResolver
from repro.lint.findings import Finding
from repro.lint.registry import register_rule


def _finding(context: FileContext, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=context.display_path,
        line=node.lineno,
        col=node.col_offset,
        rule="capability-mismatch",
        message=message,
        scope=context.scope_at(node.lineno),
    )


def _declared_capability_names(node: ast.AST) -> Optional[Set[str]]:
    """Names inside ``capabilities=frozenset({A, B})`` / ``{A, B}`` / ``(A, B)``."""
    if isinstance(node, ast.Call) and len(node.args) == 1:
        # frozenset({...}) / set([...]) — unwrap the single argument.
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        names: Set[str] = set()
        for element in node.elts:
            if isinstance(element, ast.Name):
                names.add(element.id)
            elif isinstance(element, ast.Attribute):
                names.add(element.attr)
            else:
                return None  # computed element: not statically checkable
        return names
    return None


def check_capability_conformance(context: FileContext) -> List[Finding]:
    calls = [
        node
        for node in ast.walk(context.tree)
        if isinstance(node, ast.Call)
        and context.resolve_call_target(node.func) is not None
        and context.resolve_call_target(node.func).endswith("register_protocol")
    ]
    if not calls:
        return []

    resolver = ModuleResolver.for_file(context.path)
    capability_names = resolver.capability_names()
    # The linted file itself may be unsaved/fixture content; resolve its own
    # classes from the parsed tree, not the disk copy the resolver would load.
    local_bases = {
        node.name: node.bases
        for node in context.tree.body
        if isinstance(node, ast.ClassDef)
    }

    findings: List[Finding] = []
    for call in calls:
        factory = next(
            (kw.value for kw in call.keywords if kw.arg == "factory"),
            call.args[1] if len(call.args) > 1 else None,
        )
        if not isinstance(factory, ast.Name):
            continue  # non-class or computed factory: runtime registry handles it
        implemented = _implemented_capabilities(
            context, resolver, capability_names, local_bases, factory.id
        )
        if implemented is None:
            continue  # factory not resolvable to a class definition
        protocol = ""
        if call.args and isinstance(call.args[0], ast.Constant):
            protocol = f" (protocol {call.args[0].value!r})"
        if "OverlaySampling" not in implemented:
            findings.append(
                _finding(
                    context,
                    call,
                    f"factory class {factory.id!r}{protocol} does not inherit "
                    f"OverlaySampling — every registered protocol must provide "
                    f"the core sampling capability",
                )
            )
        declared_node = next(
            (kw.value for kw in call.keywords if kw.arg == "capabilities"), None
        )
        if declared_node is None:
            continue  # derived at registration time; nothing to drift
        declared = _declared_capability_names(declared_node)
        if declared is None:
            continue
        missing = sorted(declared - implemented)
        undeclared = sorted(implemented - declared)
        if missing or undeclared:
            details = []
            if missing:
                details.append(f"declares {missing} without inheriting them")
            if undeclared:
                details.append(f"inherits {undeclared} without declaring them")
            findings.append(
                _finding(
                    context,
                    call,
                    f"capability set of {factory.id!r}{protocol} "
                    f"{' and '.join(details)}; declared capabilities must equal "
                    f"the ABCs the class implements",
                )
            )
    return findings


def _implemented_capabilities(
    context: FileContext,
    resolver: ModuleResolver,
    capability_names: Set[str],
    local_bases,
    class_name: str,
) -> Optional[Set[str]]:
    """Capability ABC names ``class_name`` transitively inherits, or None if the
    name does not resolve to a class we can see."""
    reachable: Set[str] = set()
    if class_name in local_bases:
        for base in local_bases[class_name]:
            base_ref = _base_ref(context, base)
            if base_ref is None:
                continue
            module, _, name = base_ref.rpartition(".")
            reachable.add(base_ref)
            reachable |= resolver.transitive_bases(module, name) if module else set()
            if not module:
                reachable |= _local_closure(context, resolver, local_bases, name)
    else:
        imported = context.import_aliases.get(class_name)
        if imported is None:
            return None
        module, _, name = imported.rpartition(".")
        if not module:
            return None
        reachable = resolver.transitive_bases(module, name)
        if len(reachable) <= 1 and name not in capability_names:
            return None  # module not resolvable: stay silent rather than guess
    return {name for name in capability_names if _mentions(reachable, name)}


def _base_ref(context: FileContext, base: ast.AST) -> Optional[str]:
    if isinstance(base, ast.Name):
        return context.import_aliases.get(base.id, base.id)
    if isinstance(base, ast.Attribute):
        return context.resolve_call_target(base)
    return None


def _local_closure(
    context: FileContext, resolver: ModuleResolver, local_bases, name: str
) -> Set[str]:
    """Transitive bases of a class defined in the linted file itself."""
    reachable: Set[str] = set()
    stack = [name]
    while stack:
        current = stack.pop()
        if current in reachable:
            continue
        reachable.add(current)
        for base in local_bases.get(current, ()):
            ref = _base_ref(context, base)
            if ref is None:
                continue
            module, _, base_name = ref.rpartition(".")
            reachable.add(ref)
            if module:
                reachable |= resolver.transitive_bases(module, base_name)
            else:
                stack.append(base_name)
    return reachable


def _mentions(reachable: Set[str], capability: str) -> bool:
    return any(
        ref == capability or ref.endswith(f".{capability}") for ref in reachable
    )


register_rule(
    "capability-mismatch",
    check_capability_conformance,
    description=(
        "register_protocol declarations must match the ABCs the factory implements"
    ),
    rationale=(
        "the capability registry (PR 3) replaced isinstance checks everywhere; a "
        "drifted declaration routes components to probes whose methods they lack"
    ),
)
