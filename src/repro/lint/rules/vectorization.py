"""Vectorization discipline for the columnar hot path.

The columnar engine's contract (PR 7/9) is *dual execution*: every phase has a
numpy fast path and a bit-identical pure-array fallback, selected by
``use_numpy`` / ``HAVE_NUMPY`` guards. These rules fire only in the
:data:`~repro.lint.policy.VECTORIZED_MODULES` tier and enforce the two halves
of that contract:

``hotloop-python-scan``
    A per-row Python loop (``for row in range(self._rows)`` and friends)
    *outside* a sanctioned fallback region. Per-row Python on the hot path is
    the 10^5-node scaling bug PR 9 vectorized away; new scans belong on the
    numpy path with a guarded fallback mirror (or in the committed allowlist
    with a written justification, for documented off-hot-path passes).

``hotloop-alloc``
    A row-scaled numpy allocation (``np.full(rows.size, ...)`` etc.) inside a
    loop. Per-iteration row-scaled allocations turn an O(rows) pass into
    O(waves x rows) allocator traffic — hoist the buffer or pass a scalar.

``fallback-parity``
    A numpy-guarded branch with no pure-array mirror: either the guarded body
    flows back into shared code (numpy-only side effects), or it returns while
    the guard-less path falls off the end. This is how numpy/fallback
    bit-parity silently dies; every guard needs an ``else``/trailing fallback.

Sanctioned fallback regions (where per-row loops are *expected*):

* the ``else`` of a positive guard (``if use_numpy: ... else: <loops ok>``);
* statements after a positive guard whose body ends in ``return``/``raise``;
* the body of a negative guard (``if not use_numpy: <loops ok>``);
* whole functions reachable only from fallback regions (``_shuffle_fallback``
  and its helpers), computed as a fixpoint over the module's call graph.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.policy import is_vectorized_module
from repro.lint.registry import register_rule

#: Names whose truthiness selects the numpy fast path.
_GUARD_NAMES = frozenset({"use_numpy", "HAVE_NUMPY"})

#: Attribute names that measure the row extent of the engine.
_ROW_ATTRS = frozenset({"_rows", "rows", "_cap"})

#: Calls returning row-scaled sequences.
_ROW_CALLS = frozenset(
    {"live_rows", "live_public_rows", "live_private_rows", "live_count"}
)

#: numpy allocators: each call materialises a fresh buffer of its extent.
_NP_ALLOCATORS = frozenset(
    {
        "full",
        "zeros",
        "ones",
        "empty",
        "arange",
        "concatenate",
        "hstack",
        "vstack",
        "stack",
        "tile",
        "repeat",
        "array",
    }
)
_NP_PREFIXES = ("np.", "numpy.")


def _finding(context: FileContext, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=context.display_path,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
        scope=context.scope_at(node.lineno),
    )


def _guard_polarity(test: ast.AST) -> Optional[bool]:
    """True for ``if <numpy-guard>:``, False for ``if not <numpy-guard>:``."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        inner = _guard_polarity(test.operand)
        return None if inner is None else not inner
    name = None
    if isinstance(test, ast.Attribute):
        name = test.attr
    elif isinstance(test, ast.Name):
        name = test.id
    return True if name in _GUARD_NAMES else None


def _terminates(body: List[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], (ast.Return, ast.Raise))


def _span(nodes: List[ast.stmt]) -> Tuple[int, int]:
    start = nodes[0].lineno
    end = max(getattr(node, "end_lineno", node.lineno) or node.lineno
              for node in nodes)
    return start, end


class FallbackMap:
    """Sanctioned fallback regions of one module (see module docstring)."""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.regions: List[Tuple[int, int]] = []
        self.guarded_ifs: List[Tuple[ast.If, bool]] = []  # (node, polarity)
        self._functions: Dict[str, ast.AST] = {}
        self._visit_block(context.tree.body)
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._functions.setdefault(node.name, node)
        self.fallback_only = self._fallback_only_functions()

    def _visit_block(self, body: List[ast.stmt]) -> None:
        for index, stmt in enumerate(body):
            if isinstance(stmt, ast.If):
                polarity = _guard_polarity(stmt.test)
                if polarity is not None:
                    self.guarded_ifs.append((stmt, polarity))
                if polarity is True:
                    if stmt.orelse:
                        self.regions.append(_span(stmt.orelse))
                    elif _terminates(stmt.body) and index + 1 < len(body):
                        self.regions.append(_span(body[index + 1 :]))
                elif polarity is False:
                    self.regions.append(_span(stmt.body))
            for child_body in self._child_blocks(stmt):
                self._visit_block(child_body)

    @staticmethod
    def _child_blocks(stmt: ast.stmt) -> List[List[ast.stmt]]:
        blocks: List[List[ast.stmt]] = []
        for field in ("body", "orelse", "finalbody"):
            block = getattr(stmt, field, None)
            if block:
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    def _in_region(self, line: int) -> bool:
        return any(start <= line <= end for start, end in self.regions)

    def _fallback_only_functions(self) -> Set[str]:
        """Functions every one of whose call sites sits in a fallback region
        (or in another fallback-only function) — ``_shuffle_fallback`` and its
        helpers. Computed as a shrinking fixpoint from "called at least once"."""
        sites: Dict[str, List[int]] = {}
        for node in ast.walk(self.context.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name in self._functions:
                sites.setdefault(name, []).append(node.lineno)
        candidates = set(sites)
        while True:
            kept = set()
            for name in candidates:
                if all(
                    self._in_region(line)
                    or any(
                        self._encloses(self._functions[other], line)
                        for other in candidates
                        if other != name
                    )
                    for line in sites[name]
                ):
                    kept.add(name)
            if kept == candidates:
                return kept
            candidates = kept

    @staticmethod
    def _encloses(func: ast.AST, line: int) -> bool:
        end = getattr(func, "end_lineno", func.lineno) or func.lineno
        return func.lineno <= line <= end

    def sanctioned(self, line: int) -> bool:
        if self._in_region(line):
            return True
        return any(
            self._encloses(self._functions[name], line)
            for name in self.fallback_only
        )


# --------------------------------------------------------------- row extent


def _row_env(func_body: List[ast.stmt]) -> Set[str]:
    """Names bound (anywhere in the scope) to row-extent expressions."""
    env: Set[str] = set()
    for _ in range(5):  # chains like cap -> new_cap are short
        changed = False
        for node in _walk_scope(func_body):
            if isinstance(node, ast.Assign) and _row_scaled(node.value, env):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id not in env:
                        env.add(target.id)
                        changed = True
        if not changed:
            return env
    return env


def _row_scaled(node: ast.AST, env: Set[str]) -> bool:
    """Does the expression reference the engine's row extent?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _ROW_ATTRS:
            return True
        if isinstance(sub, ast.Name) and sub.id in env:
            return True
        if isinstance(sub, ast.Call):
            name = None
            if isinstance(sub.func, ast.Attribute):
                name = sub.func.attr
            elif isinstance(sub.func, ast.Name):
                name = sub.func.id
            if name in _ROW_CALLS:
                return True
    return False


def _row_scaled_iter(iterable: ast.AST, env: Set[str]) -> bool:
    """Is a loop's iterable row-scaled? ``range(...row extent...)``, a
    ``live_*`` call, a name bound to one, or ``enumerate`` of any of these."""
    if isinstance(iterable, ast.Call):
        name = None
        if isinstance(iterable.func, ast.Name):
            name = iterable.func.id
        elif isinstance(iterable.func, ast.Attribute):
            name = iterable.func.attr
        if name == "range":
            return any(_row_scaled(arg, env) for arg in iterable.args)
        if name in _ROW_CALLS:
            return True
        if name == "enumerate" and iterable.args:
            return _row_scaled_iter(iterable.args[0], env)
    return False


def _scopes(context: FileContext):
    """(body, function-or-None) for the module and every function."""
    yield context.tree.body, None
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body, node


def _walk_scope(body: List[ast.stmt]):
    """Walk a scope's statements without entering nested function/class bodies
    (the pop-time check also skips defs that *are* the seed statements, i.e. the
    module scope does not see into its functions)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def check_hotloop_python_scan(context: FileContext) -> List[Finding]:
    if not is_vectorized_module(context.display_path):
        return []
    fallback = FallbackMap(context)
    findings: List[Finding] = []
    for body, _func in _scopes(context):
        env = _row_env(body)
        for node in _walk_scope(body):
            iterable: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterable = node.iter
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iterable = node.generators[0].iter
            if iterable is None or not _row_scaled_iter(iterable, env):
                continue
            if fallback.sanctioned(node.lineno):
                continue
            findings.append(
                _finding(
                    context,
                    node,
                    "hotloop-python-scan",
                    "per-row Python loop outside a sanctioned fallback branch; "
                    "move this scan onto the numpy path with a use_numpy-guarded "
                    "pure-array mirror (vectorized-module tier)",
                )
            )
    return findings


def check_hotloop_alloc(context: FileContext) -> List[Finding]:
    if not is_vectorized_module(context.display_path):
        return []
    fallback = FallbackMap(context)
    findings: List[Finding] = []
    for body, _func in _scopes(context):
        env = _row_env(body)
        loops: List[Tuple[int, int]] = []
        for node in _walk_scope(body):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                end = getattr(node, "end_lineno", node.lineno) or node.lineno
                loops.append((node.lineno, end))
        if not loops:
            continue
        for node in _walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            target = context.resolve_call_target(node.func)
            if target is None or not target.startswith(_NP_PREFIXES):
                continue
            if target.split(".")[-1] not in _NP_ALLOCATORS:
                continue
            # Only row-scaled extents matter: a (V,)-sized scratch array inside
            # a loop is noise, an O(rows) one is the regression.
            if not any(
                _row_scaled(arg, env) or _has_size_attr(arg)
                for arg in node.args
            ):
                continue
            inside = any(
                start < node.lineno <= end and node.lineno > start
                for start, end in loops
            )
            if not inside or fallback.sanctioned(node.lineno):
                continue
            findings.append(
                _finding(
                    context,
                    node,
                    "hotloop-alloc",
                    f"row-scaled {target}(...) allocated inside a loop; every "
                    f"iteration pays an O(rows) allocation — hoist the buffer "
                    f"out of the loop or pass a scalar",
                )
            )
    return findings


def _has_size_attr(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr in ("size", "shape")
        for sub in ast.walk(node)
    )


def check_fallback_parity(context: FileContext) -> List[Finding]:
    if not is_vectorized_module(context.display_path):
        return []
    fallback = FallbackMap(context)
    findings: List[Finding] = []
    for stmt, polarity in fallback.guarded_ifs:
        if polarity is not True:
            continue  # ``if not use_numpy:`` declares the fallback explicitly
        if stmt.orelse:
            continue
        if len(stmt.body) == 1 and isinstance(stmt.body[0], ast.Raise):
            continue  # loud guard validation, not a silent divergence
        parent_block = _enclosing_block(context.tree, stmt)
        trailing = _has_trailing(parent_block, stmt)
        if _terminates(stmt.body) and trailing:
            continue  # the sanctioned ``if guard: ...; return`` + fallback shape
        if _terminates(stmt.body):
            message = (
                "numpy-guarded branch returns but nothing follows for the "
                "pure-array path, which falls off the end; add the fallback "
                "mirror after the guard"
            )
        else:
            message = (
                "numpy-guarded branch re-joins shared code with no else: its "
                "side effects have no pure-array mirror, so numpy and fallback "
                "runs diverge; add the else branch"
            )
        findings.append(_finding(context, stmt, "fallback-parity", message))
    return findings


def _enclosing_block(tree: ast.Module, stmt: ast.stmt) -> List[ast.stmt]:
    """The statement list that directly contains ``stmt``."""
    result: List[List[ast.stmt]] = [tree.body]

    def visit(block: List[ast.stmt]) -> None:
        if stmt in block:
            result[0] = block
            return
        for item in block:
            for child_block in FallbackMap._child_blocks(item):
                visit(child_block)

    visit(tree.body)
    return result[0]


def _has_trailing(block: List[ast.stmt], stmt: ast.stmt) -> bool:
    index = block.index(stmt) if stmt in block else -1
    return 0 <= index < len(block) - 1


register_rule(
    "hotloop-python-scan",
    check_hotloop_python_scan,
    description=(
        "no per-row Python loops outside fallback branches (vectorized tier)"
    ),
    rationale=(
        "the columnar engine holds 10^5-node rounds to array speed (PR 7/9); a "
        "per-row Python scan on the guarded-numpy hot path is the scaling "
        "regression the scale-smoke budget would catch three stages later"
    ),
)

register_rule(
    "hotloop-alloc",
    check_hotloop_alloc,
    description=(
        "no row-scaled numpy allocations inside loops (vectorized tier)"
    ),
    rationale=(
        "PR 9's wave loop showed per-wave O(rows) allocations dominate at "
        "10^5 nodes; buffers are hoisted once or replaced by scalars"
    ),
)

register_rule(
    "fallback-parity",
    check_fallback_parity,
    description=(
        "every numpy-guarded branch needs a pure-array mirror (vectorized tier)"
    ),
    rationale=(
        "CI byte-compares numpy and REPRO_NO_NUMPY=1 runs (PR 7); a guarded "
        "branch without an else/trailing fallback is how that parity silently "
        "dies"
    ),
)
