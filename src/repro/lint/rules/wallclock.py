"""Wall-clock containment: real time must never reach reproducible bytes.

``wall-clock`` flags every call to an ambient-nondeterminism source — ``time.*``
clocks, ``datetime.now``-family constructors, ``uuid1``/``uuid4``, ``os.urandom``
and the ``secrets`` module (the full table is
:data:`repro.lint.policy.WALLCLOCK_CALLS`). The simulator has its own virtual
clock; measurement payloads are pure functions of the seed; anything that needs
"now" for *diagnostics* (the runner's per-cell ``duration_s`` journal field, the
scale harness's node·rounds/s throughput line — both deliberately kept out of
aggregate bytes since PR 6) is recorded in the committed allowlist with a
justification in ``docs/determinism_lint.md``, not silently tolerated.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.policy import WALLCLOCK_CALLS
from repro.lint.registry import register_rule


def check_wall_clock(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    targets = set(WALLCLOCK_CALLS)
    # ``from datetime import datetime`` then ``datetime.now()`` resolves to
    # ``datetime.datetime.now`` via the alias table; ``import datetime`` then
    # ``datetime.datetime.now()`` resolves identically, so one table serves both.
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        target = context.resolve_call_target(node.func)
        if target in targets:
            findings.append(
                Finding(
                    path=context.display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule="wall-clock",
                    message=(
                        f"{target}() is wall-clock/entropy and differs between "
                        f"identically-seeded runs; use the simulator's virtual "
                        f"clock, or allowlist a justified diagnostic site"
                    ),
                    scope=context.scope_at(node.lineno),
                )
            )
    return findings


register_rule(
    "wall-clock",
    check_wall_clock,
    description=(
        "no wall-clock/uuid/entropy calls outside allowlisted diagnostic sites"
    ),
    rationale=(
        "chaos/resume recovery and cross-PR baselines compare bytes (PR 6); a "
        "timestamp in any digested payload would make every gate flaky"
    ),
)
