"""Hot-path ``__slots__`` coverage: the allocation tiers PR 1 optimised stay lean.

``missing-slots`` requires every class defined in a slots-tier module
(:data:`repro.lint.policy.SLOTS_MODULES`: descriptors, partial views, messages)
to declare ``__slots__`` in its body or use ``@dataclass(slots=True)``. These
objects are allocated per node per round at 10^5-node scale; a single slipped
``__dict__`` on a descriptor-tier class costs ~50% extra memory per instance and
regresses exactly the hot paths the BENCH trajectory pins. Exempt by
construction: ``Enum``/``Exception`` subclasses (both are registry-like, not
per-round allocations, and CPython constrains slotting them).
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.policy import is_slots_module
from repro.lint.registry import register_rule

_EXEMPT_BASE_SUFFIXES = ("Enum", "Exception", "Error", "Warning")


def _declares_slots(node: ast.ClassDef) -> bool:
    for statement in node.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _dataclass_with_slots(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = decorator.func
        attr = name.attr if isinstance(name, ast.Attribute) else getattr(name, "id", "")
        if attr != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "slots"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _is_exempt(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if name.endswith(_EXEMPT_BASE_SUFFIXES):
            return True
    return False


def check_missing_slots(context: FileContext) -> List[Finding]:
    if not is_slots_module(context.display_path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if _declares_slots(node) or _dataclass_with_slots(node) or _is_exempt(node):
            continue
        findings.append(
            Finding(
                path=context.display_path,
                line=node.lineno,
                col=node.col_offset,
                rule="missing-slots",
                message=(
                    f"class {node.name!r} is in a hot-path module but declares no "
                    f"__slots__; per-instance __dict__ here regresses the PR 1 "
                    f"memory/speed wins the BENCH trajectory pins"
                ),
                scope=context.scope_at(node.lineno),
            )
        )
    return findings


register_rule(
    "missing-slots",
    check_missing_slots,
    description="classes in descriptor/view/message-tier modules need __slots__",
    rationale=(
        "these objects are allocated per node per round at 1e5-node scale; "
        "PR 1's 3.3x hot-path win depends on them staying __dict__-free"
    ),
)
