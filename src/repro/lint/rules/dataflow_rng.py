"""RNG-custody rules: dataflow-level guards on stream consumption.

Built on :mod:`repro.lint.dataflow` (the per-module taint pass with
cross-module summaries). Where :mod:`repro.lint.rules.rng` checks how a stream
is *created*, these check how it is *consumed*:

``draw-in-unordered-loop``
    A draw from a stateful stream inside iteration over a hash-ordered
    container. The draw sequence then depends on set iteration order — the
    evaluation-order hazard PR 9's positional counter RNG exists to eliminate.
    ``sorted(...)`` the iterable, or key draws by position
    (:mod:`repro.columnar.rng`).

``shared-stream``
    A module-level stream drawn from two or more distinct function scopes. Any
    two such consumers interleave by call order, so adding a call site in one
    function silently re-seeds the other's draws. Each consumer must derive its
    own stream (``derive_seed`` / ``derive_rng``) instead.

``rng-crosses-process``
    A stream reachable from an object that crosses a process boundary — pickled
    explicitly, written to a pipe/queue ``send``/``put``, or passed in
    ``multiprocessing.Process(args=...)``. Pickling a ``random.Random``
    duplicates its state: parent and child then replay the *same* draws, the
    exact bug the matrix runner's per-cell ``derive_seed`` custody prevents.
    Ship the seed (an int) and re-derive on the far side.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.context import FileContext
from repro.lint.dataflow import (
    KIND_RNG,
    DataflowResolver,
    TaintAnalysis,
    unordered_iterable,
)
from repro.lint.findings import Finding
from repro.lint.registry import register_rule

#: Receiver-name fragments that mark a ``.send``/``.put`` call as an IPC write.
_IPC_RECEIVERS = ("conn", "pipe", "queue")
_IPC_METHODS = frozenset({"send", "put", "put_nowait"})

#: One resolver per package root, shared across files of a lint run (summaries
#: are pure functions of on-disk sources, so caching across contexts is sound).
_RESOLVERS: Dict[Optional[str], DataflowResolver] = {}

#: Per-file analysis cache: the three rules here run on the same context object,
#: so the (expensive) taint pass runs once, not three times.
_ANALYSES: Dict[int, Tuple[FileContext, TaintAnalysis]] = {}


def _analysis(context: FileContext) -> TaintAnalysis:
    cached = _ANALYSES.get(id(context))
    if cached is not None and cached[0] is context:
        return cached[1]
    resolver = DataflowResolver.for_file(context.path)
    key = str(resolver.package_root) if resolver.package_root else None
    resolver = _RESOLVERS.setdefault(key, resolver)
    analysis = TaintAnalysis(context, resolver=resolver)
    _ANALYSES.clear()  # one linted file at a time; don't grow without bound
    _ANALYSES[id(context)] = (context, analysis)
    return analysis


def _finding(context: FileContext, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=context.display_path,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
        scope=context.scope_at(node.lineno),
    )


def _loops_in(scope_body: List[ast.stmt]) -> Iterator[Tuple[ast.AST, List[ast.AST]]]:
    """(iterable, body nodes) for every for-loop and comprehension in a scope,
    without descending into nested function/class bodies."""
    stack: List[ast.AST] = list(scope_body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scope (including module-level defs as seeds)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter, node.body
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            yield node.generators[0].iter, [node.elt, *node.generators[0].ifs]
        elif isinstance(node, ast.DictComp):
            yield node.generators[0].iter, [
                node.key,
                node.value,
                *node.generators[0].ifs,
            ]
        stack.extend(ast.iter_child_nodes(node))


def check_draw_in_unordered_loop(context: FileContext) -> List[Finding]:
    analysis = _analysis(context)
    findings: List[Finding] = []
    for func, env in analysis.iter_scopes():
        body = func.body if func is not None else context.tree.body
        for iterable, loop_body in _loops_in(body):
            reason = unordered_iterable(analysis, iterable, env)
            if reason is None:
                continue
            for part in loop_body:
                for node in ast.walk(part):
                    if analysis.draw_receiver(node, env) is not None:
                        findings.append(
                            _finding(
                                context,
                                node,
                                "draw-in-unordered-loop",
                                f"stream drawn inside a loop whose order is not "
                                f"stable ({reason}); the draw sequence then "
                                f"depends on hash order — iterate sorted(...) "
                                f"or key draws by position",
                            )
                        )
    return findings


def check_shared_stream(context: FileContext) -> List[Finding]:
    analysis = _analysis(context)
    module_streams = {
        name for name, kind in analysis.module_env.items() if kind == KIND_RNG
    }
    if not module_streams:
        return []
    # name -> [(scope label, draw node)] in source order.
    draws: Dict[str, List[Tuple[str, ast.AST]]] = {name: [] for name in module_streams}
    for func, env in analysis.iter_scopes():
        body = func.body if func is not None else context.tree.body
        label = func.name if func is not None else "<module>"
        for stmt in body:
            for node in TaintAnalysis._walk_same_scope(stmt):
                receiver = analysis.draw_receiver(node, env)
                if (
                    receiver is not None
                    and isinstance(receiver, ast.Name)
                    and receiver.id in module_streams
                    # A function-local rebinding shadows the module stream.
                    and env.get(receiver.id) == KIND_RNG
                    and (func is None or receiver.id not in
                         analysis.scope_env(func)
                         or receiver.id in analysis.module_env)
                ):
                    draws[receiver.id].append((label, node))
    findings: List[Finding] = []
    for name, sites in sorted(draws.items()):
        scopes = sorted({label for label, _ in sites})
        if len(scopes) < 2:
            continue
        first_scope = sites[0][0]
        for label, node in sites:
            if label == first_scope:
                continue
            findings.append(
                _finding(
                    context,
                    node,
                    "shared-stream",
                    f"module-level stream {name!r} is also consumed from "
                    f"{first_scope!r}; interleaved consumers couple each "
                    f"other's draws — derive a per-consumer stream with "
                    f"derive_seed/derive_rng",
                )
            )
    return findings


def _tainted_within(
    analysis: TaintAnalysis, node: ast.AST, env: Dict[str, str]
) -> bool:
    """Is any sub-expression of ``node`` RNG-tainted? (Pickling a container
    pickles everything reachable from it, so one tainted element taints the
    whole argument.)"""
    return any(
        analysis.expr_kind(sub, env) == KIND_RNG for sub in ast.walk(node)
    )


def _ipc_receiver(node: ast.AST) -> bool:
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is None:
        return False
    lowered = name.lower()
    return lowered == "q" or any(part in lowered for part in _IPC_RECEIVERS)


def check_rng_crosses_process(context: FileContext) -> List[Finding]:
    analysis = _analysis(context)
    findings: List[Finding] = []
    for func, env in analysis.iter_scopes():
        body = func.body if func is not None else context.tree.body
        for stmt in body:
            for node in TaintAnalysis._walk_same_scope(stmt):
                if not isinstance(node, ast.Call):
                    continue
                target = context.resolve_call_target(node.func)
                boundary: Optional[str] = None
                payloads: List[ast.AST] = []
                if target in ("pickle.dumps", "pickle.dump"):
                    boundary = f"{target}()"
                    payloads = node.args[:1]
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _IPC_METHODS
                    and _ipc_receiver(node.func.value)
                ):
                    boundary = f".{node.func.attr}() on a pipe/queue"
                    payloads = node.args[:1]
                elif target is not None and target.endswith(
                    ("multiprocessing.Process", "multiprocessing.context.Process")
                ):
                    boundary = "multiprocessing.Process(args=...)"
                    payloads = [
                        kw.value for kw in node.keywords if kw.arg == "args"
                    ]
                if boundary is None:
                    continue
                for payload in payloads:
                    if _tainted_within(analysis, payload, env):
                        findings.append(
                            _finding(
                                context,
                                node,
                                "rng-crosses-process",
                                f"a stream is reachable from the payload of "
                                f"{boundary}; pickling duplicates its state so "
                                f"both processes replay the same draws — ship "
                                f"the derive_seed value and rebuild the stream "
                                f"on the far side",
                            )
                        )
                        break
    return findings


register_rule(
    "draw-in-unordered-loop",
    check_draw_in_unordered_loop,
    description=(
        "no stateful-stream draws inside hash-ordered (set) iteration"
    ),
    rationale=(
        "a stream's draw sequence is its contract; consuming it in set order "
        "couples results to hash order — the order-dependence the columnar "
        "positional RNG (PR 9) was built to eliminate"
    ),
)

register_rule(
    "shared-stream",
    check_shared_stream,
    description=(
        "a module-level stream may not be consumed from multiple scopes"
    ),
    rationale=(
        "interleaved consumers of one stream re-seed each other by call order; "
        "per-consumer derive_seed streams keep every result a pure function of "
        "its labels (PR 2's worker-parity contract)"
    ),
)

register_rule(
    "rng-crosses-process",
    check_rng_crosses_process,
    description=(
        "no stream may be pickled across a process boundary (pipes, queues)"
    ),
    rationale=(
        "the matrix runner's workers rebuild streams from derived seeds (PR 6); "
        "a pickled stream duplicates state and replays identical draws in two "
        "processes"
    ),
)
