"""RNG discipline: every random draw must trace to ``derive_seed``.

The whole reproduction rests on one chain of custody: a cell's root seed →
``derive_seed(root, *labels)`` → an injected ``random.Random`` stream → every
draw. Three rules guard it:

``global-rng``
    No calls to the ``random`` module's top-level functions (``random.random()``,
    ``random.choice(...)``, or the same names imported directly). They consume the
    hidden process-global Mersenne Twister, whose state depends on import order,
    worker identity and every other caller — the exact nondeterminism the 4-vs-1
    worker parity gate exists to catch, detected here before it runs.

``unseeded-rng``
    No ``random.Random()`` without a seed argument (it seeds from OS entropy) and
    no ``random.SystemRandom`` (pure entropy, unseedable). A constructed stream
    must be handed its seed — in this repo, a ``derive_seed`` value.

``global-seed``
    No ``random.seed(...)`` / ``numpy.random.seed(...)``: re-seeding the global
    generator is how "deterministic" scripts silently couple to each other. It
    also flags any other ``numpy.random`` usage — numpy streams are not part of
    this repo's determinism story (the columnar engine draws from injected
    ``random.Random`` streams precisely so numpy stays optional).
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.policy import GLOBAL_RNG_FUNCTIONS, NUMPY_RANDOM_PREFIXES
from repro.lint.registry import register_rule


def _finding(context: FileContext, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=context.display_path,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
        scope=context.scope_at(node.lineno),
    )


def check_global_rng(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    global_targets = {f"random.{name}" for name in GLOBAL_RNG_FUNCTIONS}
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            target = context.resolve_call_target(node.func)
            if target in global_targets:
                findings.append(
                    _finding(
                        context,
                        node,
                        "global-rng",
                        f"{target}() draws from the process-global RNG; draw from "
                        f"an injected random.Random seeded via derive_seed instead",
                    )
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            # ``from random import choice`` makes the global stream look local;
            # flag the import so the aliasing never takes root. (``Random`` and
            # ``SystemRandom`` are class imports, handled by unseeded-rng.)
            for item in node.names:
                if item.name in GLOBAL_RNG_FUNCTIONS:
                    findings.append(
                        _finding(
                            context,
                            node,
                            "global-rng",
                            f"'from random import {item.name}' imports a global-RNG "
                            f"function; inject a random.Random stream instead",
                        )
                    )
    return findings


def check_unseeded_rng(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        target = context.resolve_call_target(node.func)
        if target == "random.Random" and not node.args:
            findings.append(
                _finding(
                    context,
                    node,
                    "unseeded-rng",
                    "random.Random() with no seed draws its state from OS entropy; "
                    "pass a derive_seed(...) value",
                )
            )
        elif target == "random.SystemRandom":
            findings.append(
                _finding(
                    context,
                    node,
                    "unseeded-rng",
                    "random.SystemRandom is unseedable entropy and can never "
                    "reproduce; use random.Random(derive_seed(...))",
                )
            )
    return findings


def check_global_seed(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    # Only the outermost attribute of a chain is a site: ``numpy.random.seed``
    # contains the ``numpy.random`` node and must report once, not twice.
    inner_attributes = {
        id(node.value)
        for node in ast.walk(context.tree)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Attribute)
    }
    for node in ast.walk(context.tree):
        target = None
        if isinstance(node, ast.Call):
            target = context.resolve_call_target(node.func)
        elif isinstance(node, ast.Attribute) and id(node) not in inner_attributes:
            target = context.resolve_call_target(node)
        if target is None:
            continue
        if isinstance(node, ast.Call) and target == "random.seed":
            findings.append(
                _finding(
                    context,
                    node,
                    "global-seed",
                    "random.seed() mutates the process-global generator shared by "
                    "every caller; seed an injected random.Random instead",
                )
            )
        elif isinstance(node, ast.Attribute) and any(
            target == prefix or target.startswith(prefix + ".")
            for prefix in NUMPY_RANDOM_PREFIXES
        ):
            findings.append(
                _finding(
                    context,
                    node,
                    "global-seed",
                    f"{target} uses numpy's hidden RNG state, which is outside this "
                    f"repo's derive_seed chain; draw from an injected random.Random",
                )
            )
    return findings


register_rule(
    "global-rng",
    check_global_rng,
    description=(
        "randomness must flow through injected, seed-derived random.Random streams"
    ),
    rationale=(
        "byte-identical aggregates across worker counts (PR 2) require every draw "
        "to come from a derive_seed-derived stream, never the process-global RNG"
    ),
)

register_rule(
    "unseeded-rng",
    check_unseeded_rng,
    description="random.Random() must be given a seed (a derive_seed value)",
    rationale=(
        "an unseeded stream reseeds from OS entropy on every construction, so the "
        "same cell produces different bytes on every run"
    ),
)

register_rule(
    "global-seed",
    check_global_seed,
    description="no random.seed() / numpy.random use — both are hidden global state",
    rationale=(
        "re-seeding shared generators couples unrelated components; numpy streams "
        "are outside the derive_seed custody chain the parity gates verify"
    ),
)
