"""Canonical-output hygiene: bytes that get digested must be order-stable.

Aggregates, journals, timeline documents and payload digests are compared with
``cmp`` and ``sha256`` across worker counts, backends and PRs. Two sources of
silent byte drift are dict/set ordering and ``json.dumps`` defaulting to
insertion order; these rules fire in the canonical-module tier
(:data:`repro.lint.policy.CANONICAL_MODULES`):

``unsorted-json``
    ``json.dumps`` without ``sort_keys=True``. Insertion order is a refactoring
    hazard: reordering two assignments in a payload builder re-keys every digest.

``unsorted-iteration``
    Iterating a ``set`` (literal or call), ``os.listdir``, ``glob.glob`` /
    ``iglob`` or ``Path.iterdir``/``glob``/``rglob`` result directly. Set order
    varies with hash randomization across processes; directory order varies with
    the filesystem. Wrap the iterable in ``sorted(...)``.

``json-roundtrip-copy``
    ``json.loads(json.dumps(x))`` (checked repo-wide, not just the canonical
    tier). As a deep-copy idiom it silently re-orders nothing today but degrades
    floats/ints subtly (``NaN``, int keys → str) and couples a *copy* to the
    serialization rules this tier exists to protect; use ``copy.deepcopy``.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.policy import is_canonical_module
from repro.lint.registry import register_rule

#: Call targets (normalized dotted names) whose result order is filesystem- or
#: hash-dependent.
_UNORDERED_CALLS = {
    "set",
    "frozenset",
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
}

#: Method names (we cannot resolve the receiver's type statically) whose result
#: order is filesystem-dependent on ``pathlib.Path``; narrow enough that false
#: positives are unlikely in this codebase.
_UNORDERED_METHODS = {"iterdir", "rglob"}


def _finding(context: FileContext, node: ast.AST, rule: str, message: str) -> Finding:
    return Finding(
        path=context.display_path,
        line=node.lineno,
        col=node.col_offset,
        rule=rule,
        message=message,
        scope=context.scope_at(node.lineno),
    )


def check_unsorted_json(context: FileContext) -> List[Finding]:
    if not is_canonical_module(context.display_path):
        return []
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if context.resolve_call_target(node.func) != "json.dumps":
            continue
        sort_keys = next(
            (kw.value for kw in node.keywords if kw.arg == "sort_keys"), None
        )
        is_true = isinstance(sort_keys, ast.Constant) and sort_keys.value is True
        if not is_true:
            findings.append(
                _finding(
                    context,
                    node,
                    "unsorted-json",
                    "json.dumps in a canonical-output module needs sort_keys=True; "
                    "insertion order is not a stable byte contract",
                )
            )
    return findings


def _unordered_reason(context: FileContext, node: ast.AST) -> Optional[str]:
    """Why ``node`` (an iterable expression) has unstable order, or None."""
    if isinstance(node, ast.Set):
        return "a set literal iterates in hash order"
    if isinstance(node, ast.Call):
        target = context.resolve_call_target(node.func)
        if target in _UNORDERED_CALLS:
            return f"{target}(...) has no stable iteration order"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _UNORDERED_METHODS
        ):
            return f".{node.func.attr}(...) yields entries in filesystem order"
    return None


def check_unsorted_iteration(context: FileContext) -> List[Finding]:
    if not is_canonical_module(context.display_path):
        return []
    findings: List[Finding] = []
    iterables: List[ast.AST] = []
    for node in ast.walk(context.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, ast.comprehension):
            iterables.append(node.iter)
    for iterable in iterables:
        reason = _unordered_reason(context, iterable)
        if reason is not None:
            findings.append(
                _finding(
                    context,
                    iterable,
                    "unsorted-iteration",
                    f"{reason}; wrap it in sorted(...) — this module's output is "
                    f"compared byte-for-byte",
                )
            )
    return findings


def check_json_roundtrip_copy(context: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        if context.resolve_call_target(node.func) != "json.loads":
            continue
        if len(node.args) != 1 or not isinstance(node.args[0], ast.Call):
            continue
        if context.resolve_call_target(node.args[0].func) == "json.dumps":
            findings.append(
                _finding(
                    context,
                    node,
                    "json-roundtrip-copy",
                    "json.loads(json.dumps(x)) as a deep copy degrades values "
                    "(int keys, NaN, tuples); use copy.deepcopy(x)",
                )
            )
    return findings


register_rule(
    "unsorted-json",
    check_unsorted_json,
    description="json.dumps needs sort_keys=True in canonical-output modules",
    rationale=(
        "aggregate/journal/timeline bytes are cmp'd and digested across workers, "
        "backends and PRs (PR 2/5/6); key order must survive refactors"
    ),
)

register_rule(
    "unsorted-iteration",
    check_unsorted_iteration,
    description=(
        "no set/listdir/glob-order iteration in canonical-output modules"
    ),
    rationale=(
        "set and directory iteration order varies across processes and "
        "filesystems, which would break the 4-vs-1 worker byte-parity gate"
    ),
)

register_rule(
    "json-roundtrip-copy",
    check_json_roundtrip_copy,
    description="json.loads(json.dumps(x)) deep-copy idiom — use copy.deepcopy",
    rationale=(
        "the round trip silently rewrites values and couples copying to "
        "serialization semantics; deep copies must be copies"
    ),
)
