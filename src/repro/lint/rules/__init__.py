"""Built-in determinism rules.

One module per invariant family — RNG discipline (:mod:`.rng`), canonical-output
hygiene (:mod:`.canonical`), wall-clock containment (:mod:`.wallclock`),
capability conformance (:mod:`.capability`) and hot-path ``__slots__`` coverage
(:mod:`.slots`). Each registers its rules at import time via
:func:`repro.lint.registry.register_rule`; the engine imports them lazily through
:func:`repro.lint.registry.load_builtin_rules`.
"""
