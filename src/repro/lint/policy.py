"""Lint policy: which invariant applies where.

The determinism rules are not uniform across the package — ``sort_keys=True`` is an
invariant only in modules whose JSON bytes are digested, committed or compared by
CI, and ``__slots__`` is an invariant only in the hot-path object tiers PR 1
optimised. This module is the single place those tiers are declared, so adding a
module to a tier is a one-line policy change, not a rule edit.

Paths are matched as posix suffixes (``repro/workload/timeline.py`` matches the
file wherever the checkout lives), which also lets test fixtures opt into a tier by
mirroring the path shape. :func:`path_matches_suffix` is the one matcher — tier
declarations here and ``.repro-lint-allow`` entries go through it, and both use
the same canonical package-relative form: ``repro/...`` with no ``src/`` prefix
(a leading ``src/`` is tolerated at match time but rejected by the strict-mode
allowlist audit, so the two spellings can never drift apart again).
"""

from __future__ import annotations

from typing import Tuple

#: Modules whose emitted JSON / iteration order reaches digested or committed
#: bytes: matrix aggregates (runner), journal records and spec digests
#: (checkpoint), payload integrity digests (faults), canonical timeline documents
#: (timeline/events), payload and aggregate construction (payload/collector,
#: matrix, report) and the streamed histogram path (columnar/streaming). The
#: ``unsorted-json`` and ``unsorted-iteration`` rules fire only here.
CANONICAL_MODULES: Tuple[str, ...] = (
    "repro/experiments/runner.py",
    "repro/experiments/checkpoint.py",
    "repro/experiments/faults.py",
    "repro/experiments/matrix.py",
    "repro/experiments/report.py",
    "repro/metrics/payload.py",
    "repro/metrics/collector.py",
    "repro/workload/timeline.py",
    "repro/workload/events.py",
    "repro/columnar/streaming.py",
)

#: Modules holding the columnar engine's dual execution paths: every per-row
#: phase must run vectorized under numpy with a ``use_numpy``-guarded pure-array
#: mirror (the PR 7/9 bit-parity contract). The ``hotloop-python-scan``,
#: ``hotloop-alloc`` and ``fallback-parity`` rules fire only here.
VECTORIZED_MODULES: Tuple[str, ...] = (
    "repro/columnar/engine.py",
    "repro/columnar/shuffle.py",
    "repro/columnar/streaming.py",
    "repro/columnar/rng.py",
)

#: Hot-path modules whose classes must declare ``__slots__`` — the
#: descriptor/view/message tiers are allocated per node per round, and PR 1's
#: 3.3x win depends on them staying dict-free. The ``missing-slots`` rule fires
#: only here.
SLOTS_MODULES: Tuple[str, ...] = (
    "repro/membership/descriptor.py",
    "repro/membership/view.py",
    "repro/simulator/message.py",
)

#: Wall-clock / ambient-entropy call targets (normalized dotted names): values
#: that differ between two runs of the same seed. Legitimate *diagnostic* uses
#: (duration telemetry that provably stays out of aggregate bytes) are recorded
#: in the committed allowlist, each justified in docs/determinism_lint.md.
WALLCLOCK_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbits",
    "secrets.randbelow",
    "secrets.choice",
)

#: Functions of the ``random`` *module* (the hidden process-global Mersenne
#: Twister). Calling any of these couples a result to import order and to every
#: other consumer of the global stream; all randomness must flow through an
#: injected ``random.Random`` seeded via ``derive_seed``.
GLOBAL_RNG_FUNCTIONS: Tuple[str, ...] = (
    "random",
    "randint",
    "randrange",
    "randbytes",
    "getrandbits",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "triangular",
    "betavariate",
    "expovariate",
    "gammavariate",
    "gauss",
    "lognormvariate",
    "normalvariate",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
)

#: ``numpy.random`` is off limits entirely: its global state is as hidden as the
#: stdlib one, and seeded ``numpy.random.Generator`` streams are not part of this
#: repo's determinism story (the columnar engine deliberately draws from injected
#: ``random.Random`` streams so numpy stays an optional dependency).
NUMPY_RANDOM_PREFIXES: Tuple[str, ...] = (
    "numpy.random",
    "np.random",
)


def normalize_path_suffix(suffix: str) -> str:
    """Canonical form of a tier/allowlist path suffix: posix, package-relative.

    ``src/repro/...`` and ``./repro/...`` normalize to ``repro/...`` — the one
    spelling the docs, the tiers above and ``.repro-lint-allow`` all use.
    """
    suffix = suffix.replace("\\", "/")
    while suffix.startswith("./"):
        suffix = suffix[2:]
    if suffix.startswith("src/"):
        suffix = suffix[len("src/") :]
    return suffix


def path_matches_suffix(path: str, suffix: str) -> bool:
    """Does posix ``path`` end with ``suffix`` at a path-component boundary?

    The single matcher behind every tier predicate and allowlist entry; both
    sides are normalized first, so an entry written as ``src/repro/...`` still
    matches a finding reported as ``repro/...`` (and vice versa).
    """
    path = normalize_path_suffix(path)
    suffix = normalize_path_suffix(suffix)
    return path == suffix or path.endswith("/" + suffix)


def _matches(path: str, suffixes: Tuple[str, ...]) -> bool:
    return any(path_matches_suffix(path, suffix) for suffix in suffixes)


def is_canonical_module(path: str) -> bool:
    """Does ``path`` (posix) produce digested / committed / CI-compared bytes?"""
    return _matches(path, CANONICAL_MODULES)


def is_slots_module(path: str) -> bool:
    """Is ``path`` (posix) in the hot-path tier that must declare ``__slots__``?"""
    return _matches(path, SLOTS_MODULES)


def is_vectorized_module(path: str) -> bool:
    """Is ``path`` (posix) in the columnar dual-execution (vectorized) tier?"""
    return _matches(path, VECTORIZED_MODULES)
