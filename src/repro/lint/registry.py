"""The lint-rule registry: how determinism rules join the linter.

Mirrors :mod:`repro.membership.plugin`: every rule module registers one
:class:`LintRule` — its id, checker callable and documentation — at import time,
and the engine/CLI/docs work against the registry, so adding a rule is a
registration, not an engine edit:

>>> from repro.lint.registry import get_rule
>>> get_rule("global-rng").description
'randomness must flow through injected, seed-derived random.Random streams'

The built-in rule modules are imported lazily by :func:`load_builtin_rules`
(called by the engine and the CLI), keeping ``import repro.lint`` cheap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.lint.context import FileContext, LintError
from repro.lint.findings import Finding

#: Modules whose import registers the built-in rules (order fixes registry order).
_BUILTIN_MODULES = (
    "repro.lint.rules.rng",
    "repro.lint.rules.canonical",
    "repro.lint.rules.wallclock",
    "repro.lint.rules.capability",
    "repro.lint.rules.slots",
    "repro.lint.rules.dataflow_rng",
    "repro.lint.rules.vectorization",
)


@dataclass(frozen=True)
class LintRule:
    """One registered determinism rule.

    Attributes
    ----------
    id:
        Registry key, also the spelling in suppression comments
        (``# repro-lint: allow[<id>]``), allowlist entries and ``--rules``.
    check:
        ``check(context)`` → findings for one parsed file.
    description:
        One line for ``repro lint --list-rules`` and the docs.
    rationale:
        Which repo invariant the rule protects (PR reference); rendered in
        ``docs/determinism_lint.md``.
    """

    id: str
    check: Callable[[FileContext], List[Finding]]
    description: str
    rationale: str = ""


#: The global rule registry (filled by the rule modules at import time).
_REGISTRY: Dict[str, LintRule] = {}


def register_rule(
    id: str,
    check: Callable[[FileContext], List[Finding]],
    description: str,
    rationale: str = "",
    replace: bool = False,
) -> LintRule:
    """Register a rule; called once at the bottom of each rule module."""
    if id in _REGISTRY and not replace:
        raise LintError(f"lint rule {id!r} already registered")
    rule = LintRule(id=id, check=check, description=description, rationale=rationale)
    _REGISTRY[id] = rule
    return rule


def unregister_rule(id: str) -> None:
    """Remove a rule (tests only)."""
    _REGISTRY.pop(id, None)


def load_builtin_rules() -> None:
    """Import the built-in rule modules so their registrations run (idempotent)."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_rule(id: str) -> LintRule:
    """Look up a rule by id, loading the built-ins on first use."""
    if id not in _REGISTRY:
        load_builtin_rules()
    try:
        return _REGISTRY[id]
    except KeyError:
        raise LintError(f"unknown lint rule {id!r}; registered: {rule_ids()}") from None


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule (built-ins included)."""
    load_builtin_rules()
    return sorted(_REGISTRY)


def all_rules() -> List[LintRule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[id] for id in rule_ids()]
