"""Well-known port numbers and protocol-wide default parameters.

Keeping these in one module means experiments, tests and examples never disagree about
which port a protocol listens on.
"""

#: Port of the bootstrap server (one per system, on a public host).
BOOTSTRAP_PORT = 2000

#: Port on which every node's bootstrap client listens for responses.
BOOTSTRAP_CLIENT_PORT = 2001

#: Port of the NAT-type identification *server* side (runs on public nodes).
NATID_SERVER_PORT = 3000

#: Port of the NAT-type identification *client* side (runs on the node under test).
NATID_CLIENT_PORT = 3001

#: Port used by every peer-sampling protocol (Croupier, Cyclon, Nylon, Gozar, ARRG).
PSS_PORT = 7000

#: The paper's gossip round period, in milliseconds (Section VII-A).
DEFAULT_ROUND_MS = 1000.0

#: The paper's partial view size (Section VII-A).
DEFAULT_VIEW_SIZE = 10

#: The paper's shuffle (view-exchange subset) size (Section VII-A).
DEFAULT_SHUFFLE_SIZE = 5

#: Default public/private ratio used by most experiments (Section VII-A).
DEFAULT_PUBLIC_RATIO = 0.2
