"""Croupier: NAT-aware peer sampling without relaying — paper reproduction.

This package is a complete, self-contained reproduction of the system described in
*"Shuffling with a Croupier: Nat-Aware Peer-Sampling"* (Dowling & Payberah, ICDCS 2012).
It contains:

``repro.simulator``
    A Kompics-like discrete-event simulator: components, channels, timers and a
    NAT-aware datagram network model with configurable latency and loss.

``repro.net``
    Address and endpoint abstractions (public vs. private IPs, node identities).

``repro.nat``
    An emulation of NAT gateways: mapping, filtering and allocation policies, UDP
    mapping timeouts, UPnP IGD port mapping, firewalls, plus the hole-punching and
    relaying traversal primitives used by the baseline protocols.

``repro.natid``
    The paper's minimal distributed NAT-type identification protocol (Algorithm 1).

``repro.membership``
    Shared peer-sampling machinery (descriptors, bounded views, selection/merge
    policies) and the baseline protocols Cyclon, Nylon, Gozar and ARRG.

``repro.core``
    Croupier itself: split public/private views, croupier shuffling (Algorithm 2) and
    the distributed public/private ratio estimator and sampler (Algorithm 3).

``repro.workload``
    Scenario builders: Poisson joins, steady-state churn, catastrophic failure and
    dynamic public/private ratio schedules.

``repro.metrics``
    Observation utilities: estimation error, overlay graph statistics (in-degree,
    path length, clustering coefficient), partition size and traffic overhead.

``repro.experiments``
    One module per figure of the paper's evaluation, each of which regenerates the
    corresponding series.
"""

from repro.version import __version__

__all__ = ["__version__"]
