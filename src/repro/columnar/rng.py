"""Counter-keyed deterministic draws for the batched columnar shuffle pass.

The original per-node shuffle loop consumed one injected :class:`random.Random`
in ascending initiator-row order; vectorizing the pass makes that order-coupled
contract impossible to keep (a batched phase draws for every row at once, and
``random.Random`` has no batch API). The engine therefore keys every draw by
**position instead of order**: a draw's value is a pure function of

``(engine seed, round, phase tag, key)``

where the key is a row index (one draw per node) or ``row * V + slot`` (one draw
per view slot). Both backends evaluate the same splitmix64-style integer mix —
numpy on ``uint64`` arrays with silent wraparound, pure Python with explicit
``& MASK64`` — so the draws are bit-identical whether or not numpy is installed,
and independent of any evaluation order. The engine's 64-bit seed is taken from
its injected ``random.Random`` once, at construction, which keeps the repo-wide
"one injected RNG per component" custody rule intact.

Uniforms use the standard 53-bit construction ``(h >> 11) * 2**-53``; the
``uint64 -> float64`` conversion is exact below 2**53, so the numpy and scalar
floats match bit for bit.
"""

from __future__ import annotations

MASK64 = (1 << 64) - 1

#: Weyl-sequence increment (splitmix64's golden-ratio constant).
GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB

#: Phase tags: every batched sub-phase draws from its own stream so no two
#: phases ever share a (round, key) cell.
TAG_TIE = 1          # partner-selection tie-break, keyed by row
TAG_REQ_PUB = 2      # request subset of the primary view, keyed by row*V+slot
TAG_REQ_PRIV = 3     # request subset of the private view (Croupier)
TAG_REPLY_PUB = 4    # reply subset of the partner's primary view, keyed by initiator
TAG_REPLY_PRIV = 5   # reply subset of the partner's private view (Croupier)
TAG_LOSS_REQ = 6     # request loss uniform, keyed by initiator row
TAG_LOSS_RESP = 7    # response loss uniform, keyed by initiator row
TAG_RELAY_REQ = 8    # Gozar: relay-parent choice for the request leg
TAG_RELAY_RESP = 9   # Gozar: relay-parent choice for the response leg
TAG_PARENT = 10      # Gozar: parent-recruitment candidate ranking


def mix64(value: int) -> int:
    """The splitmix64 finalizer over a masked 64-bit integer."""
    value &= MASK64
    value ^= value >> 30
    value = (value * _MIX1) & MASK64
    value ^= value >> 27
    value = (value * _MIX2) & MASK64
    return value ^ (value >> 31)


def stream(seed: int, round_index: int, tag: int) -> int:
    """The per-(round, phase) stream base all keyed draws of that phase add onto."""
    return mix64(seed ^ mix64(((round_index * GOLDEN) ^ tag) & MASK64))


def draw(base: int, key: int) -> int:
    """One 64-bit value at ``key`` on the stream ``base`` (scalar path)."""
    return mix64((base + key * GOLDEN) & MASK64)


def draw_uniform(base: int, key: int) -> float:
    """One float in [0, 1) at ``key`` (bit-identical to the numpy path)."""
    return (draw(base, key) >> 11) * 2.0 ** -53


def draws_np(np, base: int, keys):
    """Vector of 64-bit values for a ``uint64`` key array (numpy path).

    All arithmetic stays on uint64 *arrays* (scalar uint64 ops can warn on
    overflow; array ops wrap silently), mirroring :func:`draw` exactly.
    """
    x = np.uint64(base) + keys * np.uint64(GOLDEN)
    x = x ^ (x >> np.uint64(30))
    x = x * np.uint64(_MIX1)
    x = x ^ (x >> np.uint64(27))
    x = x * np.uint64(_MIX2)
    return x ^ (x >> np.uint64(31))


def uniforms_np(np, base: int, keys):
    """Vector of floats in [0, 1) — same bits as :func:`draw_uniform` per key."""
    return (draws_np(np, base, keys) >> np.uint64(11)).astype(np.float64) * 2.0 ** -53
