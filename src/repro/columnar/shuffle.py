"""The batched shuffle pass: one round of gossip exchanges as columnwise phases.

This module is the vectorized replacement for the engine's old per-initiator
Python loop. A round's exchanges are decomposed into sub-phases that each touch
every exchange at once:

A. **Partner selection** — per live row, the oldest occupied primary-view slot
   (argmax over effective ages), tie-broken by a position-keyed draw; the
   selected slot is cleared.
B. **Request subsets** — per view, every slot gets a keyed draw (ineligible
   slots get the ``MASK64`` sentinel); slots sort by ``(key, slot)`` and the
   first ``min(want, eligible)`` are taken. The sender's own descriptor (age 0)
   is appended to its own-class subset.
C. **Delivery filtering** — wire sizes and tx are accounted for every request,
   then drop masks apply in fixed precedence: ``lost_in_transit`` →
   ``partitioned`` → ``dead_partner`` → unreachable-partner (``nat_filtered``
   for croupier/cyclon; ``no_relay_parent`` for Gozar private partners with no
   live parent; ``broken_chain`` for Nylon private partners whose
   learned-from RVP is gone). Gozar relays and Nylon hole-punch control packets
   account their extra traffic here.
D. **Estimator counters** — delivered requests bump the partner's (Cu, Cv)
   current-round counters by initiator class (croupier only).
E–G. **Partner handling** — delivered exchanges, ordered by ``(partner,
   initiator)``: the reply subset is drawn from the partner's *current* view
   (keyed by ``initiator * V + slot``), the request is merged in, and the
   response estimate bundle is built from the post-ingest cache — the object
   protocol's request-handler order. The numpy path executes the sequence as
   *waves* (one exchange per partner per wave, so batched rows are distinct);
   within a wave no two exchanges share a partner, so wave order equals the
   fallback's sequential order. Replies must not come from a pre-round
   snapshot: a popular partner would send every requester the same entries,
   which degenerates the overlay at scale.
H. **Responses** — ascending initiator order: size/tx accounting, response
   loss keyed by the partner's class, Gozar relay for private initiators, then
   one batched merge into the (all-distinct) initiator rows.

Every random decision is a position-keyed counter draw (see
:mod:`repro.columnar.rng`), so the numpy and pure-array paths are bit-identical
by construction, independent of evaluation order.

The merge rule (both paths): snapshot the pre-merge view; each received entry
(skipping negatives and the row's own id) first tries to *refresh* the slot
whose snapshot id matches (age becomes the min); unmatched entries are placed,
in received order, into ascending snapshot-empty slots, then over sent entries
still at their snapshot slot (in sent order); leftovers are dropped. All
refreshes land before any placement, so an eviction overwrites a refresh —
matching the object backend's sequential ``updateView``.

Gozar and Nylon NAT maintenance (:func:`maintain_parents`,
:func:`send_keepalives`) runs as a single shared scalar pass — it is O(private
rows), far off the hot path, and trivially backend-identical. Maintenance
traffic ignores loss and partitions (documented delta).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.columnar import backend
from repro.columnar import rng as crng
from repro.columnar.backend import as_np

#: Wire-size accounting constants (bytes). Only relative magnitudes matter for
#: the Figure 7(a)-style per-class load comparison; they approximate the object
#: backend's descriptor (address + age), estimate entry, and control sizes.
DESCRIPTOR_BYTES = 8
ESTIMATE_BYTES = 5
HEADER_BYTES = 12
CONTROL_BYTES = 16
PARENT_ADDR_BYTES = 6

#: Drop-reason fold order: both backends accumulate counts locally during the
#: pass and fold them into ``engine.drops`` in this fixed order, so the dict's
#: insertion order (and therefore canonical JSON) is backend-independent.
DROP_REASONS = (
    "lost_in_transit",
    "partitioned",
    "dead_partner",
    "nat_filtered",
    "no_relay_parent",
    "broken_chain",
)


def run_shuffle_round(eng) -> None:
    """Execute the current round's full shuffle pass on ``eng``."""
    if eng.use_numpy:
        _shuffle_numpy(eng)
    else:
        _shuffle_fallback(eng)


def _fold_drops(eng, local: Dict[str, int]) -> None:
    for reason in DROP_REASONS:
        count = local[reason]
        if count:
            eng.drops[reason] = eng.drops.get(reason, 0) + count


# ---------------------------------------------------------------------------
# pure-array fallback
# ---------------------------------------------------------------------------


def _subset_fb(
    eng, vid, vage, view_row: int, key_row: int, stream_base: int,
    want: int, exclude: int, add_self: bool,
) -> Tuple[List[int], List[int], List[int]]:
    """Keyed subset of one row's view: (slots, ids, ages) in (key, slot) order.

    Ineligible slots participate with the ``MASK64`` sentinel key (identical to
    the numpy path, including the astronomically-unlikely key collision)."""
    V = eng.V
    base = view_row * V
    keyed = []
    eligible = 0
    for slot in range(V):
        nid = vid[base + slot]
        if nid >= 0 and nid != exclude:
            keyed.append((crng.draw(stream_base, key_row * V + slot), slot))
            eligible += 1
        else:
            keyed.append((crng.MASK64, slot))
    keyed.sort()
    count = min(want, eligible) if want > 0 else 0
    slots = [keyed[j][1] for j in range(count)]
    ids = [vid[base + s] for s in slots]
    ages = [vage[base + s] for s in slots]
    if add_self:
        slots.append(-1)
        ids.append(view_row)
        ages.append(0)
    return slots, ids, ages


def _merge_row(
    eng, vid, vage, vaux, row: int,
    rec_ids, rec_ages, aux_value: int,
    sent_ids, sent_slots,
) -> None:
    """The batched-merge rule applied to one row (see the module docstring)."""
    V = eng.V
    base = row * V
    snap = vid[base : base + V]
    matched = [False] * len(rec_ids)
    for j, nid in enumerate(rec_ids):
        if nid < 0 or nid == row:
            matched[j] = True  # skipped entries are never placed either
            continue
        for s in range(V):
            if snap[s] == nid:
                if rec_ages[j] < vage[base + s]:
                    vage[base + s] = rec_ages[j]
                if vaux is not None:
                    vaux[base + s] = aux_value
                matched[j] = True
                break
    targets = [s for s in range(V) if snap[s] < 0]
    if sent_ids:
        for t in range(len(sent_ids)):
            ss = sent_slots[t]
            if ss >= 0 and sent_ids[t] >= 0 and snap[ss] == sent_ids[t]:
                targets.append(ss)
    ti = 0
    for j, nid in enumerate(rec_ids):
        if matched[j]:
            continue
        if ti >= len(targets):
            break  # no room and nothing evictable left: entry dropped
        s = targets[ti]
        ti += 1
        vid[base + s] = nid
        vage[base + s] = rec_ages[j]
        if vaux is not None:
            vaux[base + s] = aux_value


def _shuffle_fallback(eng) -> None:
    V, K = eng.V, eng.K
    n = eng._rows
    rnd = eng.round
    seed = eng.hash_seed
    proto = eng.protocol
    estimating = eng.estimating
    gozar = proto == "gozar"
    nylon = proto == "nylon"
    alive, is_public = eng.alive, eng.is_public
    pub_id, pub_age = eng.pub_id, eng.pub_age
    aux = eng.learned_from if nylon else None
    if estimating:
        priv_id, priv_age = eng.priv_id, eng.priv_age
    P = eng.P if gozar else 0
    parent_id = eng.parent_id if gozar else None
    tx, rx = eng.tx_bytes, eng.rx_bytes
    loss_pub, loss_priv = eng.loss_public, eng.loss_private
    loss_active = loss_pub > 0.0 or loss_priv > 0.0
    partition = eng._partition_active
    isolated = eng.isolated
    drops = dict.fromkeys(DROP_REASONS, 0)

    # --- A: partner selection (oldest slot, keyed tie-break), slot cleared
    base_tie = crng.stream(seed, rnd, crng.TAG_TIE)
    inits: List[Tuple[int, int, int]] = []
    for i in range(1, n):
        if not alive[i]:
            continue
        base = i * V
        best = -1
        ties: List[int] = []
        for slot in range(V):
            if pub_id[base + slot] < 0:
                continue
            age = pub_age[base + slot]
            if age > best:
                best = age
                ties = [slot]
            elif age == best:
                ties.append(slot)
        if not ties:
            continue  # empty view: round skipped (bootstrap starvation/churn)
        slot = ties[crng.draw(base_tie, i) % len(ties)]
        partner = pub_id[base + slot]
        rvp = aux[base + slot] if aux is not None else -1
        pub_id[base + slot] = -1
        pub_age[base + slot] = 0
        if aux is not None:
            aux[base + slot] = -1
        inits.append((i, partner, rvp))

    # --- B: request subsets from the post-selection views
    base_req_pub = crng.stream(seed, rnd, crng.TAG_REQ_PUB)
    base_req_priv = crng.stream(seed, rnd, crng.TAG_REQ_PRIV) if estimating else 0
    requests = []
    for i, _partner, _rvp in inits:
        i_public = is_public[i] != 0
        if estimating:
            if i_public:
                req_pub = _subset_fb(eng, pub_id, pub_age, i, i, base_req_pub,
                                     K - 1, -1, True)
                req_priv = _subset_fb(eng, priv_id, priv_age, i, i, base_req_priv,
                                      K, -1, False)
            else:
                req_pub = _subset_fb(eng, pub_id, pub_age, i, i, base_req_pub,
                                     K, -1, False)
                req_priv = _subset_fb(eng, priv_id, priv_age, i, i, base_req_priv,
                                      K - 1, -1, True)
        else:
            req_pub = _subset_fb(eng, pub_id, pub_age, i, i, base_req_pub,
                                 K - 1, -1, True)
            req_priv = None
        requests.append((req_pub, req_priv))

    # --- C: delivery filtering (+ request-size accounting)
    base_loss_req = crng.stream(seed, rnd, crng.TAG_LOSS_REQ)
    base_relay_req = crng.stream(seed, rnd, crng.TAG_RELAY_REQ) if gozar else 0
    delivered = []
    for (i, partner, rvp), (req_pub, req_priv) in zip(inits, requests):
        n_desc = len(req_pub[1]) + (len(req_priv[1]) if req_priv is not None else 0)
        if estimating:
            bundle_i = eng._estimate_bundle(i)
            size = HEADER_BYTES + n_desc * DESCRIPTOR_BYTES + len(bundle_i) * ESTIMATE_BYTES
        else:
            bundle_i = None
            size = HEADER_BYTES + n_desc * DESCRIPTOR_BYTES
        if gozar:
            npriv = sum(1 for d in req_pub[1] if d >= 0 and not is_public[d])
            size += npriv * P * PARENT_ADDR_BYTES
        eng.packets_sent += 1
        tx[i] += size
        i_public = is_public[i] != 0
        if loss_active and crng.draw_uniform(base_loss_req, i) < (
            loss_pub if i_public else loss_priv
        ):
            drops["lost_in_transit"] += 1
            continue
        if partition and isolated[i] != isolated[partner]:
            drops["partitioned"] += 1
            continue
        if not alive[partner]:
            drops["dead_partner"] += 1
            continue
        if not is_public[partner]:
            if gozar:
                pb = partner * P
                live_par = [s for s in range(P)
                            if parent_id[pb + s] >= 0 and alive[parent_id[pb + s]]]
                if not live_par:
                    drops["no_relay_parent"] += 1
                    continue
                relay = parent_id[pb + live_par[crng.draw(base_relay_req, i) % len(live_par)]]
                rx[relay] += size
                tx[relay] += size
                eng.packets_sent += 1
            elif nylon:
                if rvp < 0 or not alive[rvp]:
                    drops["broken_chain"] += 1
                    continue
                # hole punch: i -> rvp -> partner, then partner pings i
                tx[i] += CONTROL_BYTES
                rx[rvp] += CONTROL_BYTES
                tx[rvp] += CONTROL_BYTES
                rx[partner] += CONTROL_BYTES
                tx[partner] += CONTROL_BYTES
                rx[i] += CONTROL_BYTES
                eng.packets_sent += 3
            else:
                drops["nat_filtered"] += 1
                continue
        rx[partner] += size
        delivered.append((i, partner, req_pub, req_priv, bundle_i))

    # --- D: estimator counters by initiator class
    if estimating:
        cur_cu, cur_cv = eng.cur_cu, eng.cur_cv
        for i, partner, _rp, _rq, _b in delivered:
            if is_public[i]:
                cur_cu[partner] += 1
            else:
                cur_cv[partner] += 1

    # --- E+F+G: per-exchange partner handling in (partner, initiator) order —
    # the reply subset is drawn from the partner's *current* view (reflecting
    # this round's earlier request merges into it), then the request is merged
    # and the response bundle built from the post-ingest estimate cache. This
    # is exactly the object protocol's request-handler order; drawing all
    # replies from a pre-round snapshot instead degenerates the overlay at
    # scale (a popular partner would send every requester the same entries).
    base_rep_pub = crng.stream(seed, rnd, crng.TAG_REPLY_PUB)
    base_rep_priv = crng.stream(seed, rnd, crng.TAG_REPLY_PRIV) if estimating else 0
    order = sorted(range(len(delivered)), key=lambda x: (delivered[x][1], delivered[x][0]))
    replies: List[Optional[tuple]] = [None] * len(delivered)
    bundles: List[Optional[list]] = [None] * len(delivered)
    for x in order:
        i, partner, req_pub, req_priv, bundle_i = delivered[x]
        reply_pub = _subset_fb(eng, pub_id, pub_age, partner, i, base_rep_pub,
                               K, i, False)
        reply_priv = (
            _subset_fb(eng, priv_id, priv_age, partner, i, base_rep_priv, K, i, False)
            if estimating else None
        )
        replies[x] = (reply_pub, reply_priv)
        _merge_row(eng, pub_id, pub_age, aux, partner,
                   req_pub[1], req_pub[2], i, reply_pub[1], reply_pub[0])
        if estimating:
            _merge_row(eng, priv_id, priv_age, None, partner,
                       req_priv[1], req_priv[2], i, reply_priv[1], reply_priv[0])
            eng._ingest_estimates(partner, bundle_i)
            bundles[x] = eng._estimate_bundle(partner)

    # --- H: responses, ascending initiator order
    base_loss_resp = crng.stream(seed, rnd, crng.TAG_LOSS_RESP)
    base_relay_resp = crng.stream(seed, rnd, crng.TAG_RELAY_RESP) if gozar else 0
    for x, (i, partner, req_pub, req_priv, _b) in enumerate(delivered):
        reply_pub, reply_priv = replies[x]
        n_desc = len(reply_pub[1]) + (len(reply_priv[1]) if reply_priv is not None else 0)
        size = HEADER_BYTES + n_desc * DESCRIPTOR_BYTES
        if estimating:
            size += len(bundles[x]) * ESTIMATE_BYTES
        if gozar:
            npriv = sum(1 for d in reply_pub[1] if d >= 0 and not is_public[d])
            size += npriv * P * PARENT_ADDR_BYTES
        eng.packets_sent += 1
        tx[partner] += size
        p_public = is_public[partner] != 0
        if loss_active and crng.draw_uniform(base_loss_resp, i) < (
            loss_pub if p_public else loss_priv
        ):
            drops["lost_in_transit"] += 1
            continue
        if gozar and not is_public[i]:
            ib = i * P
            live_par = [s for s in range(P)
                        if parent_id[ib + s] >= 0 and alive[parent_id[ib + s]]]
            if not live_par:
                drops["no_relay_parent"] += 1
                continue
            relay = parent_id[ib + live_par[crng.draw(base_relay_resp, i) % len(live_par)]]
            rx[relay] += size
            tx[relay] += size
            eng.packets_sent += 1
        rx[i] += size
        _merge_row(eng, pub_id, pub_age, aux, i,
                   reply_pub[1], reply_pub[2], partner, req_pub[1], req_pub[0])
        if estimating:
            _merge_row(eng, priv_id, priv_age, None, i,
                       reply_priv[1], reply_priv[2], partner, req_priv[1], req_priv[0])
            eng._ingest_estimates(i, bundles[x])

    _fold_drops(eng, drops)


# ---------------------------------------------------------------------------
# numpy fast path
# ---------------------------------------------------------------------------


def _subsets_np(np, view_ids, view_ages, slotkeys, stream_base, want,
                exclude, self_mask, self_ids, width):
    """Batched keyed-subset selection over gathered ``(M, V)`` view snapshots.

    Mirrors :func:`_subset_fb` per row: sentinel keys for ineligible slots, a
    stable argsort (== (key, slot) order), first ``min(want, eligible)`` taken,
    then the optional self descriptor appended at column ``cnt``."""
    elig = view_ids >= 0
    if exclude is not None:
        elig &= view_ids != exclude[:, None]
    keys = crng.draws_np(np, stream_base, slotkeys)
    keys = np.where(elig, keys, np.uint64(crng.MASK64))
    order = np.argsort(keys, axis=1, kind="stable")
    cnt = np.minimum(want, elig.sum(axis=1))
    take = order[:, :width]
    valid = np.arange(width)[None, :] < cnt[:, None]
    slots = np.where(valid, take, -1)
    ids = np.where(valid, np.take_along_axis(view_ids, take, axis=1), -1)
    ages = np.where(valid, np.take_along_axis(view_ages, take, axis=1), 0)
    if self_mask is not None:
        rows = np.nonzero(self_mask)[0]
        ids[rows, cnt[rows]] = self_ids[rows]
        ages[rows, cnt[rows]] = 0
        cnt = cnt + self_mask
    return slots, ids, ages, cnt


def _batch_merge_np(np, ids2d, ages2d, aux2d, rows,
                    rec_ids, rec_ages, rec_aux, sent_ids, sent_slots):
    """Apply the merge rule to many *distinct* rows at once.

    ``rows``: (M,) distinct row indices; ``rec_*``: (M, R) received entries
    (``rec_aux``: (M,) per-row aux value, or None); ``sent_*``: (M, S)."""
    M, R = rec_ids.shape
    V = ids2d.shape[1]
    snap = ids2d[rows]  # gather == pre-merge snapshot copy
    valid = (rec_ids >= 0) & (rec_ids != rows[:, None])
    matched = np.full((M, R), -1, dtype=np.int64)
    for s in range(V):
        col = snap[:, s][:, None]
        hit = valid & (matched < 0) & (col >= 0) & (rec_ids == col)
        matched[hit] = s
    for j in range(R):
        mj = matched[:, j]
        m = mj >= 0
        if not m.any():
            continue
        rr = rows[m]
        ss = mj[m]
        ages2d[rr, ss] = np.minimum(ages2d[rr, ss], rec_ages[m, j])
        if aux2d is not None:
            aux2d[rr, ss] = rec_aux[m]
    empty = snap < 0
    ecum = empty.cumsum(axis=1)
    n_empty = ecum[:, -1]
    S = sent_ids.shape[1] if sent_ids is not None else 0
    targ = np.full((M, V + S), -1, dtype=np.int64)
    for s in range(V):
        m = empty[:, s]
        targ[m, ecum[m, s] - 1] = s
    ntarg = n_empty
    if S:
        ss_clip = np.where(sent_slots >= 0, sent_slots, 0)
        still = (
            (sent_ids >= 0)
            & (sent_slots >= 0)
            & (np.take_along_axis(snap, ss_clip, axis=1) == sent_ids)
        )
        vcum = still.cumsum(axis=1)
        for t in range(S):
            m = still[:, t]
            targ[m, (n_empty + vcum[:, t] - 1)[m]] = sent_slots[m, t]
        ntarg = n_empty + vcum[:, -1]
    unmatched = valid & (matched < 0)
    ucum = unmatched.cumsum(axis=1)
    for j in range(R):
        m = unmatched[:, j] & (ucum[:, j] <= ntarg)
        if not m.any():
            continue
        rowsm = np.nonzero(m)[0]
        tt = targ[rowsm, ucum[rowsm, j] - 1]
        rr = rows[rowsm]
        ids2d[rr, tt] = rec_ids[rowsm, j]
        ages2d[rr, tt] = rec_ages[rowsm, j]
        if aux2d is not None:
            aux2d[rr, tt] = rec_aux[rowsm]


def _bundles_np(eng, np, rows):
    """Estimate bundles for ``rows``: (origs, vals, borns, valid) as (M, 1+FWD)
    arrays, in :meth:`ColumnarEngine._estimate_bundle` order (local first, then
    the FWD most recent ring entries, freshness-masked)."""
    C, G, FWD = eng.C, eng.G, eng.FWD
    M = rows.size
    B = 1 + FWD
    origs = np.full((M, B), -1, dtype=np.int64)
    vals = np.zeros((M, B))
    borns = np.zeros((M, B), dtype=np.int64)
    valid = np.zeros((M, B), dtype=bool)
    loc = as_np(eng.loc_est)[rows]
    origs[:, 0] = rows
    vals[:, 0] = loc
    borns[:, 0] = eng.round
    valid[:, 0] = loc >= 0.0
    if FWD:
        pos = as_np(eng.est_pos)[rows].astype(np.int64)
        eo = as_np(eng.est_origin)
        ev = as_np(eng.est_val)
        eb = as_np(eng.est_born)
        born_min = eng.round - G
        for b in range(1, FWD + 1):
            flat = rows * C + (pos - b) % C
            bb = eb[flat]
            origs[:, b] = eo[flat]
            vals[:, b] = ev[flat]
            borns[:, b] = bb
            valid[:, b] = bb >= born_min
    return origs, vals, borns, valid


def _batch_ingest_np(eng, np, rows, origs, vals, borns, valid):
    """Origin-keyed bundle merge into many *distinct* rows (bit-identical to
    the sequential :meth:`ColumnarEngine._ingest_estimates`): a matching origin
    is refreshed only by a strictly larger born; unseen origins take the ring
    cursor slot. Bundle entries are applied left to right so an insert is
    visible to the next entry of the same bundle (each iteration re-reads the
    ring through fresh fancy-index gathers)."""
    C = eng.C
    pos_np = as_np(eng.est_pos)
    eo = as_np(eng.est_origin)
    ev = as_np(eng.est_val)
    eb = as_np(eng.est_born)
    base_all = rows * C
    for b in range(valid.shape[1]):
        m = valid[:, b]
        if not m.any():
            continue
        base = base_all[m]
        o = origs[m, b]
        v = vals[m, b]
        bo = borns[m, b]
        match = np.full(base.size, -1, dtype=np.int64)
        for c in range(C - 1, -1, -1):
            match = np.where(eo[base + c] == o, c, match)
        found = match >= 0
        if found.any():
            fm = np.nonzero(found)[0]
            flat = base[fm] + match[fm]
            fresher = bo[fm] > eb[flat]
            if fresher.any():
                fl = flat[fresher]
                ev[fl] = v[fm][fresher]
                eb[fl] = bo[fm][fresher]
        ins = ~found
        if ins.any():
            im = np.nonzero(ins)[0]
            ri = rows[m][im]
            p = pos_np[ri].astype(np.int64)
            flat = ri * C + p
            eo[flat] = o[im]
            ev[flat] = v[im]
            eb[flat] = bo[im]
            pos_np[ri] = ((p + 1) % C).astype(pos_np.dtype)


def _private_desc_count_np(np, pub, ids):
    """Per row, how many sent descriptors name a private node (Gozar parent-list
    payload accounting)."""
    return ((ids >= 0) & (pub[np.clip(ids, 0, None)] == 0)).sum(axis=1)


def _shuffle_numpy(eng) -> None:
    np = backend.np
    V, K = eng.V, eng.K
    n = eng._rows
    rnd = eng.round
    seed = eng.hash_seed
    proto = eng.protocol
    estimating = eng.estimating
    gozar = proto == "gozar"
    nylon = proto == "nylon"
    alive = as_np(eng.alive)[:n]
    pub = as_np(eng.is_public)[:n]
    ids2d = as_np(eng.pub_id)[: n * V].reshape(n, V)
    ages2d = as_np(eng.pub_age)[: n * V].reshape(n, V)
    aux2d = as_np(eng.learned_from)[: n * V].reshape(n, V) if nylon else None
    tx = as_np(eng.tx_bytes)
    rx = as_np(eng.rx_bytes)
    loss_pub, loss_priv = eng.loss_public, eng.loss_private
    loss_active = loss_pub > 0.0 or loss_priv > 0.0
    drops = dict.fromkeys(DROP_REASONS, 0)

    # --- A: partner selection (oldest slot, keyed tie-break), slot cleared
    occ = ids2d >= 0
    age_eff = np.where(occ, ages2d, -1)
    best = age_eff.max(axis=1)
    ties = (age_eff == best[:, None]) & occ
    tie_cnt = ties.sum(axis=1)
    base_tie = crng.stream(seed, rnd, crng.TAG_TIE)
    pick = (
        crng.draws_np(np, base_tie, np.arange(n, dtype=np.uint64))
        % np.maximum(tie_cnt, 1).astype(np.uint64)
    ).astype(np.int64)
    sel = np.argmax(ties.cumsum(axis=1) == (pick + 1)[:, None], axis=1)
    init = np.nonzero((alive != 0) & (tie_cnt > 0))[0]
    if init.size == 0:
        _fold_drops(eng, drops)
        return
    sslot = sel[init]
    partner = ids2d[init, sslot]
    rvp = aux2d[init, sslot] if nylon else None
    ids2d[init, sslot] = -1
    ages2d[init, sslot] = 0
    if nylon:
        aux2d[init, sslot] = -1

    M = init.size
    i_pub = pub[init] != 0

    # --- B: request subsets from the post-selection views
    slotkeys = (
        init[:, None].astype(np.uint64) * np.uint64(V)
        + np.arange(V, dtype=np.uint64)[None, :]
    )
    base_req_pub = crng.stream(seed, rnd, crng.TAG_REQ_PUB)
    if estimating:
        pids2d = as_np(eng.priv_id)[: n * V].reshape(n, V)
        pages2d = as_np(eng.priv_age)[: n * V].reshape(n, V)
        rp = _subsets_np(np, ids2d[init], ages2d[init], slotkeys, base_req_pub,
                         np.where(i_pub, K - 1, K), None, i_pub, init, K)
        base_req_priv = crng.stream(seed, rnd, crng.TAG_REQ_PRIV)
        rq = _subsets_np(np, pids2d[init], pages2d[init], slotkeys, base_req_priv,
                         np.where(i_pub, K, K - 1), None, ~i_pub, init, K)
        rp_slots, rp_ids, rp_ages, rp_cnt = rp
        rq_slots, rq_ids, rq_ages, rq_cnt = rq
        n_desc = rp_cnt + rq_cnt
    else:
        rp = _subsets_np(np, ids2d[init], ages2d[init], slotkeys, base_req_pub,
                         np.full(M, K - 1, dtype=np.int64), None,
                         np.ones(M, dtype=bool), init, K)
        rp_slots, rp_ids, rp_ages, rp_cnt = rp
        n_desc = rp_cnt

    # --- C: delivery filtering (+ request-size accounting)
    if estimating:
        bi_origs, bi_vals, bi_borns, bi_valid = _bundles_np(eng, np, init)
        size = (HEADER_BYTES + n_desc * DESCRIPTOR_BYTES
                + bi_valid.sum(axis=1) * ESTIMATE_BYTES)
    else:
        size = HEADER_BYTES + n_desc * DESCRIPTOR_BYTES
    if gozar:
        P = eng.P
        par2d = as_np(eng.parent_id)[: n * P].reshape(n, P)
        size = size + _private_desc_count_np(np, pub, rp_ids) * (P * PARENT_ADDR_BYTES)
    eng.packets_sent += M
    tx[init] += size  # initiator rows are distinct
    remaining = np.ones(M, dtype=bool)
    if loss_active:
        u = crng.uniforms_np(
            np, crng.stream(seed, rnd, crng.TAG_LOSS_REQ), init.astype(np.uint64)
        )
        lost = u < np.where(i_pub, loss_pub, loss_priv)
        drops["lost_in_transit"] += int(lost.sum())
        remaining &= ~lost
    if eng._partition_active:
        iso = as_np(eng.isolated)[:n]
        parted = remaining & (iso[init] != iso[partner])
        drops["partitioned"] += int(parted.sum())
        remaining &= ~parted
    deadp = remaining & (alive[partner] == 0)
    drops["dead_partner"] += int(deadp.sum())
    remaining &= ~deadp
    priv_partner = remaining & (pub[partner] == 0)
    if gozar:
        pp = par2d[partner]
        pp_live = (pp >= 0) & (alive[np.clip(pp, 0, None)] != 0)
        pp_cnt = pp_live.sum(axis=1)
        norelay = priv_partner & (pp_cnt == 0)
        drops["no_relay_parent"] += int(norelay.sum())
        remaining &= ~norelay
        relaying = priv_partner & ~norelay
        if relaying.any():
            k = (
                crng.draws_np(np, crng.stream(seed, rnd, crng.TAG_RELAY_REQ),
                              init.astype(np.uint64))
                % np.maximum(pp_cnt, 1).astype(np.uint64)
            ).astype(np.int64)
            rslot = np.argmax(pp_live.cumsum(axis=1) == (k + 1)[:, None], axis=1)
            relay = pp[np.arange(M), rslot][relaying]
            np.add.at(rx, relay, size[relaying])
            np.add.at(tx, relay, size[relaying])
            eng.packets_sent += int(relaying.sum())
    elif nylon:
        broken = priv_partner & ((rvp < 0) | (alive[np.clip(rvp, 0, None)] == 0))
        drops["broken_chain"] += int(broken.sum())
        remaining &= ~broken
        punch = priv_partner & ~broken
        if punch.any():
            pr = np.nonzero(punch)[0]
            tx[init[pr]] += CONTROL_BYTES
            np.add.at(rx, rvp[pr], CONTROL_BYTES)
            np.add.at(tx, rvp[pr], CONTROL_BYTES)
            np.add.at(rx, partner[pr], CONTROL_BYTES)
            np.add.at(tx, partner[pr], CONTROL_BYTES)
            rx[init[pr]] += CONTROL_BYTES
            eng.packets_sent += 3 * int(punch.sum())
    else:
        drops["nat_filtered"] += int(priv_partner.sum())
        remaining &= ~priv_partner
    np.add.at(rx, partner[remaining], size[remaining])

    # --- D: estimator counters by initiator class
    if estimating:
        cu = as_np(eng.cur_cu)[:n]
        cv = as_np(eng.cur_cv)[:n]
        cu += np.bincount(partner[remaining & i_pub], minlength=n).astype(np.int32)
        cv += np.bincount(partner[remaining & ~i_pub], minlength=n).astype(np.int32)

    d = np.nonzero(remaining)[0]
    if d.size == 0:
        _fold_drops(eng, drops)
        return
    D = d.size
    I_ = init[d]
    P_ = partner[d]

    # --- E+F+G: per-exchange partner handling as (partner, initiator)-ordered
    # waves — one exchange per partner per wave, so rows are distinct within a
    # wave and batched ops are safe. Each wave draws its reply subsets from the
    # partner's *current* view (reflecting earlier waves' request merges),
    # merges its requests, then builds its response bundles from the
    # post-ingest estimate cache — the object protocol's request-handler
    # order. Drawing all replies from a pre-round snapshot instead degenerates
    # the overlay at scale (a popular partner would send every requester the
    # same entries).
    order = np.lexsort((I_, P_))
    Ps = P_[order]
    idx = np.arange(D)
    newgrp = np.ones(D, dtype=bool)
    newgrp[1:] = Ps[1:] != Ps[:-1]
    rank = idx - np.maximum.accumulate(np.where(newgrp, idx, 0))
    base_rep_pub = crng.stream(seed, rnd, crng.TAG_REPLY_PUB)
    base_rep_priv = crng.stream(seed, rnd, crng.TAG_REPLY_PRIV) if estimating else 0
    slot_arange = np.arange(V, dtype=np.uint64)[None, :]
    ep_slots = np.empty((D, K), dtype=np.int64)
    ep_ids = np.empty((D, K), dtype=np.int64)
    ep_ages = np.empty((D, K), dtype=np.int64)
    ep_cnt = np.empty(D, dtype=np.int64)
    drp_ids, drp_ages, drp_slots = rp_ids[d], rp_ages[d], rp_slots[d]
    if estimating:
        eq_slots = np.empty((D, K), dtype=np.int64)
        eq_ids = np.empty((D, K), dtype=np.int64)
        eq_ages = np.empty((D, K), dtype=np.int64)
        eq_cnt = np.empty(D, dtype=np.int64)
        B = 1 + eng.FWD
        bp_origs = np.empty((D, B), dtype=np.int64)
        bp_vals = np.empty((D, B))
        bp_borns = np.empty((D, B), dtype=np.int64)
        bp_valid = np.empty((D, B), dtype=bool)
        drq_ids, drq_ages, drq_slots = rq_ids[d], rq_ages[d], rq_slots[d]
        dbi_origs, dbi_vals, dbi_borns, dbi_valid = (
            bi_origs[d], bi_vals[d], bi_borns[d], bi_valid[d],
        )
    for w in range(int(rank.max()) + 1):
        sel_w = order[rank == w]  # one exchange per partner: rows are distinct
        rows = P_[sel_w]
        iw = I_[sel_w]
        wkeys = iw[:, None].astype(np.uint64) * np.uint64(V) + slot_arange
        # Scalar K broadcasts inside _subsets_np (np.minimum); materialising a
        # per-wave rows.size vector here was pure allocator traffic.
        s_, id_, a_, c_ = _subsets_np(
            np, ids2d[rows], ages2d[rows], wkeys, base_rep_pub, K, iw,
            None, None, K,
        )
        ep_slots[sel_w] = s_
        ep_ids[sel_w] = id_
        ep_ages[sel_w] = a_
        ep_cnt[sel_w] = c_
        if estimating:
            qs_, qid_, qa_, qc_ = _subsets_np(
                np, pids2d[rows], pages2d[rows], wkeys, base_rep_priv, K, iw,
                None, None, K,
            )
            eq_slots[sel_w] = qs_
            eq_ids[sel_w] = qid_
            eq_ages[sel_w] = qa_
            eq_cnt[sel_w] = qc_
        _batch_merge_np(np, ids2d, ages2d, aux2d, rows,
                        drp_ids[sel_w], drp_ages[sel_w], iw, id_, s_)
        if estimating:
            _batch_merge_np(np, pids2d, pages2d, None, rows,
                            drq_ids[sel_w], drq_ages[sel_w], None, qid_, qs_)
            _batch_ingest_np(eng, np, rows, dbi_origs[sel_w],
                             dbi_vals[sel_w], dbi_borns[sel_w], dbi_valid[sel_w])
            o_, v_, b_, va_ = _bundles_np(eng, np, rows)
            bp_origs[sel_w] = o_
            bp_vals[sel_w] = v_
            bp_borns[sel_w] = b_
            bp_valid[sel_w] = va_

    # --- H: responses, ascending initiator order (rows are distinct)
    resp_size = HEADER_BYTES + (ep_cnt + (eq_cnt if estimating else 0)) * DESCRIPTOR_BYTES
    if estimating:
        resp_size = resp_size + bp_valid.sum(axis=1) * ESTIMATE_BYTES
    if gozar:
        resp_size = resp_size + _private_desc_count_np(np, pub, ep_ids) * (
            P * PARENT_ADDR_BYTES
        )
    np.add.at(tx, P_, resp_size)  # partners may repeat
    eng.packets_sent += D
    ok = np.ones(D, dtype=bool)
    if loss_active:
        u2 = crng.uniforms_np(
            np, crng.stream(seed, rnd, crng.TAG_LOSS_RESP), I_.astype(np.uint64)
        )
        lost2 = u2 < np.where(pub[P_] != 0, loss_pub, loss_priv)
        drops["lost_in_transit"] += int(lost2.sum())
        ok &= ~lost2
    if gozar:
        priv_init = ok & (pub[I_] == 0)
        ip = par2d[I_]
        ip_live = (ip >= 0) & (alive[np.clip(ip, 0, None)] != 0)
        ip_cnt = ip_live.sum(axis=1)
        norelay2 = priv_init & (ip_cnt == 0)
        drops["no_relay_parent"] += int(norelay2.sum())
        ok &= ~norelay2
        relaying2 = priv_init & ~norelay2
        if relaying2.any():
            k2 = (
                crng.draws_np(np, crng.stream(seed, rnd, crng.TAG_RELAY_RESP),
                              I_.astype(np.uint64))
                % np.maximum(ip_cnt, 1).astype(np.uint64)
            ).astype(np.int64)
            rslot2 = np.argmax(ip_live.cumsum(axis=1) == (k2 + 1)[:, None], axis=1)
            relay2 = ip[np.arange(D), rslot2][relaying2]
            np.add.at(rx, relay2, resp_size[relaying2])
            np.add.at(tx, relay2, resp_size[relaying2])
            eng.packets_sent += int(relaying2.sum())
    fin = np.nonzero(ok)[0]
    if fin.size:
        rows = I_[fin]
        rx[rows] += resp_size[fin]
        _batch_merge_np(np, ids2d, ages2d, aux2d, rows,
                        ep_ids[fin], ep_ages[fin], P_[fin],
                        drp_ids[fin], drp_slots[fin])
        if estimating:
            _batch_merge_np(np, pids2d, pages2d, None, rows,
                            eq_ids[fin], eq_ages[fin], None,
                            drq_ids[fin], drq_slots[fin])
            _batch_ingest_np(eng, np, rows, bp_origs[fin],
                             bp_vals[fin], bp_borns[fin], bp_valid[fin])
    _fold_drops(eng, drops)


# ---------------------------------------------------------------------------
# NAT maintenance phases (shared scalar pass; off the hot path)
# ---------------------------------------------------------------------------


def maintain_parents(eng) -> None:
    """Gozar parent maintenance, run each round before the shuffle pass.

    Per live private row (ascending): dead parent slots are cleared; missing
    parents are recruited from live public view entries ranked by a keyed draw
    (registration costs one request/ack control exchange); every
    ``parent_keepalive_every`` rounds each live parent gets a keep-alive/ack
    pair. Maintenance traffic ignores loss and partitions (documented delta),
    and registration is instantaneous — a recruit is usable the same round.
    """
    V, P = eng.V, eng.P
    n = eng._rows
    alive, is_public = eng.alive, eng.is_public
    parent_id, pub_id = eng.parent_id, eng.pub_id
    tx, rx = eng.tx_bytes, eng.rx_bytes
    base_parent = crng.stream(eng.hash_seed, eng.round, crng.TAG_PARENT)
    keepalive = eng.round % eng.parent_keepalive_every == 0
    for row in range(1, n):
        if not alive[row] or is_public[row]:
            continue
        pbase = row * P
        live = 0
        for s in range(P):
            pid = parent_id[pbase + s]
            if pid >= 0:
                if alive[pid]:
                    live += 1
                else:
                    parent_id[pbase + s] = -1
        needed = P - live
        if needed > 0:
            vbase = row * V
            current = {parent_id[pbase + s] for s in range(P)
                       if parent_id[pbase + s] >= 0}
            cands = []
            for s in range(V):
                nid = pub_id[vbase + s]
                if nid >= 0 and is_public[nid] and alive[nid] and nid not in current:
                    cands.append((crng.draw(base_parent, row * V + s), s))
            cands.sort()
            empties = [s for s in range(P) if parent_id[pbase + s] < 0]
            for (_key, vs), ps in zip(cands[:needed], empties):
                nid = pub_id[vbase + vs]
                parent_id[pbase + ps] = nid
                tx[row] += CONTROL_BYTES
                rx[nid] += CONTROL_BYTES
                tx[nid] += CONTROL_BYTES
                rx[row] += CONTROL_BYTES
                eng.packets_sent += 2
        if keepalive:
            for s in range(P):
                pid = parent_id[pbase + s]
                if pid >= 0:
                    tx[row] += CONTROL_BYTES
                    rx[pid] += CONTROL_BYTES
                    tx[pid] += CONTROL_BYTES
                    rx[row] += CONTROL_BYTES
                    eng.packets_sent += 2


def send_keepalives(eng) -> None:
    """Nylon NAT-mapping keep-alives, run each round before the shuffle pass.

    Every live private row pings its first ``keepalive_fanout`` live view
    entries (slot order, no ack). Keep-alive traffic ignores loss and
    partitions (documented delta)."""
    V = eng.V
    n = eng._rows
    fan = eng.keepalive_fanout
    alive, is_public = eng.alive, eng.is_public
    pub_id = eng.pub_id
    tx, rx = eng.tx_bytes, eng.rx_bytes
    for row in range(1, n):
        if not alive[row] or is_public[row]:
            continue
        vbase = row * V
        sent = 0
        for s in range(V):
            if sent >= fan:
                break
            nid = pub_id[vbase + s]
            if nid >= 0 and alive[nid]:
                tx[row] += CONTROL_BYTES
                rx[nid] += CONTROL_BYTES
                eng.packets_sent += 1
                sent += 1
