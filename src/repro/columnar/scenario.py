"""Scenario facade over the columnar engine: the object `Scenario` API, column-backed.

:class:`ColumnarScenario` exposes the exact surface the experiment layers consume —
``populate``/``add_node``/``run_rounds``, capability queries, churn/failure helpers,
``overlay_graph``, a network with ``loss_model``/``partition``/``packets_sent``, a
traffic monitor with windowed per-class load queries — but every per-node fact lives
in :class:`~repro.columnar.engine.ColumnarEngine` columns. Node handles and
per-node capability services are *views*: tiny facade objects constructed on demand
(when a probe or workload event asks), never stored. A 10⁶-node populated scenario
is therefore a handful of flat arrays, not 10⁶ component objects.

It owns a real :class:`~repro.simulator.core.Simulator`, so workload timelines,
Poisson join processes, churn processes and the deterministic RNG derivation tree
all work unmodified; the engine contributes one self-rescheduling simulator event
that executes a whole gossip round at every exact round boundary.

Fidelity deltas vs the object backend are documented in docs/columnar_backend.md
(round-synchronous delivery, ring estimator cache, truncated estimate forwarding);
``identify_nat_types`` is not supported here.
"""

from __future__ import annotations

import copy
import math
from typing import Callable, Dict, List, Optional, Type

from repro.columnar.engine import COLUMNAR_PROTOCOLS, ColumnarEngine
from repro.constants import DEFAULT_ROUND_MS
from repro.errors import ConfigurationError, ExperimentError
from repro.membership.capabilities import (
    Capability,
    NatAware,
    OverlaySampling,
    RatioEstimating,
)
from repro.membership.plugin import ProtocolPlugin, get_plugin
from repro.nat.types import profile_name
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.core import Simulator


def _ip_of_row(row: int) -> str:
    """A unique, reversible wire IP per node row (supports rows < 2^24)."""
    return f"10.{(row >> 16) & 255}.{(row >> 8) & 255}.{row & 255}"


def _row_of_ip(ip: str) -> int:
    parts = ip.split(".")
    return (int(parts[1]) << 16) | (int(parts[2]) << 8) | int(parts[3])


class ColumnarService(OverlaySampling):
    """Per-node capability view (built on demand; holds no per-node state)."""

    __slots__ = ("_scenario", "row", "current_round")

    def __init__(self, scenario: "ColumnarScenario", row: int) -> None:
        self._scenario = scenario
        self.row = row
        self.current_round = scenario.engine.rounds_exec[row]

    @property
    def node_id(self) -> int:
        return self.row

    def sample(self) -> Optional[NodeAddress]:
        ids = self._scenario.engine.view_ids(self.row)
        if not ids:
            return None
        choice = self._scenario._sample_rng.choice(ids)
        return self._scenario._address_of(choice)

    def sample_many(self, count: int) -> List[NodeAddress]:
        ids = self._scenario.engine.view_ids(self.row)
        if not ids:
            return []
        rng = self._scenario._sample_rng
        return [self._scenario._address_of(rng.choice(ids)) for _ in range(count)]

    def neighbor_addresses(self) -> List[NodeAddress]:
        address_of = self._scenario._address_of
        return [address_of(nid) for nid in self._scenario.engine.view_ids(self.row)]


class ColumnarEstimatingService(ColumnarService, RatioEstimating, NatAware):
    """Croupier view: adds the ratio-estimation and NAT-awareness capabilities."""

    __slots__ = ()

    def estimated_ratio(self) -> Optional[float]:
        return self._scenario.engine.estimate_ratio(self.row)

    def private_peer_strategy(self) -> str:
        return "croupier-indirection"


#: How each NAT-aware single-view protocol reaches private partners.
_NAT_STRATEGIES = {"gozar": "relay", "nylon": "hole-punching"}


class ColumnarNatService(ColumnarService, NatAware):
    """Gozar/Nylon view: NAT-aware (parent relaying / RVP hole punching), but
    no ratio estimator."""

    __slots__ = ()

    def private_peer_strategy(self) -> str:
        return _NAT_STRATEGIES[self._scenario.config.protocol]


class ColumnarHandle:
    """Node-handle view matching the fields workload events and probes touch."""

    __slots__ = ("_scenario", "node_id")

    #: Columnar nodes carry no NAT box object; their wire IP encodes the row, so
    #: partition events (which key on wire IPs) decode back to rows arithmetically.
    natbox = None
    natid_client = None

    def __init__(self, scenario: "ColumnarScenario", node_id: int) -> None:
        self._scenario = scenario
        self.node_id = node_id

    @property
    def alive(self) -> bool:
        return bool(self._scenario.engine.alive[self.node_id])

    @property
    def is_public(self) -> bool:
        return bool(self._scenario.engine.is_public[self.node_id])

    @property
    def joined_at_ms(self) -> float:
        return self._scenario.engine.joined_ms[self.node_id]

    @property
    def nat_profile_name(self) -> Optional[str]:
        label = self._scenario._nat_labels[self._scenario.engine.nat_class[self.node_id]]
        return None if label == "public" else label

    @property
    def address(self) -> NodeAddress:
        return self._scenario._address_of(self.node_id)

    @property
    def pss(self):
        return self._scenario._service_for(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarHandle(node_id={self.node_id}, alive={self.alive})"


class ColumnarTrafficSnapshot:
    """Frozen per-node byte counters (flat copies, not per-node objects)."""

    __slots__ = ("time_ms", "tx", "rx")

    def __init__(self, time_ms: float, tx, rx) -> None:
        self.time_ms = time_ms
        self.tx = tx
        self.rx = rx

    def tx_of(self, row: int) -> int:
        return self.tx[row] if row < len(self.tx) else 0

    def rx_of(self, row: int) -> int:
        return self.rx[row] if row < len(self.rx) else 0


class ColumnarTrafficMonitor:
    """Windowed per-class load queries over the engine's byte columns.

    Implements the :class:`~repro.simulator.monitor.TrafficMonitor` query surface
    the overhead metrics use (``snapshot`` / ``average_load_bps`` /
    ``average_load_by_nat_type``) with identical window semantics: a node counts
    toward the per-node average if it has any recorded traffic now or in the
    baseline snapshot.
    """

    def __init__(self, engine: ColumnarEngine) -> None:
        self._engine = engine

    def snapshot(self, time_ms: float) -> ColumnarTrafficSnapshot:
        rows = self._engine.rows
        return ColumnarTrafficSnapshot(
            time_ms,
            self._engine.tx_bytes[:rows],
            self._engine.rx_bytes[:rows],
        )

    def average_load_bps(
        self,
        since: ColumnarTrafficSnapshot,
        now_ms: float,
        node_filter: Optional[Callable[[int], bool]] = None,
        include_rx: bool = True,
        include_tx: bool = True,
    ) -> float:
        window_seconds = (now_ms - since.time_ms) / 1000.0
        if window_seconds <= 0:
            return 0.0
        tx, rx = self._engine.tx_bytes, self._engine.rx_bytes
        total = 0.0
        count = 0
        for row in range(1, self._engine.rows):
            base_tx = since.tx_of(row)
            base_rx = since.rx_of(row)
            if not (tx[row] or rx[row] or base_tx or base_rx):
                continue
            if node_filter is not None and not node_filter(row):
                continue
            count += 1
            if include_tx:
                total += tx[row] - base_tx
            if include_rx:
                total += rx[row] - base_rx
        if count == 0:
            return 0.0
        return total / window_seconds / count

    def average_load_by_nat_type(
        self,
        since: ColumnarTrafficSnapshot,
        now_ms: float,
        public_node_ids,
        private_node_ids,
    ) -> Dict[str, float]:
        public_set = set(public_node_ids)
        private_set = set(private_node_ids)
        return {
            "public": self.average_load_bps(
                since, now_ms, node_filter=lambda node_id: node_id in public_set
            ),
            "private": self.average_load_bps(
                since, now_ms, node_filter=lambda node_id: node_id in private_set
            ),
        }

    @property
    def drop_reasons(self) -> Dict[str, int]:
        return dict(self._engine.drops)


class ColumnarNetwork:
    """Network facade: packet counter plus the loss/partition control points the
    workload events (:class:`LossBurst`, :class:`Partition`) drive."""

    def __init__(self, scenario: "ColumnarScenario", loss_model) -> None:
        self._scenario = scenario
        self._loss_model = None
        self._partition = None
        self.loss_model = loss_model

    @property
    def packets_sent(self) -> int:
        return self._scenario.engine.packets_sent

    @property
    def loss_model(self):
        return self._loss_model

    @loss_model.setter
    def loss_model(self, model) -> None:
        self._loss_model = model
        if model is None:
            public = private = 0.0
        elif hasattr(model, "public_probability"):
            public = model.public_probability
            private = model.private_probability
        elif hasattr(model, "probability"):
            public = private = model.probability
        else:
            public = private = 0.0
        self._scenario.engine.configure_loss(public, private)

    @property
    def partition(self):
        return self._partition

    @partition.setter
    def partition(self, value) -> None:
        self._partition = value
        if value is None:
            self._scenario.engine.set_partition(())
        else:
            self._scenario.engine.set_partition(
                _row_of_ip(ip) for ip in value.isolated
            )


class ColumnarScenario:
    """A complete column-backed deployment of one peer-sampling protocol."""

    def __init__(self, config, use_numpy: Optional[bool] = None) -> None:
        config.validate()
        if config.engine != "columnar":
            raise ConfigurationError(
                f"ColumnarScenario executes engine='columnar' configs; build "
                f"engine={config.engine!r} scenarios through create_scenario()"
            )
        if config.protocol not in COLUMNAR_PROTOCOLS:
            raise ConfigurationError(
                f"engine='columnar' executes all paper protocols "
                f"({', '.join(COLUMNAR_PROTOCOLS)}); {config.protocol!r} runs "
                f"only on engine='object' (the default)"
            )
        if config.identify_nat_types:
            raise ConfigurationError(
                "engine='columnar' does not support identify_nat_types "
                "(Algorithm 1 needs per-message NAT traversal)"
            )
        self.config = config
        self.sim = Simulator(seed=config.seed)
        self.rng = self.sim.derive_rng("scenario")
        self._sample_rng = self.sim.derive_rng("columnar-sample")
        self.plugin: ProtocolPlugin = get_plugin(config.protocol)
        self._pss_config = config.pss_config or self.plugin.default_config()
        self._pss_config.validate()
        self._nat_mixture_rng = (
            self.sim.derive_rng("nat-mixture") if config.nat_mixture is not None else None
        )
        self._fixed_profile_name = profile_name(config.nat_profile)
        self.engine = ColumnarEngine(
            config.protocol,
            view_size=self._pss_config.view_size,
            shuffle_size=self._pss_config.shuffle_size,
            rng=self.sim.derive_rng("columnar-engine"),
            history_alpha=getattr(self._pss_config, "local_history_alpha", 25),
            history_gamma=getattr(self._pss_config, "neighbour_history_gamma", 50),
            parent_count=getattr(self._pss_config, "parent_count", 3),
            parent_keepalive_every_rounds=getattr(
                self._pss_config, "parent_keepalive_every_rounds", 5
            ),
            keepalive_fanout=getattr(self._pss_config, "keepalive_fanout", 20),
            bootstrap_seed_size=self.bootstrap_seed_size,
            use_numpy=use_numpy,
        )
        self.monitor = ColumnarTrafficMonitor(self.engine)
        loss = None
        if config.loss_rate > 0.0:
            from repro.simulator.loss import BernoulliLoss

            loss = BernoulliLoss(config.loss_rate)
        self.network = ColumnarNetwork(self, loss)
        #: NAT-class label table; engine rows store indexes into it.
        self._nat_labels: List[str] = ["public"]
        self._nat_label_index: Dict[str, int] = {"public": 0}
        self._rounds_scheduled = 0
        self.sim.schedule_at(self.round_ms, self._engine_round)

    # ------------------------------------------------------------------ round pump

    def _engine_round(self) -> None:
        """One simulator event per gossip round, at exact k·round_ms boundaries."""
        self.engine.run_round()
        self._rounds_scheduled += 1
        self.sim.schedule_at(
            (self._rounds_scheduled + 1) * self.round_ms, self._engine_round
        )

    # ------------------------------------------------------------------ properties

    @property
    def round_ms(self) -> float:
        return getattr(self._pss_config, "round_ms", DEFAULT_ROUND_MS)

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def bootstrap_seed_size(self) -> int:
        if self.config.bootstrap_seed_size is not None:
            return self.config.bootstrap_seed_size
        return getattr(self._pss_config, "view_size", 10)

    # ------------------------------------------------------------------ node creation

    def _label_index(self, label: str) -> int:
        index = self._nat_label_index.get(label)
        if index is None:
            index = len(self._nat_labels)
            self._nat_labels.append(label)
            self._nat_label_index[label] = index
        return index

    def _gateway_profile(self) -> tuple:
        if self.config.nat_mixture is not None:
            return self.config.nat_mixture.sample(self._nat_mixture_rng)
        return self._fixed_profile_name, self.config.nat_profile

    def add_node(self, public: bool) -> ColumnarHandle:
        if public:
            return self.add_public_node()
        return self.add_private_node()

    def add_public_node(self) -> ColumnarHandle:
        row = self.engine.add_node(True, now_ms=self.sim.now, nat_class=0)
        return ColumnarHandle(self, row)

    def add_private_node(self) -> ColumnarHandle:
        use_upnp = (
            self.config.upnp_fraction > 0.0
            and self.rng.random() < self.config.upnp_fraction
        )
        gateway_profile_name, _profile = self._gateway_profile()
        label = "upnp" if use_upnp else gateway_profile_name
        row = self.engine.add_node(
            use_upnp, now_ms=self.sim.now, nat_class=self._label_index(label)
        )
        return ColumnarHandle(self, row)

    def populate(self, n_public: int, n_private: int) -> None:
        """Same creation order as the object scenario: a bootstrap core of public
        nodes first, then the remaining classes shuffled together."""
        if n_public < 0 or n_private < 0:
            raise ExperimentError("node counts must be non-negative")
        self.engine.reserve(n_public + n_private + 1)
        initial_public = min(n_public, max(1, self.bootstrap_seed_size))
        for _ in range(initial_public):
            self.add_public_node()
        remaining = [True] * (n_public - initial_public) + [False] * n_private
        self.rng.shuffle(remaining)
        for is_public in remaining:
            self.add_node(is_public)

    # ------------------------------------------------------------------ running

    def run_ms(self, duration_ms: float) -> None:
        self.sim.run_for(duration_ms)

    def run_rounds(self, rounds: float) -> None:
        self.run_ms(rounds * self.round_ms)

    # ------------------------------------------------------------------ queries

    def _address_of(self, row: int) -> NodeAddress:
        nat_type = NatType.PUBLIC if self.engine.is_public[row] else NatType.PRIVATE
        return NodeAddress(
            node_id=row,
            endpoint=Endpoint(_ip_of_row(row), self._pss_config.port),
            nat_type=nat_type,
        )

    def _service_for(self, row: int):
        if self.engine.estimating:
            return ColumnarEstimatingService(self, row)
        if self.engine.nat_aware:
            return ColumnarNatService(self, row)
        return ColumnarService(self, row)

    def live_handles(self) -> List[ColumnarHandle]:
        return [ColumnarHandle(self, row) for row in self.engine.live_rows()]

    def live_public_ids(self) -> List[int]:
        return self.engine.live_public_rows()

    def live_private_ids(self) -> List[int]:
        return self.engine.live_private_rows()

    def live_count(self) -> int:
        return self.engine.live_count()

    def true_ratio(self) -> float:
        live = self.engine.live_count()
        if not live:
            return 0.0
        return self.engine.public_count() / live

    # ------------------------------------------------------------------ capabilities

    def supports(self, capability: Type[Capability]) -> bool:
        return self.plugin.supports(capability)

    def require(self, capability: Type[Capability], context: str = "") -> None:
        self.plugin.require(capability, context=context)

    def services_with(self, capability: Type[Capability]) -> List[ColumnarService]:
        if not self.plugin.supports(capability):
            return []
        service_for = self._service_for
        return [service_for(row) for row in self.engine.live_rows()]

    def handles_with(self, capability: Type[Capability]) -> List[ColumnarHandle]:
        if not self.plugin.supports(capability):
            return []
        return self.live_handles()

    def overlay_graph(self) -> Dict[int, set]:
        alive = self.engine.alive
        graph: Dict[int, set] = {}
        for row in self.engine.live_rows():
            graph[row] = {
                nid
                for nid in self.engine.view_ids(row)
                if nid != row and alive[nid]
            }
        return graph

    def traffic_snapshot(self) -> ColumnarTrafficSnapshot:
        return self.monitor.snapshot(self.sim.now)

    # ------------------------------------------------------------------ failures & churn

    def kill(self, node_id: int) -> None:
        self.engine.kill(node_id)

    def kill_random_fraction(
        self,
        fraction: float,
        only: Optional[Callable[[ColumnarHandle], bool]] = None,
    ) -> List[int]:
        if not 0.0 <= fraction <= 1.0:
            raise ExperimentError(f"fraction out of range: {fraction}")
        if only is None:
            candidates = self.engine.live_rows()
        else:
            candidates = [
                row for row in self.engine.live_rows() if only(ColumnarHandle(self, row))
            ]
        count = int(round(fraction * len(candidates)))
        victims = self.rng.sample(candidates, min(count, len(candidates)))
        for row in victims:
            self.engine.kill(row)
        return victims

    def churn_step(self, fraction: float) -> int:
        """Probabilistically-rounded per-class churn, same decision sequence as the
        object scenario (floor + one Bernoulli draw per class, then a sample)."""
        replaced = 0
        for is_public, ids in (
            (True, self.engine.live_public_rows()),
            (False, self.engine.live_private_rows()),
        ):
            expected = fraction * len(ids)
            count = int(math.floor(expected))
            if self.rng.random() < (expected - count):
                count += 1
            if count == 0:
                continue
            victims = self.rng.sample(ids, min(count, len(ids)))
            for node_id in victims:
                self.engine.kill(node_id)
                self.add_node(public=is_public)
                replaced += 1
        return replaced

    # ------------------------------------------------------------------ NAT classes

    def nat_class_members(self) -> Dict[str, List[int]]:
        classes: Dict[str, List[int]] = {}
        labels = self._nat_labels
        nat_class = self.engine.nat_class
        for row in self.engine.live_rows():
            classes.setdefault(labels[nat_class[row]], []).append(row)
        return classes

    # ------------------------------------------------------------------ snapshots

    def clone(self) -> "ColumnarScenario":
        """Deep copy (clock, pending events, RNG streams, every column) — running
        the clone reproduces exactly what the original would have done."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ protocol access

    def pss_of(self, node_id: int):
        if not (0 < node_id < self.engine.rows) or not self.engine.alive[node_id]:
            raise ExperimentError(f"no peer-sampling service for node {node_id}")
        return self._service_for(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarScenario(protocol={self.config.protocol}, "
            f"live={self.live_count()}, t={self.sim.now / 1000.0:.1f}s)"
        )
