"""Backend selection and shared numeric helpers for the columnar engine.

The columnar engine stores every piece of per-node state in flat
:class:`array.array` columns (row-major, fixed-width slots). That single storage
representation is what makes the dual execution paths bit-identical:

* **numpy fast path** — whole-column phases (view ageing, estimator-window
  archiving, per-node estimate means, in-degree bincounts) run as vectorized
  operations over zero-copy :func:`numpy.frombuffer` views of the very same
  ``array.array`` buffers. Only elementwise integer arithmetic, gathers/scatters
  and elementwise IEEE-754 float operations are used — every one of them produces
  exactly the bytes the pure-Python loop would.
* **pure-Python fallback** — the same phases as explicit loops over the same
  buffers, in the same element order. Correct (and exercised by CI without numpy
  installed), merely slow at large N.

Float *reductions* are the one operation where numpy would diverge (pairwise
summation reorders additions), so they never go through numpy: both paths reduce
with :func:`seq_sum`, a plain sequential left-to-right accumulation.

``REPRO_NO_NUMPY=1`` in the environment forces the fallback even when numpy is
importable — this is how a container with numpy baked in exercises the fallback
path end to end (``scripts/ci.sh`` runs the tier-1 suite both ways).
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Optional

np = None
if os.environ.get("REPRO_NO_NUMPY", "") in ("", "0"):
    try:  # pragma: no cover - exercised via both CI installs
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover
        np = None

#: Whether the numpy fast path is available (import-time decision; engines take an
#: explicit ``use_numpy`` override so tests can exercise both paths in one process).
HAVE_NUMPY = np is not None

#: array.array typecode -> numpy dtype name (native byte order on both sides).
_DTYPES = {"b": "int8", "i": "int32", "q": "int64", "d": "float64"}


def as_np(column: array):
    """A writable zero-copy numpy view over an ``array.array`` column.

    Mutations write through to the underlying buffer. Views must be created fresh
    per operation and never held across a column resize (``extend`` may move the
    buffer).
    """
    return np.frombuffer(column, dtype=_DTYPES[column.typecode])


def new_column(typecode: str, length: int, fill: int = 0) -> array:
    """A flat column of ``length`` entries, all set to ``fill``."""
    if fill == 0:
        return array(typecode, bytes(length * array(typecode).itemsize))
    return array(typecode, [fill]) * length


def grow_column(column: array, extra: int, fill: int = 0) -> None:
    """Append ``extra`` entries of ``fill`` to a column (amortised node growth)."""
    if fill == 0:
        column.frombytes(bytes(extra * column.itemsize))
    else:
        column.extend(array(column.typecode, [fill]) * extra)


def seq_sum(values: Iterable[float]) -> float:
    """Strict left-to-right float accumulation — the shared reduction order.

    Both backends fold every user-visible float reduction through this helper so
    the numpy path can never pick up pairwise-summation rounding differences.
    """
    total = 0.0
    for value in values:
        total += value
    return total


def seq_mean(values: Iterable[float]) -> Optional[float]:
    """Sequential mean with the same accumulation order as :func:`seq_sum`."""
    total = 0.0
    count = 0
    for value in values:
        total += value
        count += 1
    if count == 0:
        return None
    return total / count
