"""The columnar gossip kernel: whole-round batched shuffles over flat array columns.

One :class:`ColumnarEngine` holds an entire cell's protocol state — partial views,
descriptor ages, ratio-estimator windows and caches, traffic counters — as flat
``array.array`` columns (``row = node id``, fixed-width slots per row). A gossip
round is executed for *all* nodes in one call: the per-column phases (ageing,
estimator-window archiving, local-estimate recomputation) run as vectorized
operations (numpy views when available, identical plain loops otherwise), and the
round's shuffle exchanges are processed as one batched pass over the initiator
rows in ascending order — no event queue, no per-node callback objects, no
descriptor allocation.

Model (the documented deltas from the object backend, see docs/columnar_backend.md):

* **Round-synchronous.** A shuffle request, its handling and its response all
  happen within the same engine round; there is no per-message latency model and
  therefore no pending-shuffle timeout. Requests to dead, private (NAT-filtered)
  or partitioned-away partners are simply lost — which reproduces the object
  engine's self-healing behaviour (the initiator already dropped the partner from
  its view).
* **Estimator cache is a ring, not a keyed table.** Each node keeps the last
  ``cache_capacity`` received estimates as ``(value, born_round)`` pairs; entries
  older than the γ window are masked at read time. The object backend's
  freshest-per-origin dedup is approximated by recency.
* **Estimate piggybacking is truncated.** A shuffle carries the sender's own
  local estimate plus its ``forward_estimates`` most recent cached entries
  (default 2), instead of a uniform sample of up to 10.

Everything is deterministic, but the contract is *positional*, not sequential:
the injected ``random.Random`` is consumed exactly once, at construction, to
derive a 64-bit engine seed; every in-round random decision is then a
counter-keyed draw — a pure function of ``(seed, round, phase, row-or-slot
key)`` (see :mod:`repro.columnar.rng`). That makes the whole shuffle pass
batchable (:mod:`repro.columnar.shuffle`): the numpy fast path and the
pure-array fallback evaluate the same keyed draws and the same elementwise
phases, so they produce bit-identical state (pinned by
``tests/test_columnar.py``) regardless of evaluation order.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, List, Optional, Tuple

from repro.columnar import backend
from repro.columnar.backend import as_np, grow_column, new_column, seq_sum
from repro.columnar.shuffle import (  # re-exported: the engine's wire model
    CONTROL_BYTES,
    DESCRIPTOR_BYTES,
    DROP_REASONS,
    ESTIMATE_BYTES,
    HEADER_BYTES,
    PARENT_ADDR_BYTES,
    maintain_parents,
    run_shuffle_round,
    send_keepalives,
)
from repro.columnar.streaming import StreamingHistogram
from repro.errors import ConfigurationError

__all__ = [
    "BORN_NONE", "COLUMNAR_PROTOCOLS", "ColumnarEngine",
    "CONTROL_BYTES", "DESCRIPTOR_BYTES", "DROP_REASONS", "ESTIMATE_BYTES",
    "HEADER_BYTES", "PARENT_ADDR_BYTES",
]

#: Sentinel born-round for an empty estimator-ring slot (always outside any window).
BORN_NONE = -(2 ** 30)

#: Protocols this engine can execute. All four paper protocols run columnar;
#: croupier adds the dual-view estimator, gozar parent relaying, nylon
#: learned-from hole punching.
COLUMNAR_PROTOCOLS = ("croupier", "cyclon", "gozar", "nylon")


class ColumnarEngine:
    """Flat-column state + batched round execution for one simulated cell."""

    def __init__(
        self,
        protocol: str,
        *,
        view_size: int,
        shuffle_size: int,
        rng,
        history_alpha: int = 25,
        history_gamma: int = 50,
        cache_capacity: int = 32,
        forward_estimates: int = 2,
        parent_count: int = 3,
        parent_keepalive_every_rounds: int = 5,
        keepalive_fanout: int = 20,
        bootstrap_seed_size: Optional[int] = None,
        use_numpy: Optional[bool] = None,
    ) -> None:
        if protocol not in COLUMNAR_PROTOCOLS:
            raise ConfigurationError(
                f"engine='columnar' executes {', '.join(COLUMNAR_PROTOCOLS)}; "
                f"{protocol!r} runs only on the object engine"
            )
        if view_size <= 0 or shuffle_size <= 0:
            raise ConfigurationError("view_size and shuffle_size must be positive")
        self.protocol = protocol
        self.estimating = protocol == "croupier"
        self.nat_aware = protocol in ("gozar", "nylon")
        self.V = view_size
        self.K = min(shuffle_size, view_size)
        self.A = history_alpha
        self.G = history_gamma
        self.C = cache_capacity
        self.FWD = max(0, min(forward_estimates, cache_capacity))
        self.P = max(1, parent_count)
        self.parent_keepalive_every = max(1, parent_keepalive_every_rounds)
        self.keepalive_fanout = max(0, keepalive_fanout)
        self.seed_size = bootstrap_seed_size or view_size
        self.rng = rng
        #: The engine's positional-draw seed (repro.columnar.rng): consumed from
        #: the injected RNG exactly once, here, preserving seed custody.
        self.hash_seed = rng.getrandbits(64)
        self.use_numpy = backend.HAVE_NUMPY if use_numpy is None else bool(use_numpy)
        if self.use_numpy and not backend.HAVE_NUMPY:
            raise ConfigurationError("numpy requested but not available")

        self.round = 0
        self.packets_sent = 0
        self.drops: Dict[str, int] = {}
        #: Loss probabilities applied per sender class (set via configure_loss).
        self.loss_public = 0.0
        self.loss_private = 0.0
        self._partition_active = False

        self._rows = 1  # row 0 is a permanently-dead filler so node ids start at 1
        self._cap = 16
        cap = self._cap
        self.alive = new_column("b", cap)
        self.is_public = new_column("b", cap)
        self.nat_class = new_column("i", cap)
        self.rounds_exec = new_column("i", cap)
        self.joined_ms = new_column("d", cap)
        self.isolated = new_column("b", cap)
        self.tx_bytes = new_column("q", cap)
        self.rx_bytes = new_column("q", cap)
        # Primary view (Croupier's public view; Cyclon's only view).
        self.pub_id = new_column("q", cap * self.V, fill=-1)
        self.pub_age = new_column("i", cap * self.V)
        if self.estimating:
            self.priv_id = new_column("q", cap * self.V, fill=-1)
            self.priv_age = new_column("i", cap * self.V)
            self.cur_cu = new_column("i", cap)
            self.cur_cv = new_column("i", cap)
            self.cu_sum = new_column("q", cap)
            self.cv_sum = new_column("q", cap)
            self.hist_cu = new_column("i", cap * self.A)
            self.hist_cv = new_column("i", cap * self.A)
            self.hist_pos = new_column("i", cap)
            self.est_val = new_column("d", cap * self.C)
            self.est_born = new_column("i", cap * self.C, fill=BORN_NONE)
            self.est_origin = new_column("q", cap * self.C, fill=-1)
            self.est_pos = new_column("i", cap)
            self.loc_est = new_column("d", cap, fill=-1.0)  # -1.0 == no local estimate
        if protocol == "gozar":
            # Relay parents of private nodes (public rows they registered with).
            self.parent_id = new_column("q", cap * self.P, fill=-1)
        if protocol == "nylon":
            # Which row each view descriptor was learned from (-1: bootstrap
            # seed) — the one-hop RVP chain used to reach private partners.
            self.learned_from = new_column("q", cap * self.V, fill=-1)
        #: Live public rows (the bootstrap registry): list + position map for O(1)
        #: removal with deterministic (swap-pop) order.
        self._pub_live: List[int] = []
        self._pub_pos: Dict[int, int] = {}

    # ------------------------------------------------------------------ growth

    @property
    def rows(self) -> int:
        """Number of allocated rows (== highest node id + 1; row 0 is filler)."""
        return self._rows

    def reserve(self, total_nodes: int) -> None:
        """Pre-size all columns for ``total_nodes`` nodes (avoids doubling copies)."""
        needed = total_nodes + 1
        if needed > self._cap:
            self._grow(needed)

    def _grow(self, min_cap: int) -> None:
        new_cap = max(self._cap * 2, min_cap)
        extra = new_cap - self._cap
        for column in (
            self.alive, self.is_public, self.nat_class, self.rounds_exec,
            self.joined_ms, self.isolated, self.tx_bytes, self.rx_bytes,
        ):
            grow_column(column, extra)
        grow_column(self.pub_id, extra * self.V, fill=-1)
        grow_column(self.pub_age, extra * self.V)
        if self.estimating:
            grow_column(self.priv_id, extra * self.V, fill=-1)
            grow_column(self.priv_age, extra * self.V)
            for column in (self.cur_cu, self.cur_cv, self.cu_sum, self.cv_sum,
                           self.hist_pos, self.est_pos):
                grow_column(column, extra)
            grow_column(self.hist_cu, extra * self.A)
            grow_column(self.hist_cv, extra * self.A)
            grow_column(self.est_val, extra * self.C)
            grow_column(self.est_born, extra * self.C, fill=BORN_NONE)
            grow_column(self.est_origin, extra * self.C, fill=-1)
            grow_column(self.loc_est, extra, fill=-1.0)
        if self.protocol == "gozar":
            grow_column(self.parent_id, extra * self.P, fill=-1)
        if self.protocol == "nylon":
            grow_column(self.learned_from, extra * self.V, fill=-1)
        self._cap = new_cap

    # ------------------------------------------------------------------ membership

    def add_node(self, public: bool, now_ms: float = 0.0, nat_class: int = 0) -> int:
        """Create one node; seeds its view from the live public registry. Returns its row."""
        row = self._rows
        if row >= self._cap:
            self._grow(row + 1)
        self._rows = row + 1
        self.alive[row] = 1
        self.is_public[row] = 1 if public else 0
        self.nat_class[row] = nat_class
        self.joined_ms[row] = now_ms
        seeds = self._pub_live
        count = min(self.seed_size, self.V, len(seeds))
        if count:
            chosen = self.rng.sample(seeds, count)
            base = row * self.V
            for slot, seed_row in enumerate(chosen):
                self.pub_id[base + slot] = seed_row
                self.pub_age[base + slot] = 0
        if public:
            self._pub_pos[row] = len(self._pub_live)
            self._pub_live.append(row)
        return row

    def kill(self, row: int) -> bool:
        """Remove a node. Its descriptors linger in other views and age out."""
        if not (0 < row < self._rows) or not self.alive[row]:
            return False
        self.alive[row] = 0
        base = row * self.V
        for slot in range(self.V):
            self.pub_id[base + slot] = -1
            self.pub_age[base + slot] = 0
        if self.estimating:
            for slot in range(self.V):
                self.priv_id[base + slot] = -1
                self.priv_age[base + slot] = 0
            self.loc_est[row] = -1.0
        if self.protocol == "gozar":
            pbase = row * self.P
            for slot in range(self.P):
                self.parent_id[pbase + slot] = -1
        if self.protocol == "nylon":
            for slot in range(self.V):
                self.learned_from[base + slot] = -1
        if self.is_public[row]:
            pos = self._pub_pos.pop(row)
            last = self._pub_live.pop()
            if last != row:
                self._pub_live[pos] = last
                self._pub_pos[last] = pos
        return True

    def live_rows(self) -> List[int]:
        """Live rows in ascending (creation) order."""
        n = self._rows
        if self.use_numpy:
            alive = as_np(self.alive)[:n]
            return backend.np.nonzero(alive)[0].tolist()  # row 0 is never alive
        alive = self.alive
        return [row for row in range(1, n) if alive[row]]

    def live_count(self) -> int:
        if self.use_numpy:
            return int(as_np(self.alive)[: self._rows].sum())
        return sum(self.alive[1 : self._rows])

    def live_public_rows(self) -> List[int]:
        """Live public rows in ascending (creation) order."""
        n = self._rows
        if self.use_numpy:
            np = backend.np
            alive = as_np(self.alive)[:n]
            public = as_np(self.is_public)[:n]
            return np.nonzero((alive != 0) & (public != 0))[0].tolist()
        alive, public = self.alive, self.is_public
        return [row for row in range(1, n) if alive[row] and public[row]]

    def live_private_rows(self) -> List[int]:
        """Live private rows in ascending (creation) order."""
        n = self._rows
        if self.use_numpy:
            np = backend.np
            alive = as_np(self.alive)[:n]
            public = as_np(self.is_public)[:n]
            return np.nonzero((alive != 0) & (public == 0))[0].tolist()
        alive, public = self.alive, self.is_public
        return [row for row in range(1, n) if alive[row] and not public[row]]

    def public_count(self) -> int:
        return len(self._pub_live)

    # ------------------------------------------------------------------ config hooks

    def configure_loss(self, public_probability: float, private_probability: float) -> None:
        self.loss_public = public_probability
        self.loss_private = private_probability

    def set_partition(self, isolated_rows) -> None:
        """Install (or, with an empty set, heal) a two-sided partition by rows."""
        n = self._rows
        if self.use_numpy:
            as_np(self.isolated)[:n] = 0
        else:
            for row in range(n):
                self.isolated[row] = 0
        for row in isolated_rows:
            if 0 < row < n:
                self.isolated[row] = 1
        self._partition_active = bool(isolated_rows)

    # ------------------------------------------------------------------ round phases

    def run_round(self) -> None:
        """Execute one synchronous gossip round for every live node."""
        self.round += 1
        self._age_views()
        if self.estimating:
            self._advance_estimators()
        else:
            self._advance_rounds_only()
        if self.protocol == "gozar":
            maintain_parents(self)
        elif self.protocol == "nylon":
            send_keepalives(self)
        run_shuffle_round(self)

    def _age_views(self) -> None:
        end = self._rows * self.V
        if self.use_numpy:
            ids = as_np(self.pub_id)[:end]
            as_np(self.pub_age)[:end] += ids >= 0
            if self.estimating:
                ids = as_np(self.priv_id)[:end]
                as_np(self.priv_age)[:end] += ids >= 0
            return
        pub_id, pub_age = self.pub_id, self.pub_age
        for index in range(end):
            if pub_id[index] >= 0:
                pub_age[index] += 1
        if self.estimating:
            priv_id, priv_age = self.priv_id, self.priv_age
            for index in range(end):
                if priv_id[index] >= 0:
                    priv_age[index] += 1

    def _advance_rounds_only(self) -> None:
        n = self._rows
        if self.use_numpy:
            alive = as_np(self.alive)[:n]
            as_np(self.rounds_exec)[:n] += alive
            return
        alive, rounds = self.alive, self.rounds_exec
        for row in range(1, n):
            if alive[row]:
                rounds[row] += 1

    def _advance_estimators(self) -> None:
        """Archive the finished round's (Cu, Cv) into the α-window ring and refresh
        every public node's local estimate Cu/(Cu+Cv) over the window."""
        n = self._rows
        A = self.A
        if self.use_numpy:
            np = backend.np
            alive = as_np(self.alive)[:n]
            live = np.nonzero(alive)[0]
            if live.size:
                pos = as_np(self.hist_pos)[:n]
                cur_cu = as_np(self.cur_cu)[:n]
                cur_cv = as_np(self.cur_cv)[:n]
                cu_sum = as_np(self.cu_sum)[:n]
                cv_sum = as_np(self.cv_sum)[:n]
                hist_cu = as_np(self.hist_cu)
                hist_cv = as_np(self.hist_cv)
                flat = live * A + pos[live]
                cu_sum[live] += cur_cu[live].astype(np.int64) - hist_cu[flat]
                cv_sum[live] += cur_cv[live].astype(np.int64) - hist_cv[flat]
                hist_cu[flat] = cur_cu[live]
                hist_cv[flat] = cur_cv[live]
                pos[live] = (pos[live] + 1) % A
                cur_cu[live] = 0
                cur_cv[live] = 0
                as_np(self.rounds_exec)[:n][live] += 1
                den = cu_sum[live] + cv_sum[live]
                ok = (as_np(self.is_public)[:n][live] != 0) & (den > 0)
                est = np.full(live.size, -1.0)
                # int64/int64 true division == Python's int/int for these magnitudes.
                est[ok] = cu_sum[live][ok] / den[ok]
                as_np(self.loc_est)[:n][live] = est
            return
        alive, pos_col = self.alive, self.hist_pos
        cur_cu, cur_cv = self.cur_cu, self.cur_cv
        cu_sum, cv_sum = self.cu_sum, self.cv_sum
        hist_cu, hist_cv = self.hist_cu, self.hist_cv
        rounds, is_public, loc_est = self.rounds_exec, self.is_public, self.loc_est
        for row in range(1, n):
            if not alive[row]:
                continue
            slot = row * A + pos_col[row]
            cu_sum[row] += cur_cu[row] - hist_cu[slot]
            cv_sum[row] += cur_cv[row] - hist_cv[slot]
            hist_cu[slot] = cur_cu[row]
            hist_cv[slot] = cur_cv[row]
            pos_col[row] = (pos_col[row] + 1) % A
            cur_cu[row] = 0
            cur_cv[row] = 0
            rounds[row] += 1
            den = cu_sum[row] + cv_sum[row]
            if is_public[row] and den > 0:
                loc_est[row] = cu_sum[row] / den
            else:
                loc_est[row] = -1.0

    # ------------------------------------------------------------------ estimates

    def _estimate_bundle(self, row: int) -> List[Tuple[int, float, int]]:
        """What ``row`` piggybacks on a shuffle: its own local estimate (origin =
        itself, born = this round) plus its FWD most recently received,
        still-fresh cached entries, each carrying its original origin and born
        round (the wire equivalent of the paper's 5-byte id+counts+timestamp
        encoding)."""
        bundle: List[Tuple[int, float, int]] = []
        local = self.loc_est[row]
        if local >= 0.0:
            bundle.append((row, local, self.round))
        if self.FWD:
            C = self.C
            base = row * C
            born_min = self.round - self.G
            pos = self.est_pos[row]
            for back in range(1, min(self.FWD, C) + 1):
                slot = base + (pos - back) % C
                born = self.est_born[slot]
                if born >= born_min:
                    bundle.append((self.est_origin[slot], self.est_val[slot], born))
        return bundle

    def _ingest_estimates(self, row: int, bundle) -> None:
        """Origin-keyed merge, mirroring the object estimator's neighbour cache:
        at most one cached entry per origin, refreshed only by a strictly
        fresher (larger born) copy; unseen origins take the ring cursor slot
        (evicting whatever held it)."""
        if not bundle:
            return
        C = self.C
        base = row * C
        est_origin, est_val, est_born = self.est_origin, self.est_val, self.est_born
        for origin, value, born in bundle:
            slot = -1
            for back in range(C):
                if est_origin[base + back] == origin:
                    slot = back
                    break
            if slot >= 0:
                if born > est_born[base + slot]:
                    est_val[base + slot] = value
                    est_born[base + slot] = born
            else:
                pos = self.est_pos[row]
                est_origin[base + pos] = origin
                est_val[base + pos] = value
                est_born[base + pos] = born
                self.est_pos[row] = (pos + 1) % C

    def estimate_ratio(self, row: int) -> Optional[float]:
        """One node's current estimate: mean of fresh cached estimates plus (for
        public nodes) its own local estimate. Accumulation order: ring slots
        0..C-1, then the local estimate — both backends, both read paths."""
        if not self.estimating:
            return None
        born_min = self.round - self.G
        base = row * self.C
        total = 0.0
        count = 0
        est_val, est_born = self.est_val, self.est_born
        for slot in range(self.C):
            if est_born[base + slot] >= born_min:
                total += est_val[base + slot]
                count += 1
        local = self.loc_est[row]
        if local >= 0.0:
            total += local
            count += 1
        if count == 0:
            return None
        return total / count

    def _measured_estimates(self, min_rounds: int) -> List[float]:
        """Per-node estimates of live, warmed-up nodes in ascending row order —
        without materialising per-node service objects. Bit-identical between
        backends and with per-node :meth:`estimate_ratio` calls."""
        n = self._rows
        born_min = self.round - self.G
        estimates: List[float] = []
        if self.use_numpy:
            np = backend.np
            total = np.zeros(n)
            count = np.zeros(n, dtype=np.int64)
            est_val = as_np(self.est_val)
            est_born = as_np(self.est_born)
            for slot in range(self.C):
                born = est_born[slot :: self.C][:n]
                mask = born >= born_min
                total += np.where(mask, est_val[slot :: self.C][:n], 0.0)
                count += mask
            local = as_np(self.loc_est)[:n]
            has_local = local >= 0.0
            total += np.where(has_local, local, 0.0)
            count += has_local
            sel = (
                (as_np(self.alive)[:n] != 0)
                & (as_np(self.rounds_exec)[:n] >= min_rounds)
                & (count > 0)
            )
            if sel.any():
                estimates = (total[sel] / count[sel]).tolist()
        else:
            alive, rounds = self.alive, self.rounds_exec
            for row in range(1, n):
                if alive[row] and rounds[row] >= min_rounds:
                    value = self.estimate_ratio(row)
                    if value is not None:
                        estimates.append(value)
        return estimates

    def estimate_stats(
        self, true_ratio: float, min_rounds: int = 2
    ) -> Tuple[int, Optional[float], Optional[float], Optional[float]]:
        """(nodes_measured, mean estimate, avg |error|, max |error|) over live
        nodes with at least ``min_rounds`` executed rounds."""
        if not self.estimating:
            return (0, None, None, None)
        estimates = self._measured_estimates(min_rounds)
        if not estimates:
            return (0, None, None, None)
        k = len(estimates)
        mean_est = seq_sum(estimates) / k
        errors = [abs(value - true_ratio) for value in estimates]
        return (k, mean_est, seq_sum(errors) / k, max(errors))

    def estimate_reservoir(self, reservoir, min_rounds: int = 2) -> int:
        """Stream every measured per-node estimate (ascending row order) into a
        :class:`~repro.columnar.streaming.ReservoirSample`; returns how many
        values were offered. Powers the estimate-scatter figure at scales where
        a per-node list must never be archived."""
        if not self.estimating:
            return 0
        values = self._measured_estimates(min_rounds)
        reservoir.extend(values)
        return len(values)

    # ------------------------------------------------------------------ graph metrics

    def view_ids(self, row: int) -> List[int]:
        """All node ids currently in ``row``'s view(s) (may include dead nodes)."""
        ids: List[int] = []
        base = row * self.V
        for slot in range(self.V):
            nid = self.pub_id[base + slot]
            if nid >= 0:
                ids.append(nid)
        if self.estimating:
            for slot in range(self.V):
                nid = self.priv_id[base + slot]
                if nid >= 0:
                    ids.append(nid)
        return ids

    def in_degree_histogram(self) -> StreamingHistogram:
        """Histogram of live->live in-degrees, streamed (never a per-node list)."""
        histogram = StreamingHistogram()
        n = self._rows
        if self.use_numpy:
            np = backend.np
            alive = as_np(self.alive)[:n]
            counts = np.zeros(n, dtype=np.int64)
            views = [self.pub_id] + ([self.priv_id] if self.estimating else [])
            for column in views:
                ids = as_np(column)[: n * self.V]
                targets = ids[ids >= 0]
                targets = targets[alive[targets] != 0]
                counts += np.bincount(targets, minlength=n)
            degrees = counts[np.nonzero(alive)[0]]
            if degrees.size:
                bins = np.bincount(degrees)
                histogram.add_counts(
                    {deg: int(cnt) for deg, cnt in enumerate(bins) if cnt}
                )
            return histogram
        alive = self.alive
        counts = [0] * n
        views = [self.pub_id] + ([self.priv_id] if self.estimating else [])
        for column in views:
            for index in range(n * self.V):
                nid = column[index]
                if nid >= 0 and alive[nid]:
                    counts[nid] += 1
        histogram.add_many(counts[row] for row in range(1, n) if alive[row])
        return histogram

    # ------------------------------------------------------------------ determinism

    def fingerprint(self) -> str:
        """SHA-256 over the full protocol state — the engine's golden-run pin."""
        digest = hashlib.sha256()
        digest.update(
            struct.pack("<qqq", self.round, self._rows, self.packets_sent)
        )
        columns = [
            self.alive, self.is_public, self.rounds_exec,
            self.pub_id, self.pub_age, self.tx_bytes, self.rx_bytes,
        ]
        if self.estimating:
            columns += [
                self.priv_id, self.priv_age, self.cur_cu, self.cur_cv,
                self.cu_sum, self.cv_sum, self.hist_pos, self.est_val,
                self.est_born, self.est_origin, self.est_pos, self.loc_est,
            ]
        if self.protocol == "gozar":
            columns.append(self.parent_id)
        if self.protocol == "nylon":
            columns.append(self.learned_from)
        for column in columns:
            view = memoryview(column)[: self._rows * (len(column) // self._cap)]
            digest.update(view.tobytes())
        return digest.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarEngine({self.protocol}, live={self.live_count()}, "
            f"round={self.round}, numpy={self.use_numpy})"
        )
