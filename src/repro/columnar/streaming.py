"""Streaming metric accumulators: histograms and reservoirs that never hold per-node payloads.

A 10⁶-node cell cannot afford to materialise a list of per-node values just to
build a histogram out of it. The accumulators here ingest values one at a time
(or as whole pre-binned count vectors) in O(distinct bins) memory, and produce
**exactly** the structures :class:`~repro.metrics.payload.MetricPayload` stores —
same integer bins, same integer counts — so a streamed histogram and a
materialised one are byte-identical once serialised into an aggregate
(``tests/test_streaming_histograms.py`` pins this).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Mapping, Optional


class StreamingHistogram:
    """An integer-bin histogram accumulated incrementally.

    Semantically identical to ``collections.Counter(int(v) for v in values)`` —
    which is what the object backend's probes build via
    :meth:`MetricPayload.set_histogram` — without ever holding the values.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (values are binned as ints)."""
        key = int(value)
        self._counts[key] = self._counts.get(key, 0) + count

    def add_many(self, values: Iterable[int]) -> None:
        counts = self._counts
        for value in values:
            key = int(value)
            counts[key] = counts.get(key, 0) + 1

    def add_counts(self, counts_by_value: Mapping[int, int]) -> None:
        """Fold in a pre-binned ``{value: count}`` mapping (e.g. a bincount)."""
        counts = self._counts
        for value, count in counts_by_value.items():
            if count:
                key = int(value)
                counts[key] = counts.get(key, 0) + int(count)

    def merge(self, other: "StreamingHistogram") -> None:
        self.add_counts(other._counts)

    @property
    def total(self) -> int:
        """Number of observations recorded."""
        return sum(self._counts.values())

    def to_histogram(self) -> Dict[int, int]:
        """The exact ``{bin: count}`` dict :meth:`MetricPayload.set_histogram` expects."""
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamingHistogram(bins={len(self._counts)}, total={self.total})"


class ReservoirSample:
    """Uniform fixed-capacity sample of a stream (Vitter's Algorithm R).

    Deterministic given the injected ``rng``: the same stream in the same order
    yields the same reservoir. Used where a *bounded* set of representative raw
    values is wanted from an unbounded population (e.g. spot-checking per-node
    estimates at 10⁶ nodes without keeping 10⁶ floats).
    """

    __slots__ = ("capacity", "rng", "seen", "_values")

    def __init__(self, capacity: int, rng: Optional[random.Random] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rng = rng or random.Random(0)
        self.seen = 0
        self._values: List[float] = []

    def add(self, value: float) -> None:
        self.seen += 1
        if len(self._values) < self.capacity:
            self._values.append(value)
            return
        slot = self.rng.randrange(self.seen)
        if slot < self.capacity:
            self._values[slot] = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def values(self) -> List[float]:
        """The current sample (insertion/replacement order; copy, safe to mutate)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReservoirSample(k={self.capacity}, kept={len(self)}, seen={self.seen})"
