"""Columnar simulation engine: flat-array state, batched rounds, streaming metrics.

The second execution backend behind the protocol/capability API (selected with
``engine="columnar"`` on :class:`~repro.workload.scenario.ScenarioConfig` or as a
matrix axis). See docs/columnar_backend.md for array layouts, the determinism
contract, and the documented fidelity deltas from the object backend.
"""

from repro.columnar.backend import HAVE_NUMPY
from repro.columnar.engine import COLUMNAR_PROTOCOLS, ColumnarEngine
from repro.columnar.scenario import ColumnarScenario
from repro.columnar.streaming import ReservoirSample, StreamingHistogram

__all__ = [
    "COLUMNAR_PROTOCOLS",
    "ColumnarEngine",
    "ColumnarScenario",
    "HAVE_NUMPY",
    "ReservoirSample",
    "StreamingHistogram",
]
