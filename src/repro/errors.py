"""Exception hierarchy used across the repro package.

All library-specific exceptions derive from :class:`ReproError` so that callers can
catch everything raised by this package with a single ``except`` clause while still
being able to distinguish configuration problems from runtime simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro package."""


class ConfigurationError(ReproError):
    """A component, protocol or experiment was configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. event scheduled in the past)."""


class NetworkError(ReproError):
    """A network-level operation failed (unknown endpoint, unbound port, ...)."""


class NatError(ReproError):
    """A NAT-level operation failed (mapping table exhaustion, invalid policy, ...)."""


class ProtocolError(ReproError):
    """A protocol implementation detected a violated invariant."""


class ExperimentError(ReproError):
    """An experiment harness was driven with inconsistent parameters."""


class CapabilityError(ReproError):
    """A protocol was asked for a capability it does not advertise.

    Raised by the deprecated protocol-specific :class:`~repro.workload.Scenario`
    accessors (and by capability-requiring probes) instead of silently returning empty
    results; the message names the missing capability and the generic replacement API.
    """
