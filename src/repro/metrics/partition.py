"""Connectivity metrics: connected components and the biggest-cluster fraction (Fig. 7b)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

Adjacency = Mapping[int, Set[int]]


def connected_components(graph: Adjacency) -> List[Set[int]]:
    """Connected components of the overlay, treating edges as undirected.

    The paper's catastrophic-failure experiment asks how much of the surviving overlay
    remains mutually reachable; undirected connectivity is the measure used in the PSS
    literature it builds on.
    """
    undirected: Dict[int, Set[int]] = {node: set() for node in graph}
    for node, neighbours in graph.items():
        for neighbour in neighbours:
            if neighbour in undirected and neighbour != node:
                undirected[node].add(neighbour)
                undirected[neighbour].add(node)

    seen: Set[int] = set()
    components: List[Set[int]] = []
    for start in undirected:
        if start in seen:
            continue
        component = {start}
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            for neighbour in undirected[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    component.add(neighbour)
                    stack.append(neighbour)
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_cluster_fraction(graph: Adjacency) -> float:
    """Fraction of (surviving) nodes inside the biggest connected cluster.

    This is exactly the y-axis of Figure 7(b): after killing a percentage of nodes, the
    graph passed in contains only the survivors and their view edges towards other
    survivors, and the metric reports ``|biggest component| / |survivors|`` (as a value
    in [0, 1]; the paper plots it as a percentage).
    """
    if not graph:
        return 0.0
    components = connected_components(graph)
    return len(components[0]) / len(graph)


def partition_count(graph: Adjacency) -> int:
    """Number of connected components (1 means the overlay is not partitioned)."""
    if not graph:
        return 0
    return len(connected_components(graph))
