"""Overlay-graph randomness metrics (Figure 6 of the paper).

A peer-sampling service induces a directed overlay graph: there is an edge from node A
to node B if B's descriptor is in A's view(s). The paper (following [6], [7]) judges the
randomness of a PSS by how close three properties of this graph are to those of a random
graph with the same out-degree:

* the **in-degree distribution** (Figure 6a) — should be narrowly concentrated;
* the **average path length** (Figure 6b) — should be short (logarithmic in system size);
* the **clustering coefficient** (Figure 6c) — should be low.

The functions below work on a plain ``{node_id: set(neighbour_ids)}`` adjacency mapping
so they are usable both on live scenarios and on synthetic graphs in tests. Path length
and clustering treat the graph as undirected (the standard convention in the PSS
literature); in-degree uses the directed edges.
"""

from __future__ import annotations

import random
from collections import Counter, deque
from typing import Dict, Iterable, List, Mapping, Optional, Set

Adjacency = Mapping[int, Set[int]]


def in_degrees(graph: Adjacency) -> Dict[int, int]:
    """Number of incoming edges for every node in the (directed) overlay graph."""
    counts: Dict[int, int] = {node: 0 for node in graph}
    for node, neighbours in graph.items():
        for neighbour in neighbours:
            if neighbour == node:
                continue
            if neighbour in counts:
                counts[neighbour] += 1
    return counts


def in_degree_distribution(graph: Adjacency) -> Dict[int, int]:
    """Histogram ``{in_degree: number_of_nodes}`` — the series plotted in Figure 6(a)."""
    return dict(Counter(in_degrees(graph).values()))


def _undirected(graph: Adjacency) -> Dict[int, Set[int]]:
    undirected: Dict[int, Set[int]] = {node: set() for node in graph}
    for node, neighbours in graph.items():
        for neighbour in neighbours:
            if neighbour == node or neighbour not in undirected:
                continue
            undirected[node].add(neighbour)
            undirected[neighbour].add(node)
    return undirected


def average_path_length(
    graph: Adjacency,
    sample_sources: Optional[int] = None,
    rng: Optional[random.Random] = None,
) -> Optional[float]:
    """Mean shortest-path length between reachable node pairs (Figure 6b).

    Parameters
    ----------
    graph:
        Directed adjacency; paths are computed on its undirected version.
    sample_sources:
        If given, BFS is run only from this many randomly chosen source nodes — an
        unbiased estimator of the full average that keeps large experiments tractable
        (all-pairs BFS on 1000 nodes is ~10⁶ visits per measurement instant).
    rng:
        Source of randomness for the sampling; required if ``sample_sources`` is set.

    Returns ``None`` for graphs with fewer than two nodes or no reachable pairs.
    """
    undirected = _undirected(graph)
    nodes = list(undirected)
    if len(nodes) < 2:
        return None
    if sample_sources is not None and sample_sources < len(nodes):
        if rng is None:
            rng = random.Random(0)
        sources: Iterable[int] = rng.sample(nodes, sample_sources)
    else:
        sources = nodes

    total_distance = 0
    total_pairs = 0
    for source in sources:
        distances = _bfs_distances(undirected, source)
        for target, distance in distances.items():
            if target == source:
                continue
            total_distance += distance
            total_pairs += 1
    if total_pairs == 0:
        return None
    return total_distance / total_pairs


def _bfs_distances(undirected: Mapping[int, Set[int]], source: int) -> Dict[int, int]:
    distances = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbour in undirected[node]:
            if neighbour not in distances:
                distances[neighbour] = distances[node] + 1
                queue.append(neighbour)
    return distances


def clustering_coefficient(graph: Adjacency, node: int) -> float:
    """Local clustering coefficient of one node on the undirected overlay."""
    undirected = _undirected(graph)
    return _local_clustering(undirected, node)


def _local_clustering(undirected: Mapping[int, Set[int]], node: int) -> float:
    neighbours = list(undirected.get(node, ()))
    degree = len(neighbours)
    if degree < 2:
        return 0.0
    links = 0
    for i in range(degree):
        for j in range(i + 1, degree):
            if neighbours[j] in undirected[neighbours[i]]:
                links += 1
    return (2.0 * links) / (degree * (degree - 1))


def average_clustering_coefficient(graph: Adjacency) -> Optional[float]:
    """Mean local clustering coefficient over all nodes (Figure 6c)."""
    undirected = _undirected(graph)
    if not undirected:
        return None
    total = sum(_local_clustering(undirected, node) for node in undirected)
    return total / len(undirected)


def degree_statistics(graph: Adjacency) -> Dict[str, float]:
    """Summary statistics of the in-degree distribution (used in reports and tests)."""
    degrees = list(in_degrees(graph).values())
    if not degrees:
        return {"mean": 0.0, "min": 0.0, "max": 0.0, "stddev": 0.0}
    mean = sum(degrees) / len(degrees)
    variance = sum((d - mean) ** 2 for d in degrees) / len(degrees)
    return {
        "mean": mean,
        "min": float(min(degrees)),
        "max": float(max(degrees)),
        "stddev": variance ** 0.5,
    }


def build_overlay_graph(neighbour_map: Mapping[int, Iterable[int]]) -> Dict[int, Set[int]]:
    """Normalise an ``{node: iterable_of_neighbours}`` mapping into adjacency sets.

    Edges pointing at nodes that are not themselves keys of the mapping (e.g. failed
    nodes still present in somebody's view) are dropped — exactly what the paper's
    connectivity analysis after catastrophic failure requires.
    """
    nodes = set(neighbour_map)
    return {
        node: {n for n in neighbours if n in nodes and n != node}
        for node, neighbours in neighbour_map.items()
    }


def out_degrees(graph: Adjacency) -> List[int]:
    """Out-degree of every node (view occupancy); useful as a sanity check in tests."""
    return [len(neighbours) for neighbours in graph.values()]
