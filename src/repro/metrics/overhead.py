"""Protocol-overhead measurement (Figure 7a of the paper).

The paper reports the *average load per node* in bytes per second, split into public and
private nodes, for each protocol. :func:`measure_overhead` wraps the bookkeeping: take a
traffic snapshot at the start of the steady-state window, run the scenario, and compute
the per-class averages over the window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.simulator.monitor import TrafficMonitor, TrafficSnapshot


@dataclass
class OverheadReport:
    """Average per-node traffic load over a measurement window."""

    protocol: str
    window_seconds: float
    public_bytes_per_second: float
    private_bytes_per_second: float
    all_bytes_per_second: float

    def as_row(self) -> Dict[str, float]:
        """The Figure 7(a) row for this protocol."""
        return {
            "public B/s": round(self.public_bytes_per_second, 1),
            "private B/s": round(self.private_bytes_per_second, 1),
            "all B/s": round(self.all_bytes_per_second, 1),
        }


def measure_overhead(
    protocol: str,
    monitor: TrafficMonitor,
    window_start: TrafficSnapshot,
    now_ms: float,
    public_node_ids: Iterable[int],
    private_node_ids: Iterable[int],
) -> OverheadReport:
    """Compute the Figure 7(a) numbers for one protocol run.

    Parameters
    ----------
    protocol:
        Label for the report row ("croupier", "gozar", ...).
    monitor:
        The network's traffic monitor.
    window_start:
        Snapshot taken when the steady-state measurement window began.
    now_ms:
        Current virtual time (end of the window).
    public_node_ids / private_node_ids:
        The live nodes of each class during the window.
    """
    public_ids = set(public_node_ids)
    private_ids = set(private_node_ids)
    by_class = monitor.average_load_by_nat_type(window_start, now_ms, public_ids, private_ids)
    all_ids = public_ids | private_ids
    overall = monitor.average_load_bps(
        window_start, now_ms, node_filter=lambda node_id: node_id in all_ids
    )
    return OverheadReport(
        protocol=protocol,
        window_seconds=(now_ms - window_start.time_ms) / 1000.0,
        public_bytes_per_second=by_class["public"],
        private_bytes_per_second=by_class["private"],
        all_bytes_per_second=overall,
    )
