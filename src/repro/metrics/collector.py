"""Small time-series containers used by the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """A named sequence of (time, value) points.

    The experiments use one series per plotted line (e.g. one per α/γ pair in Figure 1)
    and print them with :mod:`repro.experiments.report`.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def tail_average(self, count: int) -> Optional[float]:
        """Mean of the last ``count`` values (the steady-state figure the reports quote)."""
        if not self.values:
            return None
        window = self.values[-count:]
        return sum(window) / len(window)

    def minimum(self) -> Optional[float]:
        return min(self.values) if self.values else None

    def maximum(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """The value recorded at the latest time not exceeding ``time``."""
        best = None
        for t, v in zip(self.times, self.values):
            if t <= time:
                best = v
            else:
                break
        return best


def merge_series(series: Sequence[TimeSeries]) -> Dict[str, TimeSeries]:
    """Index a collection of series by name (duplicate names keep the last one)."""
    return {s.name: s for s in series}
