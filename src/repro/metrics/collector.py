"""Time-series containers and metric aggregation used by the experiment harnesses.

Besides the per-run :class:`TimeSeries`, this module hosts the aggregation layer the
experiment-matrix runner feeds: per-cell ``{metric: value}`` dicts are summarised into
deterministic statistics (mean, min, max, p50, p90) per metric — per group of cells
(e.g. across seeds of one protocol/scenario/size combination) and overall. Everything
is a pure function of the inputs, so a parallel matrix run aggregates byte-identically
to a sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass
class TimeSeries:
    """A named sequence of (time, value) points.

    The experiments use one series per plotted line (e.g. one per α/γ pair in Figure 1)
    and print them with :mod:`repro.experiments.report`.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def tail_average(self, count: int) -> Optional[float]:
        """Mean of the last ``count`` values (the steady-state figure the reports quote)."""
        if not self.values:
            return None
        window = self.values[-count:]
        return sum(window) / len(window)

    def minimum(self) -> Optional[float]:
        return min(self.values) if self.values else None

    def maximum(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def value_at(self, time: float) -> Optional[float]:
        """The value recorded at the latest time not exceeding ``time``."""
        best = None
        for t, v in zip(self.times, self.values):
            if t <= time:
                best = v
            else:
                break
        return best


def merge_series(series: Sequence[TimeSeries]) -> Dict[str, TimeSeries]:
    """Index a collection of series by name (duplicate names keep the last one)."""
    return {s.name: s for s in series}


# ------------------------------------------------------------------ metric aggregation


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0–100) with linear interpolation between ranks.

    Matches numpy's default ("linear") method; implemented here so the simulation stack
    stays dependency-free. Raises ``ValueError`` on an empty input.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def summarize_values(values: Sequence[float]) -> Dict[str, float]:
    """The standard summary the matrix aggregates report for one metric."""
    if not values:
        raise ValueError("summary of empty sequence")
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
    }


def aggregate_metrics(
    rows: Sequence[Mapping[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Summarise a list of per-cell metric dicts, metric by metric.

    Metrics missing from some rows are summarised over the rows that have them (the
    ``count`` field records how many did) — e.g. ω̂ estimation error only exists for
    Croupier cells.
    """
    by_metric: Dict[str, List[float]] = {}
    for row in rows:
        for name, value in row.items():
            by_metric.setdefault(name, []).append(float(value))
    return {name: summarize_values(values) for name, values in sorted(by_metric.items())}


def aggregate_groups(
    grouped_rows: Mapping[str, Sequence[Mapping[str, float]]],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Apply :func:`aggregate_metrics` to every named group of metric rows."""
    return {name: aggregate_metrics(rows) for name, rows in sorted(grouped_rows.items())}


def aggregate_group_histograms(
    grouped_histograms: Mapping[str, Sequence[Mapping[str, Mapping[int, int]]]],
) -> Dict[str, Dict[str, Dict[int, int]]]:
    """Merge per-cell histogram dicts group by group (bin-wise sums across seeds).

    Input shape: ``{group: [cell_histograms, ...]}`` where each ``cell_histograms`` is
    the ``{name: {bin: count}}`` mapping of one cell's
    :class:`~repro.metrics.payload.MetricPayload`. Output keeps only groups that
    recorded at least one histogram.
    """
    from repro.metrics.payload import merge_histograms

    merged: Dict[str, Dict[str, Dict[int, int]]] = {}
    for group, cell_histograms in sorted(grouped_histograms.items()):
        names = sorted({name for histograms in cell_histograms for name in histograms})
        if not names:
            continue
        merged[group] = {
            name: merge_histograms(
                [histograms[name] for histograms in cell_histograms if name in histograms]
            )
            for name in names
        }
    return merged
