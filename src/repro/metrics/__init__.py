"""Observation and analysis utilities used by the experiments.

Nothing in this package participates in the protocols: these are *measurement* tools,
the simulation-side equivalent of the paper's evaluation scripts.

* :mod:`~repro.metrics.estimation` — average/maximum estimation error over time
  (Figures 1–5).
* :mod:`~repro.metrics.graph` — overlay graph statistics: in-degree distribution,
  average path length, clustering coefficient (Figure 6).
* :mod:`~repro.metrics.partition` — size of the biggest connected cluster (Figure 7b).
* :mod:`~repro.metrics.overhead` — average per-node traffic load by NAT class
  (Figure 7a).
* :mod:`~repro.metrics.collector` — small time-series containers shared by the
  experiment harnesses.
"""

from repro.metrics.collector import TimeSeries
from repro.metrics.estimation import EstimationErrorSample, EstimationErrorSeries
from repro.metrics.graph import (
    average_clustering_coefficient,
    average_path_length,
    in_degree_distribution,
    in_degrees,
)
from repro.metrics.overhead import OverheadReport, measure_overhead
from repro.metrics.partition import connected_components, largest_cluster_fraction

__all__ = [
    "EstimationErrorSample",
    "EstimationErrorSeries",
    "OverheadReport",
    "TimeSeries",
    "average_clustering_coefficient",
    "average_path_length",
    "connected_components",
    "in_degree_distribution",
    "in_degrees",
    "largest_cluster_fraction",
    "measure_overhead",
]
