"""Observation and analysis utilities used by the experiments.

Nothing in this package participates in the protocols: these are *measurement* tools,
the simulation-side equivalent of the paper's evaluation scripts.

* :mod:`~repro.metrics.estimation` — average/maximum estimation error over time
  (Figures 1–5).
* :mod:`~repro.metrics.graph` — overlay graph statistics: in-degree distribution,
  average path length, clustering coefficient (Figure 6).
* :mod:`~repro.metrics.partition` — size of the biggest connected cluster (Figure 7b).
* :mod:`~repro.metrics.overhead` — average per-node traffic load by NAT class
  (Figure 7a).
* :mod:`~repro.metrics.collector` — small time-series containers shared by the
  experiment harnesses, plus the deterministic aggregation the matrix runner uses.
* :mod:`~repro.metrics.payload` — the typed per-cell :class:`MetricPayload`
  (scalars + named histograms + named series, JSON-round-trippable).
* :mod:`~repro.metrics.probes` — pluggable capability-gated :class:`MetricProbe`
  objects that produce the payloads.
"""

from repro.metrics.collector import TimeSeries
from repro.metrics.estimation import EstimationErrorSample, EstimationErrorSeries
from repro.metrics.payload import MetricPayload, histogram_statistics, merge_histograms
from repro.metrics.probes import (
    CoreProbe,
    EstimationProbe,
    GraphProbe,
    MetricProbe,
    OverheadProbe,
    ProbeContext,
    collect_ratio_estimates,
    default_probes,
    run_probes,
)
from repro.metrics.graph import (
    average_clustering_coefficient,
    average_path_length,
    in_degree_distribution,
    in_degrees,
)
from repro.metrics.overhead import OverheadReport, measure_overhead
from repro.metrics.partition import connected_components, largest_cluster_fraction

__all__ = [
    "CoreProbe",
    "EstimationErrorSample",
    "EstimationErrorSeries",
    "EstimationProbe",
    "GraphProbe",
    "MetricPayload",
    "MetricProbe",
    "OverheadProbe",
    "OverheadReport",
    "ProbeContext",
    "TimeSeries",
    "average_clustering_coefficient",
    "average_path_length",
    "collect_ratio_estimates",
    "connected_components",
    "default_probes",
    "histogram_statistics",
    "in_degree_distribution",
    "in_degrees",
    "largest_cluster_fraction",
    "measure_overhead",
    "merge_histograms",
    "run_probes",
]
