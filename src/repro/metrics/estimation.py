"""Estimation-error metrics (Section VII-B of the paper, equations 10–13).

The paper reports two error metrics per experiment:

* the **average estimation error** — the mean over all nodes of the difference between
  the true ratio ω and the node's estimate (equations 12–13);
* the **maximum estimation error** — the largest such difference over all nodes
  (equations 10–11, a Kolmogorov–Smirnov-style worst case).

Both are plotted on log axes in the paper, i.e. as magnitudes; this module therefore
uses absolute differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence


def average_error(true_ratio: float, estimates: Iterable[Optional[float]]) -> Optional[float]:
    """Mean absolute deviation of the given estimates from the true ratio.

    ``None`` estimates (nodes with no information yet) are skipped, mirroring the
    paper's rule of excluding nodes until they have executed two rounds.
    """
    deviations = [abs(true_ratio - e) for e in estimates if e is not None]
    if not deviations:
        return None
    return sum(deviations) / len(deviations)


def max_error(true_ratio: float, estimates: Iterable[Optional[float]]) -> Optional[float]:
    """Largest absolute deviation of any node's estimate from the true ratio."""
    deviations = [abs(true_ratio - e) for e in estimates if e is not None]
    if not deviations:
        return None
    return max(deviations)


@dataclass
class EstimationErrorSample:
    """One measurement instant: the true ratio plus the error statistics across nodes."""

    time_ms: float
    true_ratio: float
    avg_error: Optional[float]
    max_error: Optional[float]
    nodes_measured: int


@dataclass
class EstimationErrorSeries:
    """The full error trajectory of one experiment configuration (one plotted line)."""

    name: str
    samples: List[EstimationErrorSample] = field(default_factory=list)

    def record(
        self,
        time_ms: float,
        true_ratio: float,
        estimates: Sequence[Optional[float]],
    ) -> EstimationErrorSample:
        known = [e for e in estimates if e is not None]
        sample = EstimationErrorSample(
            time_ms=time_ms,
            true_ratio=true_ratio,
            avg_error=average_error(true_ratio, known),
            max_error=max_error(true_ratio, known),
            nodes_measured=len(known),
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------ summaries

    def __len__(self) -> int:
        return len(self.samples)

    def avg_error_series(self) -> List[float]:
        return [s.avg_error for s in self.samples if s.avg_error is not None]

    def max_error_series(self) -> List[float]:
        return [s.max_error for s in self.samples if s.max_error is not None]

    def final_avg_error(self, tail: int = 10) -> Optional[float]:
        """Mean of the last ``tail`` average-error samples (the converged value)."""
        series = self.avg_error_series()
        if not series:
            return None
        window = series[-tail:]
        return sum(window) / len(window)

    def final_max_error(self, tail: int = 10) -> Optional[float]:
        series = self.max_error_series()
        if not series:
            return None
        window = series[-tail:]
        return sum(window) / len(window)

    def convergence_time(self, threshold: float) -> Optional[float]:
        """First time at which the average error dropped below ``threshold`` and stayed there.

        Used to compare convergence speed across history-window sizes (Figures 1–2).
        Returns ``None`` if the threshold is never reached (or held) by the end.
        """
        below_since: Optional[float] = None
        for sample in self.samples:
            if sample.avg_error is None:
                continue
            if sample.avg_error < threshold:
                if below_since is None:
                    below_since = sample.time_ms
            else:
                below_since = None
        return below_since
