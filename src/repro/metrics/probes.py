"""Pluggable per-cell metric probes.

A :class:`MetricProbe` measures one family of quantities on a finished (or running)
scenario and records them into a :class:`~repro.metrics.payload.MetricPayload`. Probes
declare the :mod:`~repro.membership.capabilities` they need; the matrix layer runs each
probe only against protocols that advertise those capabilities, which is how e.g. the
estimation-error metrics exist for Croupier cells but not Cyclon cells — without any
``isinstance`` probing of concrete protocol classes.

The built-in set (:func:`default_probes`) covers what the paper's figures plot:

* :class:`CoreProbe` — population, ground-truth ratio, fidelity counters;
* :class:`EstimationProbe` — ω̂ estimation error statistics and the error series
  (requires :class:`~repro.membership.capabilities.RatioEstimating`);
* :class:`GraphProbe` — in-degree distribution (histogram + statistics), average path
  length, clustering coefficient, biggest-cluster fraction (Figures 6 and 7b);
* :class:`OverheadProbe` — per-class traffic load over a measurement window
  (Figure 7a).

Custom probes are ordinary objects: subclass :class:`MetricProbe`, pass them to
``measure_cell(..., probes=...)`` or into a registered scenario kind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Type

from repro.membership.capabilities import (
    Capability,
    OverlaySampling,
    RatioEstimating,
    capability_name,
)
from repro.metrics.payload import MetricPayload


def collect_ratio_estimates(scenario, min_rounds: int = 2) -> List[Optional[float]]:
    """Every live ratio-estimating node's current estimate (protocol-agnostic).

    Nodes that have executed fewer than ``min_rounds`` rounds are excluded, exactly as
    in the paper ("evaluation metrics for new nodes ... are not included until they
    have executed 2 rounds"). Returns ``[]`` when the scenario's protocol does not
    estimate ratios — callers that consider that an error should go through the
    :class:`~repro.workload.Scenario` capability API instead.
    """
    return [
        service.estimated_ratio()
        for service in scenario.services_with(RatioEstimating)
        if service.current_round >= min_rounds
    ]


@dataclass
class ProbeContext:
    """Cross-probe inputs the cell runner gathered while driving the scenario."""

    #: Estimation-error series recorded round by round (estimating protocols only).
    error_series: Optional[object] = None
    #: Traffic snapshot taken at the start of the overhead measurement window.
    overhead_window: Optional[object] = None
    #: Label for the metrics RNG derivation (path-length source sampling).
    rng_label: str = "matrix-metrics"
    #: BFS sources used to estimate the average path length.
    path_length_sources: int = 30
    #: Percentiles reported for the per-cell estimation-error series.
    series_percentiles: Tuple[Tuple[int, str], ...] = ((50, "p50"), (90, "p90"))


class MetricProbe:
    """One pluggable measurement; subclasses set ``name``/``requires`` and implement
    :meth:`measure`."""

    #: Identifier used in docs and error messages.
    name: str = "probe"
    #: Capability classes the scenario's protocol must advertise for this probe to run.
    requires: Tuple[Type[Capability], ...] = ()

    def supported_by(self, plugin) -> bool:
        return all(plugin.supports(capability) for capability in self.requires)

    def missing_capabilities(self, plugin) -> List[str]:
        return [
            capability_name(capability)
            for capability in self.requires
            if not plugin.supports(capability)
        ]

    def measure(self, scenario, payload: MetricPayload, context: ProbeContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        needs = ", ".join(capability_name(c) for c in self.requires) or "nothing"
        return f"{type(self).__name__}(name={self.name}, requires={needs})"


class CoreProbe(MetricProbe):
    """Population size, ground-truth ratio and simulator fidelity counters."""

    name = "core"

    def measure(self, scenario, payload: MetricPayload, context: ProbeContext) -> None:
        payload.set_scalar("live_nodes", float(scenario.live_count()))
        payload.set_scalar("true_ratio", scenario.true_ratio())
        payload.set_scalar("events_executed", float(scenario.sim.events_executed))
        payload.set_scalar("packets_sent", float(scenario.network.packets_sent))


class EstimationProbe(MetricProbe):
    """ω̂ estimation error: current mean estimate plus error-series statistics.

    The scalar names match the pre-payload aggregates (``est_mean``,
    ``est_err_avg_final``, ``est_err_max_final``, ``est_err_avg_p50/p90``); the full
    average-error trajectory additionally lands in the payload as the
    ``est_err_avg`` series.
    """

    name = "estimation"
    requires = (RatioEstimating,)

    def measure(self, scenario, payload: MetricPayload, context: ProbeContext) -> None:
        from repro.metrics.collector import percentile

        estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
        if estimates:
            payload.set_scalar("est_mean", sum(estimates) / len(estimates))
        series = context.error_series
        if series is None or not len(series):
            return
        avg_series = series.avg_error_series()
        final_avg = series.final_avg_error()
        final_max = series.final_max_error()
        if final_avg is not None:
            payload.set_scalar("est_err_avg_final", final_avg)
        if final_max is not None:
            payload.set_scalar("est_err_max_final", final_max)
        for q, label in context.series_percentiles:
            if avg_series:
                payload.set_scalar(f"est_err_avg_{label}", percentile(avg_series, q))
        payload.set_series(
            "est_err_avg",
            [
                (sample.time_ms, sample.avg_error)
                for sample in series.samples
                if sample.avg_error is not None
            ],
        )


class GraphProbe(MetricProbe):
    """Overlay randomness (Figure 6) and connectivity (Figure 7b) metrics.

    Records the in-degree distribution both as summary scalars and as the
    ``in_degree`` histogram — the series the paper's Figure 6(a) plots. When the
    scenario runs a heterogeneous gateway population (a
    :class:`~repro.nat.mixture.NatMixture`), the distribution is additionally broken
    down per NAT class as ``in_degree_<class>`` histograms (``public``, ``upnp`` and
    one per sampled profile name) with ``indeg_mean_<class>`` scalars — the paper's
    question of whether hard-to-traverse NAT types are underrepresented in views.
    Homogeneous cells carry no breakdown, so pre-mixture payloads are unchanged.
    """

    name = "graph"
    requires = (OverlaySampling,)

    def measure(self, scenario, payload: MetricPayload, context: ProbeContext) -> None:
        from collections import Counter

        from repro.metrics.graph import (
            average_clustering_coefficient,
            average_path_length,
            build_overlay_graph,
            degree_statistics,
            in_degree_distribution,
            in_degrees,
        )
        from repro.metrics.partition import largest_cluster_fraction

        graph = build_overlay_graph(scenario.overlay_graph())
        if not graph:
            return
        stats = degree_statistics(graph)
        payload.set_scalar("indeg_mean", stats["mean"])
        payload.set_scalar("indeg_stddev", stats["stddev"])
        payload.set_scalar("indeg_max", stats["max"])
        payload.set_scalar("biggest_cluster_fraction", largest_cluster_fraction(graph))
        payload.set_histogram("in_degree", in_degree_distribution(graph))
        if getattr(scenario.config, "nat_mixture", None) is not None:
            degrees = in_degrees(graph)
            for label, node_ids in sorted(scenario.nat_class_members().items()):
                class_degrees = [degrees[n] for n in node_ids if n in degrees]
                if not class_degrees:
                    continue
                payload.set_histogram(f"in_degree_{label}", dict(Counter(class_degrees)))
                payload.set_scalar(
                    f"indeg_mean_{label}", sum(class_degrees) / len(class_degrees)
                )
        metrics_rng = scenario.sim.derive_rng(context.rng_label)
        path = average_path_length(
            graph, sample_sources=context.path_length_sources, rng=metrics_rng
        )
        clustering = average_clustering_coefficient(graph)
        if path is not None:
            payload.set_scalar("path_length", path)
        if clustering is not None:
            payload.set_scalar("clustering", clustering)


class OverheadProbe(MetricProbe):
    """Figure 7(a) per-class load over the measurement window the runner opened."""

    name = "overhead"

    def measure(self, scenario, payload: MetricPayload, context: ProbeContext) -> None:
        from repro.metrics.overhead import measure_overhead

        window_start = context.overhead_window
        if window_start is None or scenario.now <= window_start.time_ms:
            return
        report = measure_overhead(
            protocol=scenario.config.protocol,
            monitor=scenario.monitor,
            window_start=window_start,
            now_ms=scenario.now,
            public_node_ids=scenario.live_public_ids(),
            private_node_ids=scenario.live_private_ids(),
        )
        payload.set_scalar("public_bps", report.public_bytes_per_second)
        payload.set_scalar("private_bps", report.private_bytes_per_second)
        payload.set_scalar("all_bps", report.all_bytes_per_second)


def default_probes() -> Tuple[MetricProbe, ...]:
    """The standard probe set every matrix cell runs (capability-gated per protocol)."""
    return (CoreProbe(), EstimationProbe(), GraphProbe(), OverheadProbe())


def run_probes(
    scenario,
    context: Optional[ProbeContext] = None,
    probes: Optional[Sequence[MetricProbe]] = None,
) -> MetricPayload:
    """Run every applicable probe against ``scenario`` and return the merged payload.

    Probes whose required capabilities the scenario's protocol does not advertise are
    skipped (that absence *is* the measurement — e.g. no ω̂ error for Cyclon).
    """
    context = context or ProbeContext()
    payload = MetricPayload()
    plugin = scenario.plugin
    for probe in probes if probes is not None else default_probes():
        if not probe.supported_by(plugin):
            continue
        contribution = MetricPayload()
        probe.measure(scenario, contribution, context)
        payload.merge(contribution)
    return payload
