"""The typed per-cell metric payload the experiment matrix records.

A :class:`MetricPayload` is what one executed matrix cell produces: flat scalar
metrics (what PR 2's aggregates already carried), plus **named histograms** (integer
bins → counts, e.g. the Figure 6(a) in-degree distribution) and **named series**
((time, value) pairs, e.g. the estimation-error trajectory). Payloads are pure data —
JSON-round-trippable with a canonical, key-sorted representation — so the runner's
byte-identical-aggregate contract extends to histogram- and series-carrying cells.

The payloads are produced by :class:`~repro.metrics.probes.MetricProbe` objects; see
that module for the pluggable measurement side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.errors import ExperimentError

#: JSON-representable scalar metric value.
Scalar = Union[int, float]
#: One histogram: integer bin -> non-negative count.
Histogram = Dict[int, int]
#: One series: (time_ms, value) points in recording order.
Series = List[Tuple[float, float]]


@dataclass
class MetricPayload:
    """Everything one matrix cell measured.

    ``scalars`` feed the per-group mean/min/max/p50/p90 aggregation (and the CSV
    artifact); ``histograms`` are summed bin-wise across the seeds of a cell group;
    ``series`` are carried per cell for downstream plotting and are never aggregated.
    """

    scalars: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)
    series: Dict[str, Series] = field(default_factory=dict)

    # ------------------------------------------------------------------ recording

    def set_scalar(self, name: str, value: Scalar) -> None:
        self.scalars[name] = float(value)

    def set_histogram(self, name: str, histogram: Mapping[int, int]) -> None:
        self.histograms[name] = {int(bin_): int(count) for bin_, count in histogram.items()}

    def set_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        self.series[name] = [(float(t), float(v)) for t, v in points]

    def merge(self, other: "MetricPayload") -> None:
        """Fold another payload in; duplicate names are an error (probes must not
        silently overwrite each other's measurements)."""
        for kind, mine, theirs in (
            ("scalar", self.scalars, other.scalars),
            ("histogram", self.histograms, other.histograms),
            ("series", self.series, other.series),
        ):
            for name in theirs:
                if name in mine:
                    raise ExperimentError(f"duplicate {kind} metric {name!r} in payload merge")
            mine.update(theirs)

    # ------------------------------------------------------------------ JSON round trip

    def to_json_dict(self) -> Dict:
        """Canonical JSON form: sorted names, string histogram bins (JSON keys must be
        strings), series as [time, value] pairs. ``from_json_dict`` inverts exactly."""
        return {
            "scalars": {name: self.scalars[name] for name in sorted(self.scalars)},
            "histograms": {
                name: {str(bin_): count for bin_, count in sorted(self.histograms[name].items())}
                for name in sorted(self.histograms)
            },
            "series": {
                name: [[t, v] for t, v in self.series[name]] for name in sorted(self.series)
            },
        }

    @classmethod
    def from_json_dict(cls, data: Mapping) -> "MetricPayload":
        payload = cls()
        for name, value in data.get("scalars", {}).items():
            payload.set_scalar(name, value)
        for name, histogram in data.get("histograms", {}).items():
            payload.set_histogram(name, {int(bin_): count for bin_, count in histogram.items()})
        for name, points in data.get("series", {}).items():
            payload.set_series(name, [(t, v) for t, v in points])
        return payload

    @classmethod
    def from_scalars(cls, metrics: Mapping[str, Scalar]) -> "MetricPayload":
        """Adapt a plain ``{metric: number}`` dict (the pre-payload cell-runner
        contract, still accepted from custom scenario kinds)."""
        payload = cls()
        for name, value in metrics.items():
            payload.set_scalar(name, value)
        return payload

    # ------------------------------------------------------------------ queries

    def is_empty(self) -> bool:
        return not (self.scalars or self.histograms or self.series)

    def __contains__(self, name: str) -> bool:
        return name in self.scalars or name in self.histograms or name in self.series


def merge_histograms(histograms: Sequence[Mapping[int, int]]) -> Histogram:
    """Bin-wise sum of histograms — how a cell group's seeds aggregate (the combined
    in-degree distribution over all runs, as the paper's Figure 6(a) plots it)."""
    merged: Histogram = {}
    for histogram in histograms:
        for bin_, count in histogram.items():
            bin_ = int(bin_)
            merged[bin_] = merged.get(bin_, 0) + int(count)
    return dict(sorted(merged.items()))


def histogram_statistics(histogram: Mapping[int, int]) -> Dict[str, float]:
    """Mean / stddev / max over a histogram's underlying values (weighted by count)."""
    total = sum(histogram.values())
    if total == 0:
        return {"mean": 0.0, "stddev": 0.0, "min": 0.0, "max": 0.0, "count": 0.0}
    mean = sum(bin_ * count for bin_, count in histogram.items()) / total
    variance = sum(count * (bin_ - mean) ** 2 for bin_, count in histogram.items()) / total
    return {
        "mean": mean,
        "stddev": variance ** 0.5,
        "min": float(min(histogram)),
        "max": float(max(histogram)),
        "count": float(total),
    }
