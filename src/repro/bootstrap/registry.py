"""The directory of public nodes behind the bootstrap service."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.net.address import NodeAddress


class BootstrapRegistry:
    """Keeps track of the public nodes a bootstrap server can hand out.

    Only **public** nodes are registered: the whole point of the bootstrap step is to
    give a joining node addresses it can reach without NAT traversal. Private nodes are
    silently ignored by :meth:`register`, so callers can register every node without
    filtering first.
    """

    def __init__(self, rng: Optional[random.Random] = None) -> None:
        self._public_nodes: Dict[int, NodeAddress] = {}
        self.rng = rng or random.Random(0)

    def register(self, address: NodeAddress) -> bool:
        """Add a node to the directory. Returns ``True`` if it was accepted (public)."""
        if not address.is_public:
            return False
        self._public_nodes[address.node_id] = address
        return True

    def unregister(self, node_id: int) -> None:
        """Remove a node (because it left or failed)."""
        self._public_nodes.pop(node_id, None)

    def sample(self, count: int, exclude_id: Optional[int] = None) -> List[NodeAddress]:
        """Return up to ``count`` random public nodes, excluding ``exclude_id``."""
        candidates = [
            address
            for node_id, address in self._public_nodes.items()
            if node_id != exclude_id
        ]
        if len(candidates) <= count:
            return list(candidates)
        return self.rng.sample(candidates, count)

    def all_public(self) -> List[NodeAddress]:
        """Every registered public node (used by NAT-id servers as a node provider)."""
        return list(self._public_nodes.values())

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._public_nodes

    def __len__(self) -> int:
        return len(self._public_nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BootstrapRegistry(public_nodes={len(self)})"
