"""Bootstrap service: how a joining node learns its first public nodes.

The paper assumes a bootstrap server that returns a handful of public nodes to a joining
node (it is used both by the NAT-type identification protocol and to seed the initial
public view). This package provides:

* :class:`~repro.bootstrap.registry.BootstrapRegistry` — the server-side directory of
  currently known public nodes;
* :class:`~repro.bootstrap.server.BootstrapServer` — a component serving the directory
  over request/response messages;
* :class:`~repro.bootstrap.server.BootstrapClient` — the node-side component that sends
  the request and hands the returned addresses to a callback.

Large-scale experiments may also read the registry directly when building a scenario
(``direct_bootstrap=True`` in the scenario builder), which skips the two-message
exchange without changing protocol behaviour; the message path is exercised by its own
tests and by the quickstart example.
"""

from repro.bootstrap.registry import BootstrapRegistry
from repro.bootstrap.server import (
    BootstrapClient,
    BootstrapRequest,
    BootstrapResponse,
    BootstrapServer,
)

__all__ = [
    "BootstrapClient",
    "BootstrapRegistry",
    "BootstrapRequest",
    "BootstrapResponse",
    "BootstrapServer",
]
