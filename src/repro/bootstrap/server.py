"""Message-based bootstrap server and client components."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.bootstrap.registry import BootstrapRegistry
from repro.constants import BOOTSTRAP_CLIENT_PORT, BOOTSTRAP_PORT
from repro.net.address import Endpoint, NodeAddress
from repro.simulator.component import Component
from repro.simulator.host import Host
from repro.simulator.message import Message, Packet


@dataclass
class BootstrapRequest(Message):
    """A joining node asking the bootstrap server for public nodes."""

    origin: NodeAddress
    count: int = 5

    def payload_size(self) -> int:
        return self.origin.wire_size + 1


@dataclass
class BootstrapResponse(Message):
    """The bootstrap server's answer: a random subset of known public nodes."""

    nodes: Tuple[NodeAddress, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return sum(node.wire_size for node in self.nodes)


class BootstrapServer(Component):
    """Serves the :class:`BootstrapRegistry` over the simulated network.

    The server also *learns* from requests: a public node that contacts the bootstrap
    server is added to the registry, so the directory fills up as nodes join — the same
    behaviour a deployed tracker-style bootstrap service exhibits.
    """

    def __init__(
        self,
        host: Host,
        registry: Optional[BootstrapRegistry] = None,
        port: int = BOOTSTRAP_PORT,
    ) -> None:
        super().__init__(host, port, name="BootstrapServer")
        self.registry = registry if registry is not None else BootstrapRegistry()
        self.requests_served = 0
        self.subscribe(BootstrapRequest, self._on_request)

    def _on_request(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, BootstrapRequest)
        self.registry.register(message.origin)
        nodes = self.registry.sample(message.count, exclude_id=message.origin.node_id)
        self.requests_served += 1
        self.send(packet.source, BootstrapResponse(nodes=tuple(nodes)))


class BootstrapClient(Component):
    """Node-side component: one request, one callback with the returned addresses."""

    def __init__(
        self,
        host: Host,
        server_endpoint: Endpoint,
        port: int = BOOTSTRAP_CLIENT_PORT,
    ) -> None:
        super().__init__(host, port, name="BootstrapClient")
        self.server_endpoint = server_endpoint
        self.last_response: Optional[Tuple[NodeAddress, ...]] = None
        self._callback: Optional[Callable[[Tuple[NodeAddress, ...]], None]] = None
        self.subscribe(BootstrapResponse, self._on_response)

    def request(
        self,
        count: int = 5,
        callback: Optional[Callable[[Tuple[NodeAddress, ...]], None]] = None,
    ) -> None:
        """Ask the bootstrap server for up to ``count`` public nodes."""
        if not self.started:
            self.start()
        self._callback = callback
        self.send(self.server_endpoint, BootstrapRequest(origin=self.address, count=count))

    def _on_response(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, BootstrapResponse)
        self.last_response = message.nodes
        if self._callback is not None:
            callback, self._callback = self._callback, None
            callback(message.nodes)
