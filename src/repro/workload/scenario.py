"""The scenario builder: wires simulator, network, NATs, bootstrap and protocol nodes.

A :class:`Scenario` is the in-process equivalent of the paper's Kompics experiment
set-ups, and it is **orchestration only**: it owns the simulator and network, creates
public and private nodes on demand (allocating addresses and NAT boxes), seeds their
initial views from the bootstrap registry, and runs/kills nodes. The protocol comes
from the :class:`~repro.membership.plugin.ProtocolPlugin` registry, and protocol
*features* are reached through capability queries — measurements live in
:mod:`repro.metrics.probes`, not here.

Example
-------
>>> from repro.membership.capabilities import RatioEstimating
>>> from repro.workload import Scenario, ScenarioConfig
>>> scenario = Scenario(ScenarioConfig(protocol="croupier", seed=7))
>>> scenario.populate(n_public=10, n_private=40)
>>> scenario.run_rounds(30)
>>> 0.0 < scenario.true_ratio() < 1.0
True
>>> scenario.supports(RatioEstimating)
True
>>> estimators = scenario.services_with(RatioEstimating)
>>> len(estimators) == scenario.live_count()
True
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type, Union

from repro.bootstrap.registry import BootstrapRegistry
from repro.constants import DEFAULT_ROUND_MS
from repro.errors import ConfigurationError, ExperimentError
from repro.membership.base import PeerSamplingService, PssConfig
from repro.membership.capabilities import Capability
from repro.membership.plugin import ProtocolPlugin, get_plugin, protocol_names
from repro.nat.mixture import NatMixture
from repro.nat.nat_box import NatBox
from repro.nat.types import NatProfile, profile_name
from repro.nat.upnp import UpnpNatBox
from repro.natid.protocol import NatIdentificationClient, NatIdentificationServer
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.core import Simulator
from repro.simulator.host import Host
from repro.simulator.latency import ConstantLatency, KingLatencyModel, LatencyModel, UniformLatency
from repro.simulator.loss import BernoulliLoss, LossModel, NoLoss
from repro.simulator.message import Message
from repro.simulator.monitor import TrafficMonitor, TrafficSnapshot
from repro.simulator.network import Network
from repro.workload.ipalloc import IpAllocator


#: Registered execution backends a :class:`ScenarioConfig` may select.
ENGINES = ("object", "columnar")


@dataclass
class ScenarioConfig:
    """Everything needed to build a scenario.

    Attributes
    ----------
    protocol:
        One of ``"croupier"``, ``"cyclon"``, ``"nylon"``, ``"gozar"``, ``"arrg"``.
    seed:
        Master seed; fixes every random decision in the run.
    pss_config:
        Protocol configuration prototype shared by every node. ``None`` selects the
        protocol's default configuration (which matches the paper's setup).
    nat_profile:
        NAT behaviour for private nodes' gateways. The default (restricted cone) is the
        most common consumer NAT behaviour. Ignored when ``nat_mixture`` is set.
    nat_mixture:
        Optional heterogeneous gateway population: each private node's gateway samples
        its :class:`~repro.nat.types.NatProfile` from this
        :class:`~repro.nat.mixture.NatMixture`, deterministically from a stream derived
        from the scenario seed (the paper evaluates against its *measured* NAT-type
        distribution, registered as the ``"paper"`` mixture). Takes precedence over
        ``nat_profile``.
    latency:
        ``"king"`` (default), ``"constant"``, ``"uniform"``, or a ready-made
        :class:`~repro.simulator.latency.LatencyModel`.
    loss_rate:
        Uniform packet-loss probability (0 disables loss).
    bootstrap_seed_size:
        How many public nodes the bootstrap hands to a joining node for its initial
        view. ``None`` means "the protocol's view size".
    identify_nat_types:
        If ``True``, joining nodes run the distributed NAT-type identification protocol
        (Algorithm 1) to discover their class instead of being told the ground truth.
    upnp_fraction:
        Fraction of gateway-equipped nodes whose NAT supports UPnP IGD; those nodes map
        their ports explicitly and behave (and are counted) as public nodes.
    engine:
        Execution backend: ``"object"`` (this module's per-node component simulation,
        the default) or ``"columnar"`` (:mod:`repro.columnar` — flat-array state and
        batched rounds for 10⁵–10⁶-node cells). Build through
        :func:`create_scenario` to get the right class for the configured engine.
    """

    protocol: str = "croupier"
    seed: int = 42
    pss_config: Optional[PssConfig] = None
    nat_profile: NatProfile = field(default_factory=NatProfile.restricted_cone)
    nat_mixture: Optional[NatMixture] = None
    latency: Union[str, LatencyModel] = "king"
    loss_rate: float = 0.0
    bootstrap_seed_size: Optional[int] = None
    identify_nat_types: bool = False
    upnp_fraction: float = 0.0
    engine: str = "object"

    def validate(self) -> None:
        if self.protocol not in protocol_names():
            raise ConfigurationError(
                f"unknown protocol {self.protocol!r}; expected one of {protocol_names()}"
            )
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ConfigurationError(f"loss_rate out of range: {self.loss_rate}")
        if not 0.0 <= self.upnp_fraction <= 1.0:
            raise ConfigurationError(f"upnp_fraction out of range: {self.upnp_fraction}")
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )


@dataclass
class NodeHandle:
    """Everything the scenario knows about one node."""

    node_id: int
    host: Host
    pss: PeerSamplingService
    natbox: Optional[NatBox]
    is_public: bool
    joined_at_ms: float
    natid_client: Optional[NatIdentificationClient] = None
    #: Canonical name of the gateway's NAT profile (``None`` for un-NATed nodes).
    nat_profile_name: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.host.alive

    @property
    def address(self) -> NodeAddress:
        return self.host.address


def create_scenario(config: Optional[ScenarioConfig] = None):
    """Build the scenario class the config's ``engine`` selects.

    ``"object"`` returns a :class:`Scenario`; ``"columnar"`` returns a
    :class:`repro.columnar.scenario.ColumnarScenario` (imported lazily — the
    columnar package imports this module for :class:`ScenarioConfig`). Both expose
    the same populate/run/capability/churn surface, so callers built against this
    factory run unchanged on either backend.
    """
    config = config or ScenarioConfig()
    config.validate()
    if config.engine == "columnar":
        from repro.columnar.scenario import ColumnarScenario

        return ColumnarScenario(config)
    return Scenario(config)


class Scenario:
    """A complete simulated deployment of one peer-sampling protocol."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.config.validate()
        if self.config.engine != "object":
            raise ConfigurationError(
                f"Scenario executes engine='object' configs; build engine="
                f"{self.config.engine!r} scenarios through create_scenario()"
            )
        self.sim = Simulator(seed=self.config.seed)
        self.monitor = TrafficMonitor()
        self.network = Network(
            self.sim,
            latency_model=self._build_latency_model(),
            loss_model=self._build_loss_model(),
            monitor=self.monitor,
        )
        self.registry = BootstrapRegistry(rng=self.sim.derive_rng("bootstrap"))
        self.ip_alloc = IpAllocator()
        self.nodes: Dict[int, NodeHandle] = {}
        self.rng = self.sim.derive_rng("scenario")
        self._next_node_id = 1
        self.plugin: ProtocolPlugin = get_plugin(self.config.protocol)
        self._pss_config = self.config.pss_config or self.plugin.default_config()
        self._pss_config.validate()
        # Mixture sampling runs on its own derived stream so that enabling a mixture
        # never perturbs the scenario RNG (and a mixture-free run consumes nothing).
        self._nat_mixture_rng = (
            self.sim.derive_rng("nat-mixture")
            if self.config.nat_mixture is not None
            else None
        )
        self._fixed_profile_name = profile_name(self.config.nat_profile)

    # ------------------------------------------------------------------ construction

    def _build_latency_model(self) -> LatencyModel:
        latency = self.config.latency
        if isinstance(latency, LatencyModel):
            return latency
        if latency == "king":
            return KingLatencyModel(seed=self.config.seed)
        if latency == "constant":
            return ConstantLatency(50.0)
        if latency == "uniform":
            return UniformLatency(10.0, 150.0, seed=self.config.seed)
        raise ConfigurationError(f"unknown latency model {latency!r}")

    def _build_loss_model(self) -> LossModel:
        if self.config.loss_rate > 0.0:
            return BernoulliLoss(self.config.loss_rate)
        return NoLoss()

    # ------------------------------------------------------------------ properties

    @property
    def round_ms(self) -> float:
        return getattr(self._pss_config, "round_ms", DEFAULT_ROUND_MS)

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def bootstrap_seed_size(self) -> int:
        if self.config.bootstrap_seed_size is not None:
            return self.config.bootstrap_seed_size
        return getattr(self._pss_config, "view_size", 10)

    # ------------------------------------------------------------------ node creation

    def add_node(self, public: bool) -> NodeHandle:
        """Create, register and start one node right now (at the current virtual time)."""
        if public:
            return self._add_public_node()
        return self._add_private_node()

    def add_public_node(self) -> NodeHandle:
        return self._add_public_node()

    def add_private_node(self) -> NodeHandle:
        return self._add_private_node()

    def populate(self, n_public: int, n_private: int) -> None:
        """Create ``n_public`` + ``n_private`` nodes immediately (no join process).

        Public nodes are created first so that private nodes find bootstrap seeds, then
        creation alternates to avoid a systematic join-order bias.
        """
        if n_public < 0 or n_private < 0:
            raise ExperimentError("node counts must be non-negative")
        initial_public = min(n_public, max(1, self.bootstrap_seed_size))
        for _ in range(initial_public):
            self._add_public_node()
        remaining = [True] * (n_public - initial_public) + [False] * n_private
        self.rng.shuffle(remaining)
        for is_public in remaining:
            self.add_node(is_public)

    def _allocate_node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def _add_public_node(self) -> NodeHandle:
        node_id = self._allocate_node_id()
        ip = self.ip_alloc.public_ip()
        address = NodeAddress(
            node_id=node_id,
            endpoint=Endpoint(ip, self._pss_config.port),
            nat_type=NatType.PUBLIC,
        )
        host = Host(self.sim, self.network, address, natbox=None)
        return self._finish_node(host, natbox=None, ground_truth_public=True)

    def _gateway_profile(self) -> tuple:
        """The (name, profile) the next created gateway runs — fixed or mixture-drawn."""
        if self.config.nat_mixture is not None:
            return self.config.nat_mixture.sample(self._nat_mixture_rng)
        return self._fixed_profile_name, self.config.nat_profile

    def _add_private_node(self) -> NodeHandle:
        node_id = self._allocate_node_id()
        external_ip = self.ip_alloc.nat_external_ip()
        internal_ip = self.ip_alloc.private_ip()
        use_upnp = (
            self.config.upnp_fraction > 0.0
            and self.rng.random() < self.config.upnp_fraction
        )
        gateway_profile_name, gateway_profile = self._gateway_profile()
        if use_upnp:
            natbox: NatBox = UpnpNatBox(external_ip, profile=gateway_profile)
        else:
            natbox = NatBox(external_ip, profile=gateway_profile)
        nat_type = NatType.PUBLIC if use_upnp else NatType.PRIVATE
        address = NodeAddress(
            node_id=node_id,
            endpoint=Endpoint(external_ip, self._pss_config.port),
            nat_type=nat_type,
            private_endpoint=Endpoint(internal_ip, self._pss_config.port),
        )
        host = Host(self.sim, self.network, address, natbox=natbox)
        if use_upnp:
            # A UPnP-capable gateway lets the node map its protocol port explicitly,
            # making it reachable like a public node.
            natbox.add_port_mapping(
                Endpoint(internal_ip, self._pss_config.port),
                external_port=self._pss_config.port,
                now=self.sim.now,
            )
        return self._finish_node(
            host,
            natbox=natbox,
            ground_truth_public=use_upnp,
            nat_profile_name=gateway_profile_name,
        )

    def _finish_node(
        self,
        host: Host,
        natbox: Optional[NatBox],
        ground_truth_public: bool,
        nat_profile_name: Optional[str] = None,
    ) -> NodeHandle:
        if self.config.identify_nat_types:
            handle = self._finish_node_with_identification(host, natbox, ground_truth_public)
        else:
            handle = self._start_pss(host, natbox, ground_truth_public)
        handle.nat_profile_name = nat_profile_name if natbox is not None else None
        self.nodes[host.node_id] = handle
        return handle

    def _start_pss(
        self, host: Host, natbox: Optional[NatBox], ground_truth_public: bool
    ) -> NodeHandle:
        pss = self.plugin.create(host, self._pss_config)
        seeds = self.registry.sample(self.bootstrap_seed_size, exclude_id=host.node_id)
        pss.initialize_view(seeds)
        if host.address.is_public:
            self.registry.register(host.address)
        pss.start()
        return NodeHandle(
            node_id=host.node_id,
            host=host,
            pss=pss,
            natbox=natbox,
            is_public=host.address.is_public,
            joined_at_ms=self.sim.now,
        )

    def _finish_node_with_identification(
        self, host: Host, natbox: Optional[NatBox], ground_truth_public: bool
    ) -> NodeHandle:
        """Join path that runs Algorithm 1 before starting the peer-sampling service."""
        supports_upnp = isinstance(natbox, UpnpNatBox)
        # Public nodes also serve the identification protocol for others.
        if ground_truth_public or natbox is None:
            NatIdentificationServer(host, public_node_provider=self.registry.all_public).start()
        client = NatIdentificationClient(host, supports_upnp_igd=supports_upnp)
        handle = NodeHandle(
            node_id=host.node_id,
            host=host,
            pss=None,  # type: ignore[arg-type]  # installed when identification completes
            natbox=natbox,
            is_public=ground_truth_public,
            joined_at_ms=self.sim.now,
            natid_client=client,
        )

        bootstrap_nodes = self.registry.sample(2, exclude_id=host.node_id)

        def finish(result) -> None:
            nat_type = result.nat_type
            if (
                nat_type is not NatType.PUBLIC
                and ground_truth_public
                and (not bootstrap_nodes or len(self.registry) < 3)
            ):
                # Algorithm 1 needs at least one bootstrap public node to test against
                # and one further public node (outside the client's bootstrap list) to
                # send the ForwardTest, so the first few public nodes cannot be
                # identified by the protocol alone. Real deployments provision these
                # well-known bootstrap nodes by hand; we mirror that by trusting the
                # ground truth until three public nodes are registered.
                nat_type = NatType.PUBLIC
            host.address = host.address.with_nat_type(nat_type)
            started = self._start_pss(host, natbox, ground_truth_public)
            handle.pss = started.pss
            handle.is_public = host.address.is_public

        client.identify(bootstrap_nodes, callback=finish)
        return handle

    # ------------------------------------------------------------------ running

    def run_ms(self, duration_ms: float) -> None:
        """Advance the simulation by ``duration_ms`` of virtual time."""
        self.sim.run_for(duration_ms)

    def run_rounds(self, rounds: float) -> None:
        """Advance the simulation by the given number of gossip rounds."""
        self.run_ms(rounds * self.round_ms)

    # ------------------------------------------------------------------ queries

    def live_handles(self) -> List[NodeHandle]:
        return [h for h in self.nodes.values() if h.alive and h.pss is not None]

    def live_public_ids(self) -> List[int]:
        return [h.node_id for h in self.live_handles() if h.address.is_public]

    def live_private_ids(self) -> List[int]:
        return [h.node_id for h in self.live_handles() if h.address.is_private]

    def live_count(self) -> int:
        return len(self.live_handles())

    def true_ratio(self) -> float:
        """The ground-truth ω = |public| / (|public| + |private|) over live nodes."""
        live = self.live_handles()
        if not live:
            return 0.0
        public = sum(1 for h in live if h.address.is_public)
        return public / len(live)

    # ------------------------------------------------------------------ capabilities

    def supports(self, capability: Type[Capability]) -> bool:
        """Whether this scenario's protocol advertises ``capability``."""
        return self.plugin.supports(capability)

    def require(self, capability: Type[Capability], context: str = "") -> None:
        """Raise :class:`~repro.errors.CapabilityError` unless the protocol advertises
        ``capability`` (the error names both the capability and ``context``)."""
        self.plugin.require(capability, context=context)

    def services_with(self, capability: Type[Capability]) -> List[PeerSamplingService]:
        """Every live service implementing ``capability``, in node-creation order.

        Returns ``[]`` when the protocol does not advertise the capability — the
        non-raising query the metric probes use. Call :meth:`require` first when the
        absence is an error.
        """
        return [h.pss for h in self.live_handles() if isinstance(h.pss, capability)]

    def handles_with(self, capability: Type[Capability]) -> List[NodeHandle]:
        """Like :meth:`services_with` but returning the full node handles."""
        return [h for h in self.live_handles() if isinstance(h.pss, capability)]

    def overlay_graph(self) -> Dict[int, set]:
        """Directed adjacency over live nodes (edges to dead nodes are dropped)."""
        live = {h.node_id for h in self.live_handles()}
        graph: Dict[int, set] = {}
        for handle in self.live_handles():
            neighbours = {
                a.node_id
                for a in handle.pss.neighbor_addresses()
                if a.node_id in live and a.node_id != handle.node_id
            }
            graph[handle.node_id] = neighbours
        return graph

    def traffic_snapshot(self) -> TrafficSnapshot:
        return self.monitor.snapshot(self.sim.now)

    def message_size_of(self, message: Message) -> int:
        """Convenience for tests: the wire size the monitor would account for a message."""
        return message.wire_size

    # ------------------------------------------------------------------ failures & churn

    def kill(self, node_id: int) -> None:
        handle = self.nodes.get(node_id)
        if handle is None or not handle.alive:
            return
        handle.host.kill()
        self.registry.unregister(node_id)

    def kill_random_fraction(
        self,
        fraction: float,
        only: Optional[Callable[[NodeHandle], bool]] = None,
    ) -> List[int]:
        """Kill a random ``fraction`` of live nodes (optionally filtered); returns their ids."""
        if not 0.0 <= fraction <= 1.0:
            raise ExperimentError(f"fraction out of range: {fraction}")
        candidates = [h for h in self.live_handles() if only is None or only(h)]
        count = int(round(fraction * len(candidates)))
        victims = self.rng.sample(candidates, min(count, len(candidates)))
        for handle in victims:
            self.kill(handle.node_id)
        return [h.node_id for h in victims]

    def churn_step(self, fraction: float) -> int:
        """One churn round: replace ``fraction`` of each node class with fresh nodes.

        Uses probabilistic rounding so that small fractions of small populations still
        produce the right *expected* churn rate. Returns the number of nodes replaced.
        """
        replaced = 0
        for is_public, ids in (
            (True, self.live_public_ids()),
            (False, self.live_private_ids()),
        ):
            expected = fraction * len(ids)
            count = int(math.floor(expected))
            if self.rng.random() < (expected - count):
                count += 1
            if count == 0:
                continue
            victims = self.rng.sample(ids, min(count, len(ids)))
            for node_id in victims:
                self.kill(node_id)
                self.add_node(public=is_public)
                replaced += 1
        return replaced

    # ------------------------------------------------------------------ NAT classes

    def nat_class_members(self) -> Dict[str, List[int]]:
        """Live node ids grouped by NAT class, in node-creation order.

        Classes are ``"public"`` (no gateway), ``"upnp"`` (gateway with an explicit
        UPnP port mapping — publicly reachable) and the canonical profile name of the
        gateway's NAT behaviour otherwise (``restricted_cone``, ``symmetric``, ...).
        This is what the per-NAT-type metric breakdowns key on when a
        :class:`~repro.nat.mixture.NatMixture` is in play.
        """
        classes: Dict[str, List[int]] = {}
        for handle in self.live_handles():
            if handle.natbox is None:
                label = "public"
            elif isinstance(handle.natbox, UpnpNatBox):
                label = "upnp"
            else:
                label = handle.nat_profile_name or self._fixed_profile_name
            classes.setdefault(label, []).append(handle.node_id)
        return classes

    # ------------------------------------------------------------------ snapshots

    def clone(self) -> "Scenario":
        """An independent deep copy of the whole deployment at the current instant.

        The clone carries every piece of state — virtual clock, pending events, RNG
        streams, views, NAT bindings — so running the clone produces exactly the
        trajectory the original would have produced, and the original stays pristine.
        Harnesses that branch several destructive treatments off one warmed-up system
        (e.g. the catastrophic-failure sweep) clone once per treatment instead of
        rebuilding and re-warming the population every time.
        """
        return copy.deepcopy(self)

    # ------------------------------------------------------------------ protocol access

    def pss_of(self, node_id: int) -> PeerSamplingService:
        handle = self.nodes.get(node_id)
        if handle is None or handle.pss is None:
            raise ExperimentError(f"no peer-sampling service for node {node_id}")
        return handle.pss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario(protocol={self.config.protocol}, live={self.live_count()}, "
            f"t={self.sim.now / 1000.0:.1f}s)"
        )
