"""Deterministic IP address allocation for simulated hosts and NAT boxes.

Address ranges (purely conventional, but keeping them disjoint makes traces readable
and lets tests assert on the class of an address):

* ``1.x.y.z``   — public hosts
* ``2.x.y.z``   — NAT/firewall external addresses
* ``10.x.y.z``  — private (internal) host addresses
* ``3.x.y.z``   — infrastructure (bootstrap server, observers)
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.net.address import format_ipv4


class IpAllocator:
    """Hands out unique IP addresses per category."""

    _RANGES = {
        "public": 1,
        "nat": 2,
        "infra": 3,
        "private": 10,
    }
    #: Each /8 gives us 2^24 - 2 usable host numbers; simulations use far fewer.
    _MAX_PER_RANGE = (1 << 24) - 2

    def __init__(self) -> None:
        self._counters = {category: 0 for category in self._RANGES}

    def _allocate(self, category: str) -> str:
        counter = self._counters[category]
        if counter >= self._MAX_PER_RANGE:
            raise ConfigurationError(f"IP range exhausted for category {category!r}")
        self._counters[category] = counter + 1
        prefix = self._RANGES[category]
        # Host numbers start at 1 so we never produce a .0.0.0 network address.
        return format_ipv4((prefix << 24) | (counter + 1))

    def public_ip(self) -> str:
        """A globally reachable address for a public host."""
        return self._allocate("public")

    def nat_external_ip(self) -> str:
        """The external (public-facing) address of a NAT box."""
        return self._allocate("nat")

    def private_ip(self) -> str:
        """An internal address for a host behind a NAT."""
        return self._allocate("private")

    def infrastructure_ip(self) -> str:
        """An address for non-protocol infrastructure (bootstrap server, observers)."""
        return self._allocate("infra")

    def allocated(self, category: str) -> int:
        """How many addresses have been handed out in ``category`` (testing aid)."""
        return self._counters[category]
