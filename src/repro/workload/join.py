"""Poisson join processes (the paper's node-arrival model).

Section VII-B: "1000 public nodes and 4000 private nodes join the system following a
Poisson distribution with an inter-arrival time of 50 and 12.5 milliseconds". A Poisson
arrival process has exponentially distributed inter-arrival times, which is what this
module schedules on the scenario's simulator.

:class:`PoissonJoinProcess` is the execution engine of the declarative
:class:`~repro.workload.events.PoissonJoin` timeline event — experiments describe
arrivals as timeline data (:mod:`repro.workload.timeline`).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import ExperimentError
from repro.workload.scenario import Scenario


class PoissonJoinProcess:
    """Schedules the arrival of a fixed number of nodes of one class.

    Parameters
    ----------
    scenario:
        The scenario nodes join.
    public:
        Whether this process creates public or private nodes.
    count:
        Total number of nodes to create.
    mean_interarrival_ms:
        Mean of the exponential inter-arrival time.
    start_ms:
        Virtual time of the first possible arrival (arrivals accumulate from here).
    rng:
        Random stream drawing the inter-arrival times. ``None`` (the default, and
        what every single-process-per-class setup uses) derives the canonical
        ``("join", <class>)`` stream from the scenario seed; timelines running
        *several* join processes of the same class pass distinct derived streams so
        the processes stay independent.
    """

    def __init__(
        self,
        scenario: Scenario,
        public: bool,
        count: int,
        mean_interarrival_ms: float,
        start_ms: float = 0.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if count < 0:
            raise ExperimentError(f"count must be non-negative, got {count}")
        if mean_interarrival_ms <= 0:
            raise ExperimentError(
                f"mean_interarrival_ms must be positive, got {mean_interarrival_ms}"
            )
        self.scenario = scenario
        self.public = public
        self.count = count
        self.mean_interarrival_ms = mean_interarrival_ms
        self.start_ms = start_ms
        self.joined = 0
        self.rng = rng or scenario.sim.derive_rng(
            "join", "public" if public else "private"
        )
        self._schedule_arrivals()

    def _schedule_arrivals(self) -> None:
        time = self.start_ms
        for _ in range(self.count):
            time += self.rng.expovariate(1.0 / self.mean_interarrival_ms)
            self.scenario.sim.schedule_at(max(time, self.scenario.sim.now), self._join_one)
        self.expected_last_arrival_ms = time

    def _join_one(self) -> None:
        self.scenario.add_node(public=self.public)
        self.joined += 1

    @property
    def finished(self) -> bool:
        return self.joined >= self.count


def paper_join_processes(
    scenario: Scenario,
    n_public: int = 1000,
    n_private: int = 4000,
    public_interarrival_ms: float = 50.0,
    private_interarrival_ms: float = 12.5,
    start_ms: float = 0.0,
) -> tuple:
    """The exact join workload of the paper's estimation experiments (Figures 1–2).

    Returns the two :class:`PoissonJoinProcess` objects (public, private). With the
    default parameters both populations finish joining after roughly 50 seconds —
    "All 5000 nodes have joined the system by time t=51" in the paper.
    """
    public = PoissonJoinProcess(
        scenario, public=True, count=n_public,
        mean_interarrival_ms=public_interarrival_ms, start_ms=start_ms,
    )
    private = PoissonJoinProcess(
        scenario, public=False, count=n_private,
        mean_interarrival_ms=private_interarrival_ms, start_ms=start_ms,
    )
    return public, private


def scaled_join_processes(
    scenario: Scenario,
    total_nodes: int,
    public_ratio: float,
    join_window_ms: Optional[float] = None,
) -> tuple:
    """Join processes for an arbitrary system size, keeping the paper's join window.

    ``join_window_ms`` defaults to ~50 seconds (the paper's window); inter-arrival means
    are derived so that both classes finish joining within that window regardless of the
    system size (this is how the Figure 3 system-size sweep is set up: "nodes join the
    system following a Poisson distribution with an inter-arrival time of 10 ms" for the
    1000-node system and proportionally otherwise).
    """
    if not 0.0 < public_ratio < 1.0:
        raise ExperimentError(f"public_ratio must be in (0, 1), got {public_ratio}")
    if total_nodes <= 0:
        raise ExperimentError(f"total_nodes must be positive, got {total_nodes}")
    window = join_window_ms if join_window_ms is not None else 50_000.0
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = max(0, total_nodes - n_public)
    public = PoissonJoinProcess(
        scenario, public=True, count=n_public,
        mean_interarrival_ms=window / max(1, n_public),
    )
    private = PoissonJoinProcess(
        scenario, public=False, count=n_private,
        mean_interarrival_ms=window / max(1, n_private),
    )
    return public, private
