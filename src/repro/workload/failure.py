"""Catastrophic failure: a large fraction of nodes disappears at one instant (Fig. 7b).

:func:`catastrophic_failure` is what the declarative
:class:`~repro.workload.events.FailureSpike` timeline event applies when the
measurement loop crosses its round boundary
(:meth:`~repro.workload.timeline.InstalledTimeline.fire_boundary`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ExperimentError
from repro.metrics.graph import build_overlay_graph
from repro.metrics.partition import largest_cluster_fraction
from repro.workload.scenario import Scenario


@dataclass
class FailureOutcome:
    """What happened when the failure was injected, plus the immediate connectivity."""

    killed_node_ids: List[int]
    survivors: int
    biggest_cluster_fraction: float


def catastrophic_failure(
    scenario: Scenario,
    failure_fraction: float,
    settle_rounds: int = 0,
) -> FailureOutcome:
    """Kill ``failure_fraction`` of all live nodes at the current instant.

    Parameters
    ----------
    scenario:
        The running scenario.
    failure_fraction:
        Fraction of live nodes (public and private alike, chosen uniformly) to kill.
    settle_rounds:
        Optional number of gossip rounds to run *after* the failure before measuring
        connectivity (the paper measures the biggest cluster of the surviving overlay;
        running a few rounds lets in-flight messages drain but also lets the protocol
        start repairing, so the default is 0 = measure immediately).

    Returns
    -------
    FailureOutcome
        Includes the biggest-cluster fraction over the surviving nodes — the Figure 7(b)
        y-value for this failure percentage.
    """
    if not 0.0 <= failure_fraction <= 1.0:
        raise ExperimentError(f"failure_fraction out of range: {failure_fraction}")
    killed = scenario.kill_random_fraction(failure_fraction)
    if settle_rounds > 0:
        scenario.run_rounds(settle_rounds)
    graph = build_overlay_graph(scenario.overlay_graph())
    return FailureOutcome(
        killed_node_ids=killed,
        survivors=scenario.live_count(),
        biggest_cluster_fraction=largest_cluster_fraction(graph),
    )
