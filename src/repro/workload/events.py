"""Typed workload-timeline events: the vocabulary scenario dynamics are written in.

Each event class is a frozen, validated, JSON-round-trippable dataclass describing one
piece of workload dynamics — a Poisson join ramp, a churn phase, a failure spike — in
*rounds* of virtual time. Events are registered in :data:`EVENT_TYPES` (mirroring the
protocol registry in :mod:`repro.membership.plugin`), so a serialized timeline names
its events by ``type`` and new event kinds are a registration, not an edit to the
scenario builder.

Events come in two execution flavours:

* **scheduled** events (:class:`PoissonJoin`, :class:`ChurnPhase`,
  :class:`RatioGrowth`, :class:`JoinBurst`, :class:`LossBurst`, :class:`Partition`)
  compile onto the scenario's simulator when the timeline is installed, usually by
  instantiating the corresponding process in :mod:`repro.workload.join` /
  :mod:`~repro.workload.churn` / :mod:`~repro.workload.ratio`;
* **boundary** events (:class:`FailureSpike`) fire *between* gossip rounds, applied by
  the driving measurement loop through
  :meth:`~repro.workload.timeline.InstalledTimeline.fire_boundary` — exactly where the
  imperative harnesses used to call :func:`~repro.workload.failure.catastrophic_failure`
  by hand, so rewriting a harness as a timeline changes no event ordering.

Randomness: events that wrap a legacy process inherit that process's seed-derived
stream (``("join", <class>)``, the scenario RNG for churn and failures), keeping
timeline-built experiments bit-identical to their imperative predecessors; events
without a legacy counterpart draw from ``("timeline", <index>, <type>)`` streams
derived per event position, so adding one event never perturbs another.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Callable, ClassVar, Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError, ExperimentError
from repro.workload.churn import ChurnProcess
from repro.workload.join import PoissonJoinProcess
from repro.workload.ratio import RatioGrowthProcess
from repro.workload.scenario import Scenario


#: Event fields measured in rounds of virtual time — what
#: :meth:`WorkloadEvent.scaled` multiplies when a preset authored for a longer
#: horizon is compressed onto a shorter cell. Rates (``fraction_per_round``) and
#: millisecond-valued fields (``interval_ms``) deliberately stay fixed.
ROUND_SCALED_FIELDS = (
    "start_round",
    "stop_round",
    "at_round",
    "spread_rounds",
    "ramp_rounds",
)


@dataclass(frozen=True)
class CompileContext:
    """What an event sees when a timeline is installed onto a scenario."""

    scenario: Scenario
    #: Position of the event in its timeline (stable across runs — the RNG label).
    index: int

    def derive_rng(self, event: "WorkloadEvent", *labels: object) -> random.Random:
        """A reproducible stream owned by this event alone."""
        return self.scenario.sim.derive_rng("timeline", self.index, event.type, *labels)


class WorkloadEvent:
    """Base class of all timeline events (subclasses are frozen dataclasses).

    Subclasses set the class-level ``type`` registry key, implement
    :meth:`validate` and — for scheduled events — :meth:`compile`; boundary events
    override :attr:`boundary_round` and :meth:`apply` instead.
    """

    #: Registry key, also the ``"type"`` field of the serialized form.
    type: ClassVar[str] = ""

    # ------------------------------------------------------------------ contract

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ExperimentError` on out-of-range fields."""

    def compile(self, ctx: CompileContext) -> Optional[object]:
        """Schedule this event onto ``ctx.scenario``; returns the process handle (or
        ``None`` when the event schedules nothing). Boundary events keep the default
        no-op — they fire through :meth:`apply`."""
        return None

    @property
    def boundary_round(self) -> Optional[float]:
        """The round boundary this event fires at (``None`` for scheduled events)."""
        return None

    @property
    def onset_round(self) -> Optional[float]:
        """The round at which this event first acts — ``at_round`` for boundary
        events, ``start_round`` for scheduled ones (``None`` when the event carries
        neither). :meth:`Timeline.install` compares this against the cell's
        measurement horizon to warn about events that could never fire."""
        boundary = self.boundary_round
        if boundary is not None:
            return boundary
        start = getattr(self, "start_round", getattr(self, "at_round", None))
        return float(start) if start is not None else None

    def apply(self, scenario: Scenario) -> Optional[object]:
        """Execute a boundary event; returns its outcome object."""
        raise ExperimentError(f"event {self.type!r} is not a boundary event")

    def scaled(self, factor: float) -> "WorkloadEvent":
        """A copy with every round-valued field multiplied by ``factor``.

        Round-valued means onsets, stops and round-counted durations
        (:data:`ROUND_SCALED_FIELDS`); rates and millisecond-valued fields are
        left alone. This is how a timeline preset authored for one measurement
        horizon compresses onto a shorter one while keeping its shape — a churn
        wave over the middle third of the run stays over the middle third.
        Returns ``self`` when the event carries no round-valued fields.
        """
        if factor <= 0.0:
            raise ExperimentError(f"scale factor must be positive, got {factor}")
        changes: Dict[str, float] = {}
        for field in fields(self):  # type: ignore[arg-type]
            if field.name not in ROUND_SCALED_FIELDS:
                continue
            value = getattr(self, field.name)
            if value is not None:
                changes[field.name] = float(value) * factor
        if not changes:
            return self
        return replace(self, **changes)  # type: ignore[type-var]

    # ------------------------------------------------------------------ serialization

    def to_json_dict(self) -> Dict[str, object]:
        """The event as plain JSON data: ``type`` plus every dataclass field."""
        data: Dict[str, object] = {"type": self.type}
        for field in fields(self):  # type: ignore[arg-type]
            data[field.name] = getattr(self, field.name)
        return data

    @staticmethod
    def from_json_dict(data: Dict[str, object]) -> "WorkloadEvent":
        """Rebuild a registered event from its JSON form (inverse of
        :meth:`to_json_dict`; unknown types and unknown fields fail loudly)."""
        payload = dict(data)
        type_name = payload.pop("type", None)
        if not isinstance(type_name, str) or type_name not in EVENT_TYPES:
            raise ConfigurationError(
                f"unknown workload event type {type_name!r}; registered: "
                f"{event_type_names()}"
            )
        cls = EVENT_TYPES[type_name]
        try:
            event = cls(**payload)
        except TypeError as error:
            raise ConfigurationError(
                f"bad fields for workload event {type_name!r}: {error}"
            ) from None
        event.validate()
        return event


#: The global event-type registry, filled by the ``@register_event`` decorations below.
EVENT_TYPES: Dict[str, Type[WorkloadEvent]] = {}


def register_event(cls: Type[WorkloadEvent]) -> Type[WorkloadEvent]:
    """Class decorator registering an event type under its ``type`` key."""
    if not cls.type:
        raise ConfigurationError(f"event class {cls.__name__} declares no type key")
    if cls.type in EVENT_TYPES:
        raise ConfigurationError(f"workload event type {cls.type!r} already registered")
    EVENT_TYPES[cls.type] = cls
    return cls


def event_type_names() -> List[str]:
    return sorted(EVENT_TYPES)


def _as_float(value: object, field_name: str) -> float:
    """Coerce JSON numbers to float so parse → serialize is canonical (61 == 61.0)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExperimentError(f"{field_name} must be a number, got {value!r}")
    return float(value)


def _as_int(value: object, field_name: str) -> int:
    """Coerce integral JSON numbers to int (``100.0`` → ``100``); anything else —
    a fractional count would crash ``range()`` deep inside a cell — fails loudly
    at construction time."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ExperimentError(f"{field_name} must be an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise ExperimentError(f"{field_name} must be an integer, got {value!r}")
        return int(value)
    return value


# ---------------------------------------------------------------------- join events


@register_event
@dataclass(frozen=True)
class PoissonJoin(WorkloadEvent):
    """A fixed number of one node class joins following a Poisson arrival process
    (the paper's Section VII-B workload; compiles to
    :class:`~repro.workload.join.PoissonJoinProcess`)."""

    type: ClassVar[str] = "poisson_join"

    public: bool
    count: int
    mean_interarrival_ms: float
    start_round: float = 0.0
    #: ``""`` uses the canonical per-class ``("join", <class>)`` stream (what every
    #: single-process-per-class experiment, and therefore the legacy bit-identical
    #: builders, use); set a distinct label when one timeline runs several Poisson
    #: joins of the same class.
    stream: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "count", _as_int(self.count, "count"))
        object.__setattr__(
            self, "mean_interarrival_ms",
            _as_float(self.mean_interarrival_ms, "mean_interarrival_ms"),
        )
        object.__setattr__(self, "start_round", _as_float(self.start_round, "start_round"))

    def validate(self) -> None:
        if self.count < 0:
            raise ExperimentError(f"count must be non-negative, got {self.count}")
        if self.mean_interarrival_ms <= 0:
            raise ExperimentError(
                f"mean_interarrival_ms must be positive, got {self.mean_interarrival_ms}"
            )
        if self.start_round < 0:
            raise ExperimentError(f"start_round must be non-negative: {self.start_round}")

    def compile(self, ctx: CompileContext) -> Optional[object]:
        scenario = ctx.scenario
        rng = ctx.derive_rng(self, self.stream) if self.stream else None
        return PoissonJoinProcess(
            scenario,
            public=self.public,
            count=self.count,
            mean_interarrival_ms=self.mean_interarrival_ms,
            start_ms=self.start_round * scenario.round_ms,
            rng=rng,
        )


@register_event
@dataclass(frozen=True)
class JoinBurst(WorkloadEvent):
    """A flash crowd: many nodes join at one instant (or spread over a few rounds).

    ``count`` joins an absolute number of nodes; ``fraction`` joins that fraction of
    the population live at ``at_round`` (exactly one of the two must be positive).
    Each joiner is public with probability ``public_share``; arrival offsets and class
    draws come from the event's own seed-derived stream.
    """

    type: ClassVar[str] = "join_burst"

    at_round: float
    count: int = 0
    fraction: float = 0.0
    public_share: float = 0.2
    spread_rounds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "count", _as_int(self.count, "count"))
        for name in ("at_round", "fraction", "public_share", "spread_rounds"):
            object.__setattr__(self, name, _as_float(getattr(self, name), name))

    def validate(self) -> None:
        if self.at_round < 0:
            raise ExperimentError(f"at_round must be non-negative: {self.at_round}")
        if self.count < 0:
            raise ExperimentError(f"count must be non-negative, got {self.count}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ExperimentError(f"fraction out of range: {self.fraction}")
        if (self.count > 0) == (self.fraction > 0.0):
            raise ExperimentError(
                "join_burst needs exactly one of count or fraction to be positive"
            )
        if not 0.0 <= self.public_share <= 1.0:
            raise ExperimentError(f"public_share out of range: {self.public_share}")
        if self.spread_rounds < 0:
            raise ExperimentError(
                f"spread_rounds must be non-negative: {self.spread_rounds}"
            )

    def compile(self, ctx: CompileContext) -> Optional[object]:
        scenario = ctx.scenario
        rng = ctx.derive_rng(self)

        def fire() -> None:
            joining = self.count or int(round(self.fraction * scenario.live_count()))
            spread_ms = self.spread_rounds * scenario.round_ms
            for _ in range(joining):
                public = rng.random() < self.public_share
                if spread_ms > 0:
                    scenario.sim.schedule(rng.random() * spread_ms, scenario.add_node, public)
                else:
                    scenario.add_node(public)

        return scenario.sim.schedule_at(
            max(self.at_round * scenario.round_ms, scenario.sim.now), fire
        )


# ---------------------------------------------------------------------- churn & ratio


@register_event
@dataclass(frozen=True)
class ChurnPhase(WorkloadEvent):
    """Steady-state churn over a window (Figure 5), with an optional linear onset ramp.

    Compiles to :class:`~repro.workload.churn.ChurnProcess`; a zero-fraction phase
    schedules nothing at all.
    """

    type: ClassVar[str] = "churn_phase"

    fraction_per_round: float
    start_round: float = 0.0
    stop_round: Optional[float] = None
    ramp_rounds: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "fraction_per_round",
            _as_float(self.fraction_per_round, "fraction_per_round"),
        )
        object.__setattr__(self, "start_round", _as_float(self.start_round, "start_round"))
        object.__setattr__(self, "ramp_rounds", _as_float(self.ramp_rounds, "ramp_rounds"))
        if self.stop_round is not None:
            object.__setattr__(self, "stop_round", _as_float(self.stop_round, "stop_round"))

    def validate(self) -> None:
        if not 0.0 <= self.fraction_per_round <= 1.0:
            raise ExperimentError(
                f"fraction_per_round out of range: {self.fraction_per_round}"
            )
        if self.start_round < 0:
            raise ExperimentError(f"start_round must be non-negative: {self.start_round}")
        if self.stop_round is not None and self.stop_round <= self.start_round:
            raise ExperimentError(
                f"churn stop_round={self.stop_round} must be after "
                f"start_round={self.start_round}"
            )
        if self.ramp_rounds < 0:
            raise ExperimentError(f"ramp_rounds must be non-negative: {self.ramp_rounds}")

    def compile(self, ctx: CompileContext) -> Optional[object]:
        if self.fraction_per_round == 0.0:
            return None
        scenario = ctx.scenario
        return ChurnProcess(
            scenario,
            fraction_per_round=self.fraction_per_round,
            start_ms=self.start_round * scenario.round_ms,
            stop_ms=(
                None if self.stop_round is None
                else self.stop_round * scenario.round_ms
            ),
            ramp_rounds=self.ramp_rounds,
        )


@register_event
@dataclass(frozen=True)
class RatioGrowth(WorkloadEvent):
    """Public nodes added at a constant rate, raising ω (the Figure 2 dynamics;
    compiles to :class:`~repro.workload.ratio.RatioGrowthProcess`)."""

    type: ClassVar[str] = "ratio_growth"

    count: int
    start_round: float = 0.0
    interval_ms: float = 42.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "count", _as_int(self.count, "count"))
        object.__setattr__(self, "start_round", _as_float(self.start_round, "start_round"))
        object.__setattr__(self, "interval_ms", _as_float(self.interval_ms, "interval_ms"))

    def validate(self) -> None:
        if self.count < 0:
            raise ExperimentError(f"count must be non-negative, got {self.count}")
        if self.start_round < 0:
            raise ExperimentError(f"start_round must be non-negative: {self.start_round}")
        if self.interval_ms <= 0:
            raise ExperimentError(f"interval_ms must be positive, got {self.interval_ms}")

    def compile(self, ctx: CompileContext) -> Optional[object]:
        if self.count == 0:
            return None
        scenario = ctx.scenario
        return RatioGrowthProcess(
            scenario,
            start_ms=self.start_round * scenario.round_ms,
            interval_ms=self.interval_ms,
            count=self.count,
        )


# ---------------------------------------------------------------------- failures


@register_event
@dataclass(frozen=True)
class FailureSpike(WorkloadEvent):
    """Catastrophic failure: a fraction of all live nodes dies at a round boundary
    (Figure 7b). A *boundary* event — it fires between rounds, exactly where the
    imperative harness called :func:`~repro.workload.failure.catastrophic_failure`,
    and its outcome (survivors, biggest surviving cluster) is recorded on the
    installed timeline."""

    type: ClassVar[str] = "failure_spike"

    at_round: float
    fraction: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "at_round", _as_float(self.at_round, "at_round"))
        object.__setattr__(self, "fraction", _as_float(self.fraction, "fraction"))

    def validate(self) -> None:
        if self.at_round < 0:
            raise ExperimentError(f"at_round must be non-negative: {self.at_round}")
        if not 0.0 <= self.fraction <= 1.0:
            raise ExperimentError(f"fraction out of range: {self.fraction}")

    @property
    def boundary_round(self) -> Optional[float]:
        return self.at_round

    def apply(self, scenario: Scenario) -> object:
        from repro.workload.failure import catastrophic_failure

        return catastrophic_failure(scenario, self.fraction)


# ---------------------------------------------------------------------- link dynamics


@register_event
@dataclass(frozen=True)
class LossBurst(WorkloadEvent):
    """A window of elevated uniform packet loss (a lossy backbone episode): the
    network's loss model is swapped for :class:`~repro.simulator.loss.BernoulliLoss`
    at ``start_round`` and restored at ``stop_round``."""

    type: ClassVar[str] = "loss_burst"

    start_round: float
    stop_round: float
    loss_rate: float

    def __post_init__(self) -> None:
        for name in ("start_round", "stop_round", "loss_rate"):
            object.__setattr__(self, name, _as_float(getattr(self, name), name))

    def validate(self) -> None:
        if self.start_round < 0:
            raise ExperimentError(f"start_round must be non-negative: {self.start_round}")
        if self.stop_round <= self.start_round:
            raise ExperimentError(
                f"loss stop_round={self.stop_round} must be after "
                f"start_round={self.start_round}"
            )
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ExperimentError(f"loss_rate out of range: {self.loss_rate}")

    def compile(self, ctx: CompileContext) -> Optional[object]:
        from repro.simulator.loss import BernoulliLoss, NoLoss

        scenario = ctx.scenario
        network = scenario.network
        saved: Dict[str, object] = {}

        def start() -> None:
            saved["model"] = network.loss_model
            network.loss_model = (
                BernoulliLoss(self.loss_rate) if self.loss_rate > 0.0 else NoLoss()
            )

        def stop() -> None:
            network.loss_model = saved.get("model", NoLoss())

        now = scenario.sim.now
        round_ms = scenario.round_ms
        scenario.sim.schedule_at(max(self.start_round * round_ms, now), start)
        return scenario.sim.schedule_at(max(self.stop_round * round_ms, now), stop)


@register_event
@dataclass(frozen=True)
class Partition(WorkloadEvent):
    """A transient network split that heals: at ``start_round`` a seed-derived random
    ``fraction`` of the live nodes (by wire IP — a NAT'ed node moves with its
    gateway) is isolated from the rest; at ``stop_round`` the partition heals and
    traffic flows again. Measures how the overlay survives and re-merges."""

    type: ClassVar[str] = "partition"

    start_round: float
    stop_round: float
    fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in ("start_round", "stop_round", "fraction"):
            object.__setattr__(self, name, _as_float(getattr(self, name), name))

    def validate(self) -> None:
        if self.start_round < 0:
            raise ExperimentError(f"start_round must be non-negative: {self.start_round}")
        if self.stop_round <= self.start_round:
            raise ExperimentError(
                f"partition stop_round={self.stop_round} must be after "
                f"start_round={self.start_round}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ExperimentError(f"fraction out of range: {self.fraction}")

    @staticmethod
    def _wire_ip(handle) -> str:
        if handle.natbox is not None:
            return handle.natbox.external_ip
        return handle.address.endpoint.ip

    def compile(self, ctx: CompileContext) -> Optional[object]:
        from repro.simulator.network import NetworkPartition

        scenario = ctx.scenario
        rng = ctx.derive_rng(self)

        def split() -> None:
            isolated = {
                self._wire_ip(handle)
                for handle in scenario.live_handles()
                if rng.random() < self.fraction
            }
            scenario.network.partition = NetworkPartition(isolated)

        def heal() -> None:
            scenario.network.partition = None

        now = scenario.sim.now
        round_ms = scenario.round_ms
        scenario.sim.schedule_at(max(self.start_round * round_ms, now), split)
        return scenario.sim.schedule_at(max(self.stop_round * round_ms, now), heal)
