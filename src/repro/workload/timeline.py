"""Declarative workload timelines: scenario dynamics as composable, serializable data.

A :class:`Timeline` is an ordered tuple of typed
:class:`~repro.workload.events.WorkloadEvent` specs — the whole dynamic shape of an
experiment (who joins when, which churn phases run, when disaster strikes) as *data*
rather than hand-wired processes. Timelines

* serialize to/from JSON in a canonical, schema-versioned form (:meth:`Timeline.to_json`
  is byte-stable: parse → serialize reproduces the exact bytes);
* carry a short content :attr:`~Timeline.digest` that the experiment matrix embeds in
  cell keys, so two cells agree on their timeline iff they agree on its bytes;
* **install** onto a :class:`~repro.workload.Scenario` deterministically: scheduled
  events compile onto the simulator in timeline order (drawing any randomness from
  seed-derived streams), while *boundary* events (failure spikes) are collected for
  the measurement loop to fire between rounds via
  :meth:`InstalledTimeline.fire_boundary`.

Named timelines are registered like protocols (:func:`register_timeline`); the built-in
presets cover the paper's dynamic setups (``paper-churn``, ``paper-failure``) plus
workloads the paper never ran (``flash-crowd``, ``diurnal``, ``partition-heal``). The
``repro matrix --timelines`` axis accepts any registered name.

Example
-------
>>> from repro.workload import ChurnPhase, FailureSpike, Timeline
>>> timeline = Timeline((
...     ChurnPhase(fraction_per_round=0.01, start_round=10.0),
...     FailureSpike(at_round=40.0, fraction=0.5),
... ))
>>> Timeline.from_json(timeline.to_json()) == timeline
True
>>> len(timeline.digest)
10
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, ExperimentError
from repro.workload.events import (
    ChurnPhase,
    CompileContext,
    FailureSpike,
    JoinBurst,
    LossBurst,
    Partition,
    WorkloadEvent,
)
from repro.workload.scenario import Scenario

#: Schema tag of the serialized form; bump when the timeline JSON layout changes.
TIMELINE_SCHEMA = "repro-timeline-v1"

#: Length of the content digest embedded in matrix cell keys.
DIGEST_LENGTH = 10


@dataclass(frozen=True)
class Timeline:
    """An ordered, immutable set of workload events (the experiment's dynamics)."""

    events: Tuple[WorkloadEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    # ------------------------------------------------------------------ construction

    def extended(self, *events: WorkloadEvent) -> "Timeline":
        """A new timeline with ``events`` appended (timelines compose by suffixing —
        e.g. a warmed shared prefix branching into per-treatment suffixes)."""
        return Timeline(self.events + tuple(events))

    def scaled(self, factor: float) -> "Timeline":
        """The same dynamic *shape* on a stretched or compressed round axis: every
        event's round-valued fields (:data:`~repro.workload.events.
        ROUND_SCALED_FIELDS`) multiplied by ``factor``. Rates and absolute sizes
        are untouched, so a 2%-per-round churn wave stays 2% per round — it just
        starts and stops proportionally earlier. ``factor=1`` returns ``self``."""
        if factor == 1.0:
            return self
        return Timeline(tuple(event.scaled(factor) for event in self.events))

    def validate(self) -> None:
        for event in self.events:
            if not isinstance(event, WorkloadEvent):
                raise ExperimentError(f"not a workload event: {event!r}")
            event.validate()
        # LossBurst and Partition each occupy one exclusive slot on the network
        # (the loss model, the partition rule); overlapping windows of the same
        # kind would restore/heal each other's state in the wrong order, so a
        # timeline must keep them disjoint.
        for kind in (LossBurst, Partition):
            windows = sorted(
                (event.start_round, event.stop_round)
                for event in self.events
                if isinstance(event, kind)
            )
            for (_, stop), (next_start, _) in zip(windows, windows[1:]):
                if next_start < stop:
                    raise ExperimentError(
                        f"overlapping {kind.type} windows: one stops at round "
                        f"{stop:g} after the next starts at round {next_start:g}"
                    )

    # ------------------------------------------------------------------ queries

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        return not self.events

    # ------------------------------------------------------------------ serialization

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": TIMELINE_SCHEMA,
            "events": [event.to_json_dict() for event in self.events],
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators — the byte form
        the digest hashes and the round-trip tests pin."""
        return json.dumps(self.to_json_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "Timeline":
        schema = data.get("schema")
        if schema != TIMELINE_SCHEMA:
            raise ConfigurationError(
                f"unknown timeline schema {schema!r}; expected {TIMELINE_SCHEMA!r}"
            )
        events = data.get("events", [])
        if not isinstance(events, list):
            raise ConfigurationError("timeline 'events' must be a list")
        return cls(tuple(WorkloadEvent.from_json_dict(event) for event in events))

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"timeline is not valid JSON: {error}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("timeline JSON must be an object")
        return cls.from_json_dict(data)

    @property
    def digest(self) -> str:
        """Short, stable content hash (over the canonical JSON bytes) — what matrix
        cell keys embed, so a cell's derived seed changes iff its timeline does."""
        raw = hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()
        return raw[:DIGEST_LENGTH]

    # ------------------------------------------------------------------ installation

    def install(
        self, scenario: Scenario, horizon_rounds: Optional[float] = None
    ) -> "InstalledTimeline":
        """Compile this timeline onto ``scenario``.

        Scheduled events compile immediately, in timeline order (so two installs of
        the same timeline schedule identically — the determinism the matrix parity
        gate relies on); boundary events are collected for the caller's measurement
        loop to fire via :meth:`InstalledTimeline.fire_boundary`.

        ``horizon_rounds`` is the caller's measurement horizon (a cell's ``rounds``).
        When given, any event whose onset lies beyond it draws a ``UserWarning``:
        the event would silently never fire — the footgun behind every
        "why is my churn timeline a no-op at rounds=30" report. Boundary events at
        *exactly* the horizon still fire (:meth:`InstalledTimeline.fire_boundary`
        is inclusive), so only strictly-later onsets warn for them; scheduled events
        starting at or past the horizon never act, so both warn.
        """
        self.validate()
        if horizon_rounds is not None:
            for event in self.events:
                onset = event.onset_round
                if onset is None:
                    continue
                is_boundary = event.boundary_round is not None
                if onset > horizon_rounds or (not is_boundary and onset >= horizon_rounds):
                    warnings.warn(
                        f"timeline event {event.type!r} starts at round {onset:g}, "
                        f"beyond the measurement horizon of {horizon_rounds:g} "
                        "rounds — it will never fire",
                        UserWarning,
                        stacklevel=2,
                    )
        processes: List[object] = []
        boundary: List[Tuple[float, int, WorkloadEvent]] = []
        for index, event in enumerate(self.events):
            at_round = event.boundary_round
            if at_round is not None:
                boundary.append((at_round, index, event))
                continue
            handle = event.compile(CompileContext(scenario=scenario, index=index))
            if handle is not None:
                processes.append(handle)
        boundary.sort(key=lambda entry: (entry[0], entry[1]))
        return InstalledTimeline(
            timeline=self, scenario=scenario, processes=processes, boundary=boundary
        )


@dataclass
class InstalledTimeline:
    """A timeline compiled onto one scenario: live process handles plus the boundary
    events still waiting for the measurement loop to cross their round."""

    timeline: Timeline
    scenario: Scenario
    #: Handles the scheduled events returned (one per event that scheduled work).
    processes: List[object] = field(default_factory=list)
    #: ``(round, timeline_index, event)`` entries, sorted, not yet fired.
    boundary: List[Tuple[float, int, WorkloadEvent]] = field(default_factory=list)
    #: ``(event, outcome)`` pairs of every boundary event fired so far.
    outcomes: List[Tuple[WorkloadEvent, object]] = field(default_factory=list)
    _fired: int = 0

    @property
    def pending_boundary(self) -> List[WorkloadEvent]:
        return [event for _, _, event in self.boundary[self._fired:]]

    def advance_rounds(self, rounds: float) -> None:
        """Advance the scenario by ``rounds`` gossip rounds, firing boundary events
        *at their declared boundary* along the way.

        Drivers that simulate in large steps (a warm-up of N rounds, a
        measure-every-K loop) use this instead of ``run_rounds`` + a trailing
        :meth:`fire_boundary`, so an axis timeline's failure spike at round 61 fires
        at round 61 even inside a single 70-round advance. With no boundary event
        pending the call is *exactly* ``scenario.run_rounds(rounds)`` — the same
        float arithmetic, so timeline-free cells replay bit for bit.
        """
        scenario = self.scenario
        if self._fired >= len(self.boundary):
            scenario.run_rounds(rounds)
            return
        round_ms = scenario.round_ms
        target_ms = scenario.now + rounds * round_ms
        while self._fired < len(self.boundary):
            at_round, _, _ = self.boundary[self._fired]
            at_ms = at_round * round_ms
            if at_ms > target_ms:
                break
            if at_ms > scenario.now:
                scenario.run_ms(at_ms - scenario.now)
            self.fire_boundary(at_round)
        if scenario.now < target_ms:
            scenario.run_ms(target_ms - scenario.now)

    def fire_boundary(self, up_to_round: float) -> List[object]:
        """Fire every not-yet-fired boundary event with ``round <= up_to_round``.

        Called by measurement loops right after advancing the simulation past a
        round boundary — the exact point the imperative harnesses applied failures —
        so a boundary event at round *r* acts after round *r* completes and before
        that round's measurement. Returns the outcomes fired by this call.
        """
        fired: List[object] = []
        while self._fired < len(self.boundary):
            at_round, _, event = self.boundary[self._fired]
            if at_round > up_to_round:
                break
            self._fired += 1
            outcome = event.apply(self.scenario)
            self.outcomes.append((event, outcome))
            fired.append(outcome)
        return fired

    def outcome_of(self, event: WorkloadEvent) -> Optional[object]:
        """The recorded outcome of ``event`` (identity first, then equality)."""
        for fired_event, outcome in self.outcomes:
            if fired_event is event:
                return outcome
        for fired_event, outcome in self.outcomes:
            if fired_event == event:
                return outcome
        return None


# ---------------------------------------------------------------------- registry


@dataclass(frozen=True)
class TimelinePreset:
    """One registered named timeline (mirrors the protocol plugin registry).

    ``authored_horizon_rounds`` is the measurement horizon the preset's round
    numbers were written for. When set, :meth:`timeline_for_horizon` compresses
    the preset proportionally onto shorter horizons (a diurnal cycle authored
    over 120 rounds still completes both waves in a 60-round cell) instead of
    silently never firing. ``None`` — the paper presets, whose absolute round
    numbers (churn at t=61) *are* the figure being reproduced — never scales.
    Cell keys and digests always hash the *authored* timeline, so scaling can
    never re-seed a cell.
    """

    name: str
    timeline: Timeline
    description: str = ""
    authored_horizon_rounds: Optional[float] = None

    def timeline_for_horizon(self, horizon_rounds: Optional[float]) -> Timeline:
        """The preset's timeline as installed at ``horizon_rounds``: compressed by
        ``horizon / authored`` when the horizon is shorter than the preset was
        authored for, verbatim otherwise (scaling never stretches)."""
        authored = self.authored_horizon_rounds
        if (
            horizon_rounds is None
            or authored is None
            or authored <= 0
            or horizon_rounds >= authored
        ):
            return self.timeline
        return self.timeline.scaled(horizon_rounds / authored)


#: Global named-timeline registry, filled below and by callers of
#: :func:`register_timeline` (tests, notebooks, CLI-loaded JSON files).
TIMELINES: Dict[str, TimelinePreset] = {}


def register_timeline(
    name: str,
    timeline: Timeline,
    description: str = "",
    replace: bool = False,
    authored_horizon_rounds: Optional[float] = None,
) -> TimelinePreset:
    """Register ``timeline`` under ``name`` (the ``--timelines`` axis vocabulary).

    ``authored_horizon_rounds`` marks the horizon the preset's round numbers were
    written for, enabling proportional compression onto shorter cells (see
    :meth:`TimelinePreset.timeline_for_horizon`).

    Like scenario kinds, registrations made at import time of an importable module
    are visible to pool workers under any start method; run-time registrations rely
    on a fork start method (or ``workers=1``).
    """
    if name in TIMELINES and not replace:
        raise ConfigurationError(f"timeline {name!r} already registered")
    timeline.validate()
    if authored_horizon_rounds is not None and authored_horizon_rounds <= 0:
        raise ConfigurationError(
            f"authored_horizon_rounds must be positive, got {authored_horizon_rounds}"
        )
    preset = TimelinePreset(
        name=name,
        timeline=timeline,
        description=description,
        authored_horizon_rounds=authored_horizon_rounds,
    )
    TIMELINES[name] = preset
    return preset


def unregister_timeline(name: str) -> None:
    """Remove a registered timeline (tests only)."""
    TIMELINES.pop(name, None)


def get_timeline(name: str) -> Timeline:
    try:
        return TIMELINES[name].timeline
    except KeyError:
        raise ConfigurationError(
            f"unknown timeline {name!r}; registered: {timeline_names()}"
        ) from None


def timeline_names() -> List[str]:
    return sorted(TIMELINES)


def all_timeline_presets() -> List[TimelinePreset]:
    return [TIMELINES[name] for name in timeline_names()]


# ---------------------------------------------------------------------- presets

register_timeline(
    "paper-churn",
    Timeline((ChurnPhase(fraction_per_round=0.01, start_round=61.0),)),
    description="Figure 5's steady-state churn: 1%/round of each node class replaced "
    "from t=61 onward",
)

register_timeline(
    "paper-failure",
    Timeline((FailureSpike(at_round=61.0, fraction=0.5),)),
    description="Figure 7(b)'s catastrophic failure: half of all nodes die at the "
    "t=61 round boundary",
)

register_timeline(
    "flash-crowd",
    Timeline((JoinBurst(at_round=30.0, fraction=0.5, public_share=0.2,
                        spread_rounds=2.0),)),
    description="a flash crowd: 50% extra population joins within two rounds of t=30 "
    "(public share 0.2)",
    authored_horizon_rounds=60.0,
)

register_timeline(
    "diurnal",
    Timeline((
        ChurnPhase(fraction_per_round=0.02, start_round=20.0, stop_round=50.0,
                   ramp_rounds=10.0),
        ChurnPhase(fraction_per_round=0.02, start_round=70.0, stop_round=100.0,
                   ramp_rounds=10.0),
    )),
    description="two ramped 2%/round churn waves (rounds 20-50 and 70-100) modelling "
    "day/night session cycles",
    authored_horizon_rounds=120.0,
)

register_timeline(
    "partition-heal",
    Timeline((Partition(start_round=30.0, stop_round=40.0, fraction=0.5),)),
    description="half the population is partitioned away at t=30 and the split heals "
    "at t=40",
    authored_horizon_rounds=60.0,
)
