"""Dynamic public/private ratio schedules (the Figure 2 workload).

The paper's dynamic-ratio experiment joins 1000 public and 4000 private nodes (ratio
0.2... actually the text states the pre-growth ratio as 0.3 for that plot's scale),
waits a few rounds, and then adds one new public node every 42 ms until the ratio has
risen by a few points, after which it stays constant. :class:`RatioGrowthProcess`
generalises that: add ``count`` public nodes at a fixed interval starting at a given
time. It is the execution engine of the declarative
:class:`~repro.workload.events.RatioGrowth` timeline event.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.workload.scenario import Scenario


class RatioGrowthProcess:
    """Adds public nodes at a constant rate, raising the public/private ratio."""

    def __init__(
        self,
        scenario: Scenario,
        start_ms: float,
        interval_ms: float,
        count: int,
    ) -> None:
        if interval_ms <= 0:
            raise ExperimentError(f"interval_ms must be positive, got {interval_ms}")
        if count < 0:
            raise ExperimentError(f"count must be non-negative, got {count}")
        self.scenario = scenario
        self.start_ms = start_ms
        self.interval_ms = interval_ms
        self.count = count
        self.added = 0
        for index in range(count):
            scenario.sim.schedule_at(start_ms + index * interval_ms, self._add_one)

    def _add_one(self) -> None:
        self.scenario.add_public_node()
        self.added += 1

    @property
    def finished(self) -> bool:
        return self.added >= self.count

    @property
    def end_ms(self) -> float:
        """Virtual time at which the last scheduled addition happens."""
        if self.count == 0:
            return self.start_ms
        return self.start_ms + (self.count - 1) * self.interval_ms
