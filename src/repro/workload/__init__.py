"""Workload and scenario construction: joins, churn, failures, ratio schedules.

The central abstractions are :class:`~repro.workload.scenario.Scenario` — which wires
a simulator, a network, a bootstrap registry and any number of protocol nodes together
— and the declarative :class:`~repro.workload.timeline.Timeline`: an ordered,
JSON-serializable set of typed workload events
(:mod:`~repro.workload.events`: :class:`PoissonJoin`, :class:`JoinBurst`,
:class:`ChurnPhase`, :class:`RatioGrowth`, :class:`FailureSpike`, :class:`LossBurst`,
:class:`Partition`) that compile onto a scenario as deterministic simulator schedules.
Experiments describe *what happens when* as timeline data; named presets
(``paper-churn``, ``paper-failure``, ``flash-crowd``, ``diurnal``,
``partition-heal``) are registered in :data:`~repro.workload.timeline.TIMELINES` and
double as values of the experiment matrix's ``--timelines`` axis. See
``docs/workload_api.md``.

The process modules are the execution engines timeline events compile into (and what
low-level harnesses may still drive directly):

* :mod:`~repro.workload.join` — Poisson join processes (Section VII-B setups).
* :mod:`~repro.workload.churn` — steady-state churn: replace a fixed fraction of nodes
  per round while preserving the public/private ratio (Figure 5).
* :mod:`~repro.workload.failure` — catastrophic failure: kill a percentage of all nodes
  at one instant (Figure 7b).
* :mod:`~repro.workload.ratio` — dynamic public/private ratio schedules (Figure 2).
"""

from repro.workload.churn import ChurnProcess
from repro.workload.events import (
    EVENT_TYPES,
    ChurnPhase,
    FailureSpike,
    JoinBurst,
    LossBurst,
    Partition,
    PoissonJoin,
    RatioGrowth,
    WorkloadEvent,
    event_type_names,
    register_event,
)
from repro.workload.failure import catastrophic_failure
from repro.workload.join import PoissonJoinProcess
from repro.workload.ratio import RatioGrowthProcess
from repro.workload.scenario import (
    ENGINES,
    NodeHandle,
    Scenario,
    ScenarioConfig,
    create_scenario,
)
from repro.workload.timeline import (
    TIMELINE_SCHEMA,
    TIMELINES,
    InstalledTimeline,
    Timeline,
    TimelinePreset,
    all_timeline_presets,
    get_timeline,
    register_timeline,
    timeline_names,
    unregister_timeline,
)

__all__ = [
    "ENGINES",
    "EVENT_TYPES",
    "TIMELINES",
    "TIMELINE_SCHEMA",
    "ChurnPhase",
    "ChurnProcess",
    "FailureSpike",
    "InstalledTimeline",
    "JoinBurst",
    "LossBurst",
    "NodeHandle",
    "Partition",
    "PoissonJoin",
    "PoissonJoinProcess",
    "RatioGrowth",
    "RatioGrowthProcess",
    "Scenario",
    "ScenarioConfig",
    "Timeline",
    "TimelinePreset",
    "WorkloadEvent",
    "all_timeline_presets",
    "catastrophic_failure",
    "create_scenario",
    "event_type_names",
    "get_timeline",
    "register_event",
    "register_timeline",
    "timeline_names",
    "unregister_timeline",
]
