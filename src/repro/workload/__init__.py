"""Workload and scenario construction: joins, churn, failures, ratio schedules.

The central abstraction is :class:`~repro.workload.scenario.Scenario`, which wires a
simulator, a network, a bootstrap registry and any number of protocol nodes together,
and exposes the operations the experiments need (run N rounds, kill a fraction of
nodes, read the overlay graph, read every node's ratio estimate, ...).

The remaining modules are *processes* that drive a scenario over time, mirroring the
paper's experimental setups:

* :mod:`~repro.workload.join` — Poisson join processes (Section VII-B setups).
* :mod:`~repro.workload.churn` — steady-state churn: replace a fixed fraction of nodes
  per round while preserving the public/private ratio (Figure 5).
* :mod:`~repro.workload.failure` — catastrophic failure: kill a percentage of all nodes
  at one instant (Figure 7b).
* :mod:`~repro.workload.ratio` — dynamic public/private ratio schedules (Figure 2).
"""

from repro.workload.churn import ChurnProcess
from repro.workload.failure import catastrophic_failure
from repro.workload.join import PoissonJoinProcess
from repro.workload.ratio import RatioGrowthProcess
from repro.workload.scenario import NodeHandle, Scenario, ScenarioConfig

__all__ = [
    "ChurnProcess",
    "NodeHandle",
    "PoissonJoinProcess",
    "RatioGrowthProcess",
    "Scenario",
    "ScenarioConfig",
    "catastrophic_failure",
]
