"""Steady-state churn: continuous node replacement at a fixed per-round rate.

The paper (Figure 5): "We model churn by replacing a fixed fraction of randomly selected
public and private nodes with new nodes at each gossiping round, but keeping the ratio
of public to private nodes stable." The baseline rate of 0.1 %/round corresponds to a
mean session length of about 15 minutes with one-second rounds; the experiments push it
up to 5 %/round (50× the rates measured in real systems).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExperimentError
from repro.workload.scenario import Scenario


class ChurnProcess:
    """Replaces ``fraction_per_round`` of each node class every gossip round."""

    def __init__(
        self,
        scenario: Scenario,
        fraction_per_round: float,
        start_ms: float = 0.0,
        stop_ms: Optional[float] = None,
    ) -> None:
        if not 0.0 <= fraction_per_round <= 1.0:
            raise ExperimentError(
                f"fraction_per_round out of range: {fraction_per_round}"
            )
        self.scenario = scenario
        self.fraction_per_round = fraction_per_round
        self.start_ms = start_ms
        self.stop_ms = stop_ms
        self.total_replaced = 0
        self.rounds_executed = 0
        self._schedule_next(max(start_ms, scenario.sim.now))

    def _schedule_next(self, at_ms: float) -> None:
        self.scenario.sim.schedule_at(at_ms, self._tick)

    def _tick(self) -> None:
        if self.stop_ms is not None and self.scenario.sim.now >= self.stop_ms:
            return
        if self.fraction_per_round > 0.0:
            self.total_replaced += self.scenario.churn_step(self.fraction_per_round)
        self.rounds_executed += 1
        self._schedule_next(self.scenario.sim.now + self.scenario.round_ms)

    @property
    def replacement_rate_per_second(self) -> float:
        """The configured churn rate expressed per second of virtual time."""
        return self.fraction_per_round / (self.scenario.round_ms / 1000.0)
