"""Steady-state churn: continuous node replacement at a fixed per-round rate.

The paper (Figure 5): "We model churn by replacing a fixed fraction of randomly selected
public and private nodes with new nodes at each gossiping round, but keeping the ratio
of public to private nodes stable." The baseline rate of 0.1 %/round corresponds to a
mean session length of about 15 minutes with one-second rounds; the experiments push it
up to 5 %/round (50× the rates measured in real systems).

:class:`ChurnProcess` is the execution engine the declarative
:class:`~repro.workload.events.ChurnPhase` timeline event compiles into — experiments
describe churn as timeline data (:mod:`repro.workload.timeline`) and only tests and
low-level harnesses construct the process directly.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ExperimentError
from repro.workload.scenario import Scenario


class ChurnProcess:
    """Replaces ``fraction_per_round`` of each node class every gossip round.

    Parameters
    ----------
    scenario:
        The scenario whose population churns.
    fraction_per_round:
        Target replacement fraction per gossip round (of each node class).
    start_ms / stop_ms:
        The phase's window in virtual time. Ticks start at ``start_ms`` (which may
        fall mid-round — the tick grid is anchored there, not on round boundaries)
        and stop once the clock reaches ``stop_ms``. ``stop_ms`` must lie strictly
        after ``start_ms``.
    ramp_rounds:
        Optional linear onset: the effective fraction grows from
        ``fraction_per_round / ramp_rounds`` at the first tick to the full rate after
        ``ramp_rounds`` ticks. ``0`` (the default) churns at the full rate from the
        first tick, exactly as before the ramp existed.
    """

    def __init__(
        self,
        scenario: Scenario,
        fraction_per_round: float,
        start_ms: float = 0.0,
        stop_ms: Optional[float] = None,
        ramp_rounds: float = 0.0,
    ) -> None:
        if not 0.0 <= fraction_per_round <= 1.0:
            raise ExperimentError(
                f"fraction_per_round out of range: {fraction_per_round}"
            )
        if stop_ms is not None and stop_ms <= start_ms:
            raise ExperimentError(
                f"churn stop_ms={stop_ms} must be after start_ms={start_ms}"
            )
        if ramp_rounds < 0:
            raise ExperimentError(f"ramp_rounds must be non-negative: {ramp_rounds}")
        self.scenario = scenario
        self.fraction_per_round = fraction_per_round
        self.start_ms = start_ms
        self.stop_ms = stop_ms
        self.ramp_rounds = ramp_rounds
        self.total_replaced = 0
        self.rounds_executed = 0
        self._schedule_next(max(start_ms, scenario.sim.now))

    def _schedule_next(self, at_ms: float) -> None:
        self.scenario.sim.schedule_at(at_ms, self._tick)

    def _effective_fraction(self) -> float:
        """The fraction this tick churns — ramped linearly while the phase warms up."""
        if self.ramp_rounds <= 0:
            return self.fraction_per_round
        progress = min(1.0, (self.rounds_executed + 1) / self.ramp_rounds)
        return self.fraction_per_round * progress

    def _tick(self) -> None:
        if self.stop_ms is not None and self.scenario.sim.now >= self.stop_ms:
            return
        fraction = self._effective_fraction()
        if fraction > 0.0:
            self.total_replaced += self.scenario.churn_step(fraction)
        self.rounds_executed += 1
        self._schedule_next(self.scenario.sim.now + self.scenario.round_ms)

    @property
    def replacement_rate_per_second(self) -> float:
        """The configured churn rate expressed per second of virtual time."""
        return self.fraction_per_round / (self.scenario.round_ms / 1000.0)
