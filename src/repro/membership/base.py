"""The abstract peer-sampling service every protocol in this package implements.

A peer-sampling service (PSS) runs periodic gossip rounds and, at any time, can be asked
for a sample of live nodes drawn (ideally) uniformly at random from the whole system.
This base class owns the round timer, the common configuration and the bookkeeping that
the metrics collectors rely on; subclasses implement the actual shuffle in
:meth:`PeerSamplingService.on_round` and the sampling rule in
:meth:`PeerSamplingService.sample`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.constants import (
    DEFAULT_ROUND_MS,
    DEFAULT_SHUFFLE_SIZE,
    DEFAULT_VIEW_SIZE,
    PSS_PORT,
)
from repro.errors import ConfigurationError
from repro.membership.capabilities import OverlaySampling
from repro.membership.descriptor import NodeDescriptor
from repro.membership.policies import MergePolicy, SelectionPolicy
from repro.net.address import NodeAddress
from repro.simulator.component import Component
from repro.simulator.host import Host


@dataclass
class PssConfig:
    """Configuration shared by every peer-sampling protocol.

    The defaults are the paper's experimental setup (Section VII-A): view size 10,
    shuffle subset size 5, one-second rounds, tail selection and swapper merging.
    """

    view_size: int = DEFAULT_VIEW_SIZE
    shuffle_size: int = DEFAULT_SHUFFLE_SIZE
    round_ms: float = DEFAULT_ROUND_MS
    #: Uniform jitter added to each round period so nodes do not fire in lockstep
    #: ("subject to clock skew" in the paper's words).
    round_jitter_ms: float = 50.0
    #: Random delay before a node's first round, spreading joiners across the round.
    start_delay_max_ms: float = 1000.0
    selection: SelectionPolicy = SelectionPolicy.TAIL
    merge: MergePolicy = MergePolicy.SWAPPER
    port: int = PSS_PORT

    def validate(self) -> None:
        if self.view_size <= 0:
            raise ConfigurationError(f"view_size must be positive, got {self.view_size}")
        if self.shuffle_size <= 0:
            raise ConfigurationError(
                f"shuffle_size must be positive, got {self.shuffle_size}"
            )
        if self.shuffle_size > self.view_size:
            raise ConfigurationError(
                f"shuffle_size ({self.shuffle_size}) cannot exceed view_size "
                f"({self.view_size})"
            )
        if self.round_ms <= 0:
            raise ConfigurationError(f"round_ms must be positive, got {self.round_ms}")
        if self.round_jitter_ms < 0 or self.start_delay_max_ms < 0:
            raise ConfigurationError("jitter and start delay must be non-negative")


@dataclass
class PssStatistics:
    """Counters every PSS maintains; read by tests and experiment reports."""

    rounds: int = 0
    shuffles_initiated: int = 0
    shuffle_requests_handled: int = 0
    shuffle_responses_received: int = 0
    rounds_skipped_empty_view: int = 0
    samples_served: int = 0
    extra: dict = field(default_factory=dict)


class PeerSamplingService(Component, OverlaySampling):
    """Base component for Croupier, Cyclon, Nylon, Gozar and ARRG.

    Implements the :class:`~repro.membership.capabilities.OverlaySampling` capability;
    subclasses advertise further capabilities (ratio estimation, NAT awareness) by
    inheriting the corresponding ABCs and register themselves as a
    :class:`~repro.membership.plugin.ProtocolPlugin`.
    """

    def __init__(
        self,
        host: Host,
        config: Optional[PssConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.config = config or PssConfig()
        self.config.validate()
        super().__init__(host, self.config.port, name=name)
        self.stats = PssStatistics()
        self.current_round = 0
        self._self_descriptor: Optional[NodeDescriptor] = None

    # ------------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        initial_delay = self.rng.uniform(0.0, self.config.start_delay_max_ms)
        self.schedule_periodic(
            self.config.round_ms,
            self._execute_round,
            jitter_ms=self.config.round_jitter_ms,
            initial_delay_ms=initial_delay,
        )

    def _execute_round(self) -> None:
        self.current_round += 1
        self.stats.rounds += 1
        self.on_round()

    # ------------------------------------------------------------------ protocol hooks

    def on_round(self) -> None:
        """One gossip round. Subclasses implement the shuffle here."""
        raise NotImplementedError

    def initialize_view(self, seeds: Sequence[NodeAddress]) -> None:
        """Fill the initial view(s) from bootstrap-provided addresses."""
        raise NotImplementedError

    # ------------------------------------------------------------------ sampling API

    def sample(self) -> Optional[NodeAddress]:
        """One node drawn (approximately) uniformly at random, or ``None`` if unknown."""
        raise NotImplementedError

    def sample_many(self, count: int) -> List[NodeAddress]:
        """``count`` independent samples (duplicates possible, as in a true PSS)."""
        samples: List[NodeAddress] = []
        for _ in range(count):
            drawn = self.sample()
            if drawn is not None:
                samples.append(drawn)
        return samples

    def neighbor_addresses(self) -> List[NodeAddress]:
        """Every node currently referenced by this node's view(s); used by graph metrics."""
        raise NotImplementedError

    # ------------------------------------------------------------------ helpers

    def self_descriptor(self) -> NodeDescriptor:
        """A fresh (age-0) descriptor describing this node.

        Descriptors are immutable, so the same age-0 instance can be shared by every
        message that embeds it; it is rebuilt only if the host's address object changes
        (NAT-type identification replaces the address before the PSS starts).
        """
        cached = self._self_descriptor
        address = self.host.address
        if cached is None or cached.address is not address:
            cached = NodeDescriptor(address=address, age=0)
            self._self_descriptor = cached
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.name}(node={self.address.node_id}, round={self.current_round}, "
            f"{self.address.nat_type.value})"
        )
