"""The bounded partial view used by every peer-sampling protocol.

Croupier keeps two of these per node (a public view and a private view); the baselines
keep a single one. The class implements the operations the paper's pseudo-code relies
on: ageing, tail (oldest-descriptor) selection, uniform random subsets, and the
``updateView`` merge procedure of Algorithm 2 (lines 46–58), which is the *swapper*
policy of Jelasity et al.: when the view is full, a descriptor we just sent to the peer
is evicted to make room for one the peer sent us.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.membership.descriptor import NodeDescriptor


class PartialView:
    """A bounded set of node descriptors, at most one per node identifier."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"view capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[int, NodeDescriptor] = {}

    # ------------------------------------------------------------------ container API

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NodeDescriptor]:
        return iter(list(self._entries.values()))

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - len(self._entries))

    def get(self, node_id: int) -> Optional[NodeDescriptor]:
        return self._entries.get(node_id)

    def descriptors(self) -> List[NodeDescriptor]:
        """A snapshot list of the current descriptors."""
        return list(self._entries.values())

    def node_ids(self) -> List[int]:
        return list(self._entries.keys())

    # ------------------------------------------------------------------ mutation

    def add(self, descriptor: NodeDescriptor) -> bool:
        """Insert or refresh a descriptor if there is room (or it is already present).

        Returns ``True`` if the view now contains the descriptor's node. Existing
        entries are replaced only by fresher (younger) descriptors, matching the
        paper's ``updateView`` first branch.
        """
        existing = self._entries.get(descriptor.node_id)
        if existing is not None:
            if descriptor.is_fresher_than(existing):
                self._entries[descriptor.node_id] = descriptor.copy()
            return True
        if self.is_full:
            return False
        self._entries[descriptor.node_id] = descriptor.copy()
        return True

    def force_add(self, descriptor: NodeDescriptor, evict: Optional[int] = None) -> None:
        """Insert a descriptor, evicting ``evict`` (or the oldest entry) if full."""
        if descriptor.node_id in self._entries or not self.is_full:
            self.add(descriptor)
            return
        victim = evict if evict is not None and evict in self._entries else None
        if victim is None:
            oldest = self.oldest()
            victim = oldest.node_id if oldest is not None else None
        if victim is not None:
            del self._entries[victim]
        self._entries[descriptor.node_id] = descriptor.copy()

    def remove(self, node_id: int) -> Optional[NodeDescriptor]:
        """Remove and return the descriptor for ``node_id`` (or ``None``)."""
        return self._entries.pop(node_id, None)

    def clear(self) -> None:
        self._entries.clear()

    def increase_ages(self, increment: int = 1) -> None:
        """Age every descriptor by ``increment`` rounds (start of each gossip round)."""
        for node_id, descriptor in list(self._entries.items()):
            self._entries[node_id] = descriptor.aged(increment)

    def drop_older_than(self, max_age: int) -> int:
        """Remove descriptors older than ``max_age`` rounds; returns how many were dropped."""
        stale = [nid for nid, d in self._entries.items() if d.age > max_age]
        for nid in stale:
            del self._entries[nid]
        return len(stale)

    # ------------------------------------------------------------------ selection

    def oldest(self, rng: Optional[random.Random] = None) -> Optional[NodeDescriptor]:
        """The descriptor with the highest age (the *tail* policy), or ``None`` if empty.

        Age ties are common (ages are small integers), so the tie-break matters: when an
        ``rng`` is provided, a uniformly random descriptor among the oldest ones is
        returned. A deterministic tie-break (highest node id) would concentrate shuffle
        requests on a few nodes and bias both the load distribution and Croupier's
        ratio estimator, which assumes shuffle targets are chosen uniformly at random.
        Without an ``rng`` the deterministic tie-break is used (handy in tests).
        """
        if not self._entries:
            return None
        max_age = max(d.age for d in self._entries.values())
        candidates = [d for d in self._entries.values() if d.age == max_age]
        if rng is None or len(candidates) == 1:
            return max(candidates, key=lambda d: d.node_id)
        return rng.choice(candidates)

    def random_descriptor(self, rng: random.Random) -> Optional[NodeDescriptor]:
        """A uniformly random descriptor, or ``None`` if the view is empty."""
        if not self._entries:
            return None
        return rng.choice(list(self._entries.values()))

    def random_subset(
        self,
        rng: random.Random,
        count: int,
        exclude_ids: Optional[Iterable[int]] = None,
    ) -> List[NodeDescriptor]:
        """Up to ``count`` distinct descriptors chosen uniformly at random (as copies)."""
        excluded = set(exclude_ids) if exclude_ids is not None else set()
        candidates = [
            descriptor
            for node_id, descriptor in self._entries.items()
            if node_id not in excluded
        ]
        if len(candidates) <= count:
            chosen = candidates
        else:
            chosen = rng.sample(candidates, count)
        return [descriptor.copy() for descriptor in chosen]

    # ------------------------------------------------------------------ merging

    def update_view(
        self,
        sent: Sequence[NodeDescriptor],
        received: Sequence[NodeDescriptor],
        self_id: int,
    ) -> None:
        """The paper's ``updateView`` procedure (Algorithm 2, lines 46–58).

        For every received descriptor: refresh it if already present; otherwise add it
        if there is free space; otherwise evict one of the descriptors *we sent to the
        peer* (the swapper policy — the information is not lost, the peer now holds it)
        and insert the received one. Descriptors describing ourselves are skipped.
        """
        sent_queue: List[NodeDescriptor] = [d for d in sent if d.node_id in self._entries]
        for incoming in received:
            if incoming.node_id == self_id:
                continue
            existing = self._entries.get(incoming.node_id)
            if existing is not None:
                if incoming.is_fresher_than(existing):
                    self._entries[incoming.node_id] = incoming.copy()
                continue
            if not self.is_full:
                self._entries[incoming.node_id] = incoming.copy()
                continue
            evicted = False
            while sent_queue:
                candidate = sent_queue.pop(0)
                if candidate.node_id in self._entries:
                    del self._entries[candidate.node_id]
                    evicted = True
                    break
            if evicted:
                self._entries[incoming.node_id] = incoming.copy()
            # If nothing we sent is still present, the received descriptor is dropped —
            # the view keeps its (bounded) current content, as in the paper.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartialView({len(self)}/{self.capacity}: {sorted(self._entries)})"
