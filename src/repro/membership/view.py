"""The bounded partial view used by every peer-sampling protocol.

Croupier keeps two of these per node (a public view and a private view); the baselines
keep a single one. The class implements the operations the paper's pseudo-code relies
on: ageing, tail (oldest-descriptor) selection, uniform random subsets, and the
``updateView`` merge procedure of Algorithm 2 (lines 46–58), which is the *swapper*
policy of Jelasity et al.: when the view is full, a descriptor we just sent to the peer
is evicted to make room for one the peer sent us.

Lazy-ageing contract
--------------------
Ageing every descriptor each round used to allocate a fresh
:class:`~repro.membership.descriptor.NodeDescriptor` per entry per view per node per
round — the single largest allocation source in a simulation. The view now keeps one
internal round counter (``_clock``) and, per entry, the counter value at which that
descriptor's age was zero (its *born* round, ``born = clock_at_insert - age``).

* :meth:`increase_ages` is O(1): it bumps the clock.
* The *effective* age of an entry is ``_clock - born``; it is materialised into a real
  descriptor object only when an entry crosses the public API (:meth:`get`, iteration,
  :meth:`oldest`, :meth:`random_subset`, …). Materialised objects are cached back into
  the table, so repeated reads at the same clock allocate nothing.
* Descriptors handed in are stored by reference (they are immutable) and descriptors
  handed out are shared, never copied. Wire semantics are preserved: a descriptor
  returned for inclusion in a message carries the sender-relative age at send time.

All selection methods consume randomness exactly as the eager implementation did (same
candidate ordering, same number of draws), so same-seed runs are bit-identical with the
pre-refactor code.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.membership.descriptor import NodeDescriptor


class PartialView:
    """A bounded set of node descriptors, at most one per node identifier."""

    __slots__ = ("capacity", "_entries", "_born", "_clock", "_ids")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"view capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: node_id -> descriptor as last materialised (its ``age`` may lag the clock).
        self._entries: Dict[int, NodeDescriptor] = {}
        #: node_id -> clock value at which this entry's age was zero.
        self._born: Dict[int, int] = {}
        #: The view's local round counter (bumped by :meth:`increase_ages`).
        self._clock: int = 0
        #: Cached key list for random selection; ``None`` when stale.
        self._ids: Optional[List[int]] = None

    # ------------------------------------------------------------------ internals

    def _materialize(self, node_id: int) -> NodeDescriptor:
        """The entry for ``node_id`` with its age brought up to the current clock."""
        descriptor = self._entries[node_id]
        age = self._clock - self._born[node_id]
        if descriptor.age != age:
            descriptor = descriptor.with_age(age)
            self._entries[node_id] = descriptor
        return descriptor

    def _id_list(self) -> List[int]:
        ids = self._ids
        if ids is None:
            ids = self._ids = list(self._entries)
        return ids

    def _store(self, descriptor: NodeDescriptor) -> None:
        """Insert a descriptor (caller has checked capacity / freshness)."""
        node_id = descriptor.node_id
        if node_id not in self._entries:
            self._ids = None
        self._entries[node_id] = descriptor
        self._born[node_id] = self._clock - descriptor.age

    def _discard(self, node_id: int) -> None:
        del self._entries[node_id]
        del self._born[node_id]
        self._ids = None

    # ------------------------------------------------------------------ container API

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[NodeDescriptor]:
        return iter(self.descriptors())

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def free_slots(self) -> int:
        return max(0, self.capacity - len(self._entries))

    @property
    def round_clock(self) -> int:
        """The view's internal round counter (diagnostics/benchmarks)."""
        return self._clock

    def get(self, node_id: int) -> Optional[NodeDescriptor]:
        if node_id not in self._entries:
            return None
        return self._materialize(node_id)

    def age_of(self, node_id: int) -> Optional[int]:
        """The effective age of an entry without materialising a descriptor."""
        born = self._born.get(node_id)
        if born is None:
            return None
        return self._clock - born

    def descriptors(self) -> List[NodeDescriptor]:
        """A snapshot list of the current descriptors (ages as of the current clock)."""
        return [self._materialize(node_id) for node_id in self._entries]

    def node_ids(self) -> List[int]:
        return list(self._entries)

    # ------------------------------------------------------------------ mutation

    def add(self, descriptor: NodeDescriptor) -> bool:
        """Insert or refresh a descriptor if there is room (or it is already present).

        Returns ``True`` if the view now contains the descriptor's node. Existing
        entries are replaced only by fresher (younger) descriptors, matching the
        paper's ``updateView`` first branch.
        """
        node_id = descriptor.node_id
        existing_born = self._born.get(node_id)
        if existing_born is not None:
            # Fresher ⇔ smaller effective age ⇔ larger born round.
            if self._clock - descriptor.age > existing_born:
                self._store(descriptor)
            return True
        if len(self._entries) >= self.capacity:
            return False
        self._store(descriptor)
        return True

    def force_add(self, descriptor: NodeDescriptor, evict: Optional[int] = None) -> None:
        """Insert a descriptor, evicting ``evict`` (or the oldest entry) if full."""
        if descriptor.node_id in self._entries or not self.is_full:
            self.add(descriptor)
            return
        victim = evict if evict is not None and evict in self._entries else None
        if victim is None:
            oldest = self.oldest()
            victim = oldest.node_id if oldest is not None else None
        if victim is not None:
            self._discard(victim)
        self._store(descriptor)

    def remove(self, node_id: int) -> Optional[NodeDescriptor]:
        """Remove and return the descriptor for ``node_id`` (or ``None``)."""
        if node_id not in self._entries:
            return None
        descriptor = self._materialize(node_id)
        self._discard(node_id)
        return descriptor

    def clear(self) -> None:
        self._entries.clear()
        self._born.clear()
        self._ids = None

    def increase_ages(self, increment: int = 1) -> None:
        """Age every descriptor by ``increment`` rounds (start of each gossip round).

        O(1): only the view's round counter moves; no descriptor is touched until it
        is next read through the API.
        """
        self._clock += increment

    def drop_older_than(self, max_age: int) -> int:
        """Remove descriptors older than ``max_age`` rounds; returns how many were dropped."""
        threshold = self._clock - max_age
        stale = [node_id for node_id, born in self._born.items() if born < threshold]
        for node_id in stale:
            self._discard(node_id)
        return len(stale)

    # ------------------------------------------------------------------ selection

    def oldest(self, rng: Optional[random.Random] = None) -> Optional[NodeDescriptor]:
        """The descriptor with the highest age (the *tail* policy), or ``None`` if empty.

        Age ties are common (ages are small integers), so the tie-break matters: when an
        ``rng`` is provided, a uniformly random descriptor among the oldest ones is
        returned. A deterministic tie-break (highest node id) would concentrate shuffle
        requests on a few nodes and bias both the load distribution and Croupier's
        ratio estimator, which assumes shuffle targets are chosen uniformly at random.
        Without an ``rng`` the deterministic tie-break is used (handy in tests).
        """
        born = self._born
        if not born:
            return None
        # Highest effective age == smallest born round; one pass over plain ints.
        min_born = min(born.values())
        candidates = [node_id for node_id, b in born.items() if b == min_born]
        if rng is None or len(candidates) == 1:
            chosen = max(candidates)
        else:
            chosen = rng.choice(candidates)
        return self._materialize(chosen)

    def random_descriptor(self, rng: random.Random) -> Optional[NodeDescriptor]:
        """A uniformly random descriptor, or ``None`` if the view is empty."""
        if not self._entries:
            return None
        return self._materialize(rng.choice(self._id_list()))

    def random_subset(
        self,
        rng: random.Random,
        count: int,
        exclude_ids: Optional[Iterable[int]] = None,
    ) -> List[NodeDescriptor]:
        """Up to ``count`` distinct descriptors chosen uniformly at random.

        The returned descriptors are shared (immutable) references with their ages
        materialised at the current clock, so they are safe to embed in messages as-is.
        """
        if exclude_ids is not None:
            excluded = set(exclude_ids)
            candidates = [nid for nid in self._entries if nid not in excluded]
        else:
            candidates = self._id_list()
        if len(candidates) <= count:
            chosen: Sequence[int] = candidates
        else:
            chosen = rng.sample(candidates, count)
        return [self._materialize(node_id) for node_id in chosen]

    # ------------------------------------------------------------------ merging

    def update_view(
        self,
        sent: Sequence[NodeDescriptor],
        received: Sequence[NodeDescriptor],
        self_id: int,
    ) -> None:
        """The paper's ``updateView`` procedure (Algorithm 2, lines 46–58).

        For every received descriptor: refresh it if already present; otherwise add it
        if there is free space; otherwise evict one of the descriptors *we sent to the
        peer* (the swapper policy — the information is not lost, the peer now holds it)
        and insert the received one. Descriptors describing ourselves are skipped.
        """
        entries = self._entries
        born = self._born
        clock = self._clock
        # A deque keeps the eviction queue O(1) per pop; with large shuffle batches the
        # previous ``list.pop(0)`` made the merge quadratic in the batch size. Built
        # eagerly: membership must be tested against the view *before* any received
        # descriptor is merged (a stale sent entry re-added by ``received`` must not
        # become eviction-eligible).
        sent_queue = deque(d for d in sent if d.node_id in entries)
        for incoming in received:
            node_id = incoming.node_id
            if node_id == self_id:
                continue
            incoming_born = clock - incoming.age
            existing_born = born.get(node_id)
            if existing_born is not None:
                if incoming_born > existing_born:
                    entries[node_id] = incoming
                    born[node_id] = incoming_born
                continue
            if len(entries) < self.capacity:
                entries[node_id] = incoming
                born[node_id] = incoming_born
                self._ids = None
                continue
            evicted = False
            while sent_queue:
                candidate = sent_queue.popleft()
                if candidate.node_id in entries:
                    del entries[candidate.node_id]
                    del born[candidate.node_id]
                    evicted = True
                    break
            if evicted:
                entries[node_id] = incoming
                born[node_id] = incoming_born
                self._ids = None
            # If nothing we sent is still present, the received descriptor is dropped —
            # the view keeps its (bounded) current content, as in the paper.

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartialView({len(self)}/{self.capacity}: {sorted(self._entries)})"
