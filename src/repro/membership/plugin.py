"""The protocol plugin registry: how peer-sampling protocols join the experiment stack.

Every protocol module registers one :class:`ProtocolPlugin` — its name, component
factory, typed configuration class and (derived) capability set — at import time.
Everything downstream of the membership layer (:class:`~repro.workload.Scenario`, the
experiment matrix, the metric probes, the CLI) works against this registry, so adding a
protocol is a registration, not an edit to the scenario builder or the collectors:

>>> from repro.membership.plugin import get_plugin
>>> from repro.membership.capabilities import RatioEstimating
>>> get_plugin("croupier").supports(RatioEstimating)
True

The five built-in protocols live in modules that are imported lazily by
:func:`load_builtin_plugins` (called by the consumers above), keeping ``import
repro.membership`` cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Type

from repro.errors import CapabilityError, ConfigurationError
from repro.membership.capabilities import (
    Capability,
    capabilities_of,
    capability_name,
)

#: Modules whose import registers the built-in plugins (order fixes registry order).
_BUILTIN_MODULES = (
    "repro.core.croupier",
    "repro.membership.cyclon",
    "repro.membership.gozar",
    "repro.membership.nylon",
    "repro.membership.arrg",
)


@dataclass(frozen=True)
class ProtocolPlugin:
    """One registered peer-sampling protocol.

    Attributes
    ----------
    name:
        Registry key (``"croupier"``, ``"gozar"``, ...), also the CLI spelling.
    factory:
        ``factory(host, config)`` builds one service component for one node. Usually
        the component class itself.
    config_cls:
        The typed per-protocol configuration dataclass; ``config_cls()`` must be the
        paper's default setup for this protocol.
    capabilities:
        The capability classes the built component implements. Derived from the
        component class by :func:`register_protocol` unless given explicitly.
    description:
        One line for ``repro matrix --list-protocols`` and the docs.
    nat_free_baseline:
        ``True`` for protocols the paper runs over public nodes only (Cyclon's "true
        randomness" baseline role); harnesses use it to pick the population shape.
    """

    name: str
    factory: Callable
    config_cls: type
    capabilities: frozenset = field(default_factory=frozenset)
    description: str = ""
    nat_free_baseline: bool = False

    def supports(self, capability: Type[Capability]) -> bool:
        return capability in self.capabilities

    def require(self, capability: Type[Capability], context: str = "") -> None:
        """Raise :class:`CapabilityError` (naming the capability) if unsupported."""
        if not self.supports(capability):
            suffix = f" (required by {context})" if context else ""
            raise CapabilityError(
                f"protocol {self.name!r} does not provide the "
                f"{capability_name(capability)!r} capability{suffix}; supported "
                f"protocols: {supporting(capability)}"
            )

    def default_config(self):
        """A fresh instance of the protocol's paper-default configuration."""
        return self.config_cls()

    def create(self, host, config=None):
        """Build one service component for ``host`` (``None`` config = paper default)."""
        return self.factory(host, config if config is not None else self.default_config())

    def capability_names(self) -> List[str]:
        return sorted(capability_name(cap) for cap in self.capabilities)


#: The global protocol registry (filled by the protocol modules at import time).
_REGISTRY: Dict[str, ProtocolPlugin] = {}


def register_protocol(
    name: str,
    factory: Callable,
    config_cls: type,
    description: str = "",
    capabilities: Optional[frozenset] = None,
    nat_free_baseline: bool = False,
    replace: bool = False,
) -> ProtocolPlugin:
    """Register a protocol plugin; called once at the bottom of each protocol module.

    ``capabilities`` defaults to what ``factory`` (when it is a class) inherits from the
    capability ABCs; pass them explicitly only for non-class factories.
    """
    if name in _REGISTRY and not replace:
        raise ConfigurationError(f"protocol {name!r} already registered")
    if capabilities is None:
        if not isinstance(factory, type):
            raise ConfigurationError(
                f"protocol {name!r}: pass capabilities explicitly for non-class factories"
            )
        capabilities = capabilities_of(factory)
    plugin = ProtocolPlugin(
        name=name,
        factory=factory,
        config_cls=config_cls,
        capabilities=frozenset(capabilities),
        description=description,
        nat_free_baseline=nat_free_baseline,
    )
    _REGISTRY[name] = plugin
    return plugin


def unregister_protocol(name: str) -> None:
    """Remove a plugin (tests only)."""
    _REGISTRY.pop(name, None)


def load_builtin_plugins() -> None:
    """Import the built-in protocol modules so their registrations run (idempotent)."""
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_plugin(name: str) -> ProtocolPlugin:
    """Look up a plugin by name, loading the built-ins on first use."""
    if name not in _REGISTRY:
        load_builtin_plugins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered: {protocol_names()}"
        ) from None


def protocol_names() -> List[str]:
    """Sorted names of every registered protocol (built-ins included)."""
    load_builtin_plugins()
    return sorted(_REGISTRY)


def all_plugins() -> List[ProtocolPlugin]:
    """Every registered plugin, sorted by name."""
    return [_REGISTRY[name] for name in protocol_names()]


def supporting(capability: Type[Capability]) -> List[str]:
    """Names of the registered protocols advertising ``capability``."""
    return [p.name for p in all_plugins() if p.supports(capability)]
