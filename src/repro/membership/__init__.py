"""Peer-sampling machinery shared by Croupier and the baseline protocols.

The module layout mirrors the design space described in the gossip peer-sampling
literature the paper builds on (Jelasity et al. [7], Cyclon [6]):

* :mod:`~repro.membership.descriptor` — node descriptors: an address, the node's NAT
  type, an age in rounds, and optional protocol-specific payload (e.g. Gozar's relay
  parents).
* :mod:`~repro.membership.view` — the bounded partial view with the operations every
  protocol needs (ageing, tail selection, random subsets, the paper's ``updateView``
  merge).
* :mod:`~repro.membership.policies` — named node-selection and view-merge policies so
  experiments can ablate them (the paper uses *tail* selection with *swapper* merging
  for all compared protocols).
* :mod:`~repro.membership.base` — the abstract :class:`PeerSamplingService` component:
  round timer, sample API, and the hooks the metrics collector uses.
* :mod:`~repro.membership.cyclon`, :mod:`~repro.membership.nylon`,
  :mod:`~repro.membership.gozar`, :mod:`~repro.membership.arrg` — the baseline
  protocols the paper compares against (and ARRG from related work).
"""

from repro.membership.base import PeerSamplingService
from repro.membership.descriptor import NodeDescriptor
from repro.membership.policies import MergePolicy, SelectionPolicy
from repro.membership.view import PartialView

__all__ = [
    "MergePolicy",
    "NodeDescriptor",
    "PartialView",
    "PeerSamplingService",
    "SelectionPolicy",
]
