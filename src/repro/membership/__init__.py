"""Peer-sampling machinery shared by Croupier and the baseline protocols.

The module layout mirrors the design space described in the gossip peer-sampling
literature the paper builds on (Jelasity et al. [7], Cyclon [6]):

* :mod:`~repro.membership.descriptor` — node descriptors: an address, the node's NAT
  type, an age in rounds, and optional protocol-specific payload (e.g. Gozar's relay
  parents).
* :mod:`~repro.membership.view` — the bounded partial view with the operations every
  protocol needs (ageing, tail selection, random subsets, the paper's ``updateView``
  merge).
* :mod:`~repro.membership.policies` — named node-selection and view-merge policies so
  experiments can ablate them (the paper uses *tail* selection with *swapper* merging
  for all compared protocols).
* :mod:`~repro.membership.base` — the abstract :class:`PeerSamplingService` component:
  round timer, sample API, and the hooks the metrics collector uses.
* :mod:`~repro.membership.capabilities` — the capability interfaces
  (:class:`OverlaySampling`, :class:`RatioEstimating`, :class:`NatAware`) the
  experiment layers query instead of probing concrete protocol classes.
* :mod:`~repro.membership.plugin` — the :class:`ProtocolPlugin` registry every
  protocol module registers into; :class:`~repro.workload.Scenario`, the experiment
  matrix and the CLI all resolve protocols through it.
* :mod:`~repro.membership.cyclon`, :mod:`~repro.membership.nylon`,
  :mod:`~repro.membership.gozar`, :mod:`~repro.membership.arrg` — the baseline
  protocols the paper compares against (and ARRG from related work).
"""

from repro.membership.base import PeerSamplingService
from repro.membership.capabilities import (
    CAPABILITIES,
    Capability,
    NatAware,
    OverlaySampling,
    RatioEstimating,
    capability_name,
)
from repro.membership.descriptor import NodeDescriptor
from repro.membership.plugin import (
    ProtocolPlugin,
    all_plugins,
    get_plugin,
    load_builtin_plugins,
    protocol_names,
    register_protocol,
    supporting,
    unregister_protocol,
)
from repro.membership.policies import MergePolicy, SelectionPolicy
from repro.membership.view import PartialView

__all__ = [
    "CAPABILITIES",
    "Capability",
    "MergePolicy",
    "NatAware",
    "NodeDescriptor",
    "OverlaySampling",
    "PartialView",
    "PeerSamplingService",
    "ProtocolPlugin",
    "RatioEstimating",
    "SelectionPolicy",
    "all_plugins",
    "capability_name",
    "get_plugin",
    "load_builtin_plugins",
    "protocol_names",
    "register_protocol",
    "supporting",
    "unregister_protocol",
]
