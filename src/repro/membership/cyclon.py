"""Cyclon: the classic gossip peer-sampling protocol (Voulgaris et al. [6]).

The paper uses Cyclon as the *baseline for true randomness*: its experiments run Cyclon
over public nodes only, because plain Cyclon cannot shuffle with nodes behind NATs (its
view exchanges would simply be filtered by the target's NAT). The implementation here is
the standard enhanced shuffle: tail selection, push-pull exchange and swapper merging —
the same policies the paper fixes for every compared protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.membership.base import PeerSamplingService, PssConfig
from repro.membership.descriptor import NodeDescriptor
from repro.membership.plugin import register_protocol
from repro.membership.policies import MergePolicy, SelectionPolicy, merge_views, select_partner
from repro.membership.view import PartialView
from repro.net.address import NodeAddress
from repro.simulator.host import Host
from repro.simulator.message import Message, Packet


@dataclass
class CyclonShuffleRequest(Message):
    """Initiator → partner: a subset of the initiator's view (including itself, age 0)."""

    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class CyclonShuffleResponse(Message):
    """Partner → initiator: a subset of the partner's view."""

    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


class Cyclon(PeerSamplingService):
    """The classic single-view shuffle. NAT-oblivious by design."""

    def __init__(self, host: Host, config: Optional[PssConfig] = None) -> None:
        super().__init__(host, config or PssConfig(), name="Cyclon")
        self.view = PartialView(self.config.view_size)
        self._pending: Dict[int, Tuple[NodeDescriptor, ...]] = {}
        self.subscribe(CyclonShuffleRequest, self._on_request)
        self.subscribe(CyclonShuffleResponse, self._on_response)

    # ------------------------------------------------------------------ bootstrap

    def initialize_view(self, seeds: Sequence[NodeAddress]) -> None:
        for address in seeds:
            if address.node_id == self.address.node_id:
                continue
            self.view.add(NodeDescriptor(address=address, age=0))

    # ------------------------------------------------------------------ round

    def on_round(self) -> None:
        self.view.increase_ages()
        partner = select_partner(self.view, self.config.selection, self.rng)
        if partner is None:
            self.stats.rounds_skipped_empty_view += 1
            return
        self.view.remove(partner.node_id)

        subset = self.view.random_subset(
            self.rng, max(0, self.config.shuffle_size - 1), exclude_ids=(partner.node_id,)
        )
        subset.append(self.self_descriptor())

        # Immutable descriptors: the pending record and the message share one tuple.
        sent = tuple(subset)
        self._pending[partner.node_id] = sent
        self.stats.shuffles_initiated += 1
        self.send_to_node(
            partner.address,
            CyclonShuffleRequest(sender=self.self_descriptor(), descriptors=sent),
        )

    # ------------------------------------------------------------------ handlers

    def _on_request(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, CyclonShuffleRequest)
        self.stats.shuffle_requests_handled += 1
        reply_subset = self.view.random_subset(
            self.rng, self.config.shuffle_size, exclude_ids=(message.sender.node_id,)
        )
        merge_views(
            self.view,
            sent=reply_subset,
            received=message.descriptors,
            self_id=self.address.node_id,
            policy=self.config.merge,
        )
        self.send(
            packet.source,
            CyclonShuffleResponse(
                sender=self.self_descriptor(), descriptors=tuple(reply_subset)
            ),
        )

    def _on_response(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, CyclonShuffleResponse)
        self.stats.shuffle_responses_received += 1
        sent = self._pending.pop(message.sender.node_id, ())
        merge_views(
            self.view,
            sent=sent,
            received=message.descriptors,
            self_id=self.address.node_id,
            policy=self.config.merge,
        )

    # ------------------------------------------------------------------ sampling

    def sample(self) -> Optional[NodeAddress]:
        self.stats.samples_served += 1
        descriptor = self.view.random_descriptor(self.rng)
        return descriptor.address if descriptor is not None else None

    def neighbor_addresses(self) -> List[NodeAddress]:
        return [d.address for d in self.view]


register_protocol(
    "cyclon",
    Cyclon,
    PssConfig,
    description="classic enhanced shuffle (tail selection, swapper merge); the paper's "
    "NAT-oblivious true-randomness baseline, run over public nodes only",
    nat_free_baseline=True,
)
