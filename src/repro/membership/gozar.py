"""Gozar: NAT-friendly peer sampling with one-hop distributed relaying (Payberah et al. [10]).

Gozar keeps a single partial view. Every **private** node maintains a small redundant set
of public *parents* that relay traffic to it: the private node registers with each parent
and refreshes the registration (and the NAT mapping towards the parent) with periodic
keep-alives. The addresses of a private node's parents are cached inside its node
descriptor, so any node that wants to shuffle with it can pick one of the parents from
the descriptor and send the request through that single relay hop — no chains, unlike
Nylon, but descriptors are bigger and every relayed shuffle costs an extra transmission,
which is why Gozar's overhead sits between Croupier's and Nylon's in Figure 7(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.membership.base import PeerSamplingService, PssConfig
from repro.membership.capabilities import NatAware
from repro.membership.descriptor import NodeDescriptor
from repro.membership.plugin import register_protocol
from repro.membership.view import PartialView
from repro.nat.traversal import (
    KeepAlive,
    KeepAliveAck,
    RelayEnvelope,
    RelayRegistration,
    RelayRegistrationAck,
)
from repro.net.address import NodeAddress
from repro.simulator.host import Host
from repro.simulator.message import Message, Packet


@dataclass
class GozarShuffleRequest(Message):
    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class GozarShuffleResponse(Message):
    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class GozarConfig(PssConfig):
    """Gozar-specific knobs.

    Attributes
    ----------
    parent_count:
        How many public parents each private node tries to maintain (redundancy against
        parent churn; the Gozar paper uses a small constant — 3 keeps descriptors at a
        realistic size).
    parent_keepalive_every_rounds:
        How often (in rounds) a private node refreshes each parent registration.
    parent_timeout_rounds:
        A parent that has not acknowledged a keep-alive for this many rounds is dropped
        and replaced.
    """

    parent_count: int = 3
    parent_keepalive_every_rounds: int = 5
    parent_timeout_rounds: int = 20


class Gozar(PeerSamplingService, NatAware):
    """Single-view NAT-aware peer sampling using one-hop relaying via parents."""

    def __init__(self, host: Host, config: Optional[GozarConfig] = None) -> None:
        super().__init__(host, config or GozarConfig(), name="Gozar")
        self.config: GozarConfig = self.config  # type: ignore[assignment]
        self.view = PartialView(self.config.view_size)
        #: Private-node side: parent address -> round of the last acknowledgement.
        self._parents: Dict[int, NodeAddress] = {}
        self._parent_last_ack: Dict[int, int] = {}
        #: Public-node side: the private children registered with us.
        self._children: Dict[int, NodeAddress] = {}
        self._pending: Dict[int, Tuple[NodeDescriptor, ...]] = {}
        self.subscribe(GozarShuffleRequest, self._on_request)
        self.subscribe(GozarShuffleResponse, self._on_response)
        self.subscribe(RelayEnvelope, self._on_relay)
        self.subscribe(RelayRegistration, self._on_registration)
        self.subscribe(RelayRegistrationAck, self._on_registration_ack)
        self.subscribe(KeepAlive, self._on_keepalive)
        self.subscribe(KeepAliveAck, self._on_keepalive_ack)

    # ------------------------------------------------------------------ bootstrap

    def initialize_view(self, seeds: Sequence[NodeAddress]) -> None:
        for address in seeds:
            if address.node_id == self.address.node_id:
                continue
            self.view.add(NodeDescriptor(address=address, age=0))

    # ------------------------------------------------------------------ parents (private side)

    def parent_addresses(self) -> Tuple[NodeAddress, ...]:
        """The current parent set (empty for public nodes)."""
        return tuple(self._parents.values())

    def _maintain_parents(self) -> None:
        if self.address.is_public:
            return
        # Drop parents that stopped acknowledging keep-alives.
        expired = [
            node_id
            for node_id, last_ack in self._parent_last_ack.items()
            if self.current_round - last_ack > self.config.parent_timeout_rounds
        ]
        for node_id in expired:
            self._parents.pop(node_id, None)
            self._parent_last_ack.pop(node_id, None)
        # Recruit new parents from the public descriptors in the view.
        if len(self._parents) < self.config.parent_count:
            candidates = [
                d.address
                for d in self.view
                if d.is_public and d.node_id not in self._parents
            ]
            self.rng.shuffle(candidates)
            needed = self.config.parent_count - len(self._parents)
            for address in candidates[:needed]:
                self.send_to_node(address, RelayRegistration(origin=self.address))
        # Refresh the registrations (and NAT mappings) of current parents.
        if self.current_round % self.config.parent_keepalive_every_rounds == 0:
            for address in self._parents.values():
                self.send_to_node(address, KeepAlive(origin=self.address))

    # ------------------------------------------------------------------ round

    def on_round(self) -> None:
        self.view.increase_ages()
        self._maintain_parents()

        partner = self.view.oldest(self.rng)
        if partner is None:
            self.stats.rounds_skipped_empty_view += 1
            return
        self.view.remove(partner.node_id)

        subset = self.view.random_subset(
            self.rng, max(0, self.config.shuffle_size - 1), exclude_ids=(partner.node_id,)
        )
        subset.append(self._self_descriptor_with_parents())
        sent = tuple(subset)
        self._pending[partner.node_id] = sent
        self.stats.shuffles_initiated += 1

        request = GozarShuffleRequest(
            sender=self._self_descriptor_with_parents(), descriptors=sent
        )
        self._send_possibly_relayed(partner, request)

    def _self_descriptor_with_parents(self) -> NodeDescriptor:
        descriptor = self.self_descriptor()
        if self.address.is_private:
            descriptor = descriptor.with_parents(self.parent_addresses())
        return descriptor

    def _send_possibly_relayed(self, partner: NodeDescriptor, message: Message) -> None:
        """Send directly to public partners, via one of their parents to private ones."""
        if partner.is_public:
            self.send_to_node(partner.address, message)
            return
        if not partner.parents:
            # A private partner whose descriptor carries no (live) parent is
            # unreachable: the shuffle is simply lost this round.
            self.stats.extra["shuffles_without_parent"] = (
                self.stats.extra.get("shuffles_without_parent", 0) + 1
            )
            return
        relay = self.rng.choice(list(partner.parents))
        envelope = RelayEnvelope(
            target=partner.address, initiator=self.address, payload=message
        )
        self.send_to_node(relay, envelope)

    # ------------------------------------------------------------------ relay / registration

    def _on_relay(self, packet: Packet) -> None:
        """Relay handling: forward to a registered child, or unwrap if we are the target."""
        message = packet.message
        assert isinstance(message, RelayEnvelope)
        if message.target.node_id == self.address.node_id:
            # We are the final recipient: unwrap the payload and process it as if it
            # had arrived directly (the source endpoint is the relay's, which is where
            # a direct reply would have to go anyway if the initiator were unreachable;
            # replies are routed from the descriptor instead, so this is only metadata).
            inner = Packet(
                source=packet.source,
                destination=packet.destination,
                message=message.payload,
                sender=packet.sender,
                sent_at=packet.sent_at,
            )
            self.handle_packet(inner)
            return
        child = self._children.get(message.target.node_id)
        if child is None:
            self.stats.extra["relay_unknown_child"] = (
                self.stats.extra.get("relay_unknown_child", 0) + 1
            )
            return
        self.stats.extra["relayed_messages"] = (
            self.stats.extra.get("relayed_messages", 0) + 1
        )
        # The child keep-alives us, so its NAT holds a mapping towards our endpoint and
        # this direct send gets through.
        self.send_to_node(child, message.forwarded())

    def _on_registration(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, RelayRegistration)
        if not self.address.is_public:
            return
        self._children[message.origin.node_id] = message.origin
        self.send(packet.source, RelayRegistrationAck(origin=self.address, accepted=True))

    def _on_registration_ack(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, RelayRegistrationAck)
        if not message.accepted:
            return
        self._parents[message.origin.node_id] = message.origin
        self._parent_last_ack[message.origin.node_id] = self.current_round

    def _on_keepalive(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, KeepAlive)
        if message.origin.node_id in self._children:
            self._children[message.origin.node_id] = message.origin
            self.send(packet.source, KeepAliveAck(origin=self.address))

    def _on_keepalive_ack(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, KeepAliveAck)
        if message.origin.node_id in self._parents:
            self._parent_last_ack[message.origin.node_id] = self.current_round

    # ------------------------------------------------------------------ shuffle handlers

    def _on_request(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, GozarShuffleRequest)
        self.stats.shuffle_requests_handled += 1
        reply_subset = self.view.random_subset(
            self.rng, self.config.shuffle_size, exclude_ids=(message.sender.node_id,)
        )
        if self.address.is_private:
            reply_subset = [
                d if d.node_id != self.address.node_id else self._self_descriptor_with_parents()
                for d in reply_subset
            ]
        self.view.update_view(
            sent=reply_subset,
            received=message.descriptors,
            self_id=self.address.node_id,
        )
        response = GozarShuffleResponse(
            sender=self._self_descriptor_with_parents(), descriptors=tuple(reply_subset)
        )
        # The shuffle request either came directly from the initiator or was relayed by
        # one of our parents; replying to the initiator's descriptor (possibly via one
        # of *its* parents) covers both cases.
        self._send_possibly_relayed(message.sender, response)

    def _on_response(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, GozarShuffleResponse)
        self.stats.shuffle_responses_received += 1
        sent = self._pending.pop(message.sender.node_id, ())
        self.view.update_view(
            sent=sent,
            received=message.descriptors,
            self_id=self.address.node_id,
        )

    # ------------------------------------------------------------------ sampling

    def sample(self) -> Optional[NodeAddress]:
        self.stats.samples_served += 1
        descriptor = self.view.random_descriptor(self.rng)
        return descriptor.address if descriptor is not None else None

    def neighbor_addresses(self) -> List[NodeAddress]:
        return [d.address for d in self.view]

    # ------------------------------------------------------------------ introspection

    def private_peer_strategy(self) -> str:
        return "relay"

    @property
    def registered_children(self) -> int:
        """How many private nodes use this (public) node as a relay parent."""
        return len(self._children)


register_protocol(
    "gozar",
    Gozar,
    GozarConfig,
    description="one-hop distributed relaying: private nodes cache public relay "
    "parents in their descriptors, shuffles to them go through one relay hop",
)
