"""Node descriptors: the unit of information exchanged by every peer-sampling protocol.

The paper (Section VI): "A node descriptor contains the node's address, its NAT type,
and a timestamp storing the number of rounds since the descriptor was created."
Protocol-specific extras (Gozar's relay parents) ride along in :attr:`NodeDescriptor.parents`.

Performance contract
--------------------
Descriptors are **immutable** ``__slots__`` value objects. Immutability is what lets the
rest of the hot path share references instead of defensively copying: a
:class:`~repro.membership.view.PartialView` stores the very descriptor object it was
handed, messages embed the same objects the view returned, and
:meth:`NodeDescriptor.copy` degenerates to returning ``self``. The :attr:`age` field is
the age *at the time this particular object was materialised*; views age their contents
lazily (a single per-view round counter) and materialise a descriptor with the current
age only when one actually crosses an API boundary — see
:class:`~repro.membership.view.PartialView` for the lazy-ageing bookkeeping.
"""

from __future__ import annotations

from typing import Tuple

from repro.net.address import NatType, NodeAddress

_set_slot = object.__setattr__


class NodeDescriptor:
    """A (possibly stale) claim that a node exists and can be contacted.

    Attributes
    ----------
    address:
        The node's :class:`~repro.net.address.NodeAddress` (which carries its NAT type).
    age:
        Number of gossip rounds since the descriptor was created by the node itself,
        as of the moment this object was materialised. Freshly self-created descriptors
        have age 0. Views do **not** rewrite this field each round; they track ageing
        lazily and hand out re-materialised descriptors on access.
    parents:
        Gozar only: the public relay nodes through which the (private) subject of this
        descriptor can be reached. Empty for every other protocol.
    """

    __slots__ = ("address", "age", "parents", "node_id", "_wire_size")

    def __init__(
        self,
        address: NodeAddress,
        age: int = 0,
        parents: Tuple[NodeAddress, ...] = (),
    ) -> None:
        _set_slot(self, "address", address)
        _set_slot(self, "age", age)
        _set_slot(self, "parents", parents)
        # node_id is read on every merge/selection step; a plain slot avoids a
        # property call through the address on each access.
        _set_slot(self, "node_id", address.node_id)
        _set_slot(self, "_wire_size", None)

    # ------------------------------------------------------------------ immutability

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(
            f"NodeDescriptor is immutable; cannot set {name!r} "
            "(use aged()/with_age()/with_parents() to derive a new descriptor)"
        )

    def __delattr__(self, name: str) -> None:
        raise AttributeError("NodeDescriptor is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeDescriptor):
            return NotImplemented
        return (
            self.address == other.address
            and self.age == other.age
            and self.parents == other.parents
        )

    # Match the previous (non-frozen dataclass) behaviour: descriptors defined
    # equality but were never hashable — node ids key every table instead.
    __hash__ = None  # type: ignore[assignment]

    # Descriptors are immutable all the way down (address and parents are frozen),
    # so copying — including the deep copy a Scenario.clone() performs — can share
    # the object, exactly like copy() does.
    def __copy__(self) -> "NodeDescriptor":
        return self

    def __deepcopy__(self, memo: dict) -> "NodeDescriptor":
        return self

    # ------------------------------------------------------------------ identity

    @property
    def nat_type(self) -> NatType:
        return self.address.nat_type

    @property
    def is_public(self) -> bool:
        return self.address.is_public

    @property
    def is_private(self) -> bool:
        return self.address.is_private

    # ------------------------------------------------------------------ operations

    def copy(self) -> "NodeDescriptor":
        """Return ``self``: descriptors are immutable, so sharing is always safe."""
        return self

    def aged(self, increment: int = 1) -> "NodeDescriptor":
        """A descriptor with the age increased by ``increment``."""
        return NodeDescriptor(self.address, self.age + increment, self.parents)

    def with_age(self, age: int) -> "NodeDescriptor":
        """A descriptor with the age replaced (used by lazy-ageing views)."""
        if age == self.age:
            return self
        return NodeDescriptor(self.address, age, self.parents)

    def is_fresher_than(self, other: "NodeDescriptor") -> bool:
        """Whether this descriptor carries more recent information than ``other``."""
        return self.age < other.age

    def with_parents(self, parents: Tuple[NodeAddress, ...]) -> "NodeDescriptor":
        """A descriptor with the relay-parent list replaced (Gozar)."""
        return NodeDescriptor(self.address, self.age, parents)

    # ------------------------------------------------------------------ accounting

    @property
    def wire_size(self) -> int:
        """Bytes to encode the descriptor: address + age byte + any relay parents.

        Computed once and cached — the traffic monitor asks for message sizes on every
        send *and* receive, which made this the hottest property in the whole simulator
        before caching.
        """
        size = self._wire_size
        if size is None:
            size = self.address.wire_size + 1 + sum(p.wire_size for p in self.parents)
            _set_slot(self, "_wire_size", size)
        return size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f", parents={len(self.parents)}" if self.parents else ""
        return f"Descriptor(node={self.node_id}, {self.nat_type.value}, age={self.age}{suffix})"
