"""Node descriptors: the unit of information exchanged by every peer-sampling protocol.

The paper (Section VI): "A node descriptor contains the node's address, its NAT type,
and a timestamp storing the number of rounds since the descriptor was created."
Protocol-specific extras (Gozar's relay parents) ride along in :attr:`NodeDescriptor.parents`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.net.address import NatType, NodeAddress


@dataclass
class NodeDescriptor:
    """A (possibly stale) claim that a node exists and can be contacted.

    Attributes
    ----------
    address:
        The node's :class:`~repro.net.address.NodeAddress` (which carries its NAT type).
    age:
        Number of gossip rounds since the descriptor was created by the node itself.
        Freshly self-created descriptors have age 0; every round each node increments
        the age of all descriptors it stores.
    parents:
        Gozar only: the public relay nodes through which the (private) subject of this
        descriptor can be reached. Empty for every other protocol.
    """

    address: NodeAddress
    age: int = 0
    parents: Tuple[NodeAddress, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------ identity

    @property
    def node_id(self) -> int:
        return self.address.node_id

    @property
    def nat_type(self) -> NatType:
        return self.address.nat_type

    @property
    def is_public(self) -> bool:
        return self.address.is_public

    @property
    def is_private(self) -> bool:
        return self.address.is_private

    # ------------------------------------------------------------------ operations

    def copy(self) -> "NodeDescriptor":
        """An independent copy (descriptors placed in messages must never be aliased)."""
        return NodeDescriptor(address=self.address, age=self.age, parents=self.parents)

    def aged(self, increment: int = 1) -> "NodeDescriptor":
        """A copy with the age increased by ``increment``."""
        return NodeDescriptor(
            address=self.address, age=self.age + increment, parents=self.parents
        )

    def is_fresher_than(self, other: "NodeDescriptor") -> bool:
        """Whether this descriptor carries more recent information than ``other``."""
        return self.age < other.age

    def with_parents(self, parents: Tuple[NodeAddress, ...]) -> "NodeDescriptor":
        """A copy with the relay-parent list replaced (Gozar)."""
        return NodeDescriptor(address=self.address, age=self.age, parents=parents)

    # ------------------------------------------------------------------ accounting

    @property
    def wire_size(self) -> int:
        """Bytes to encode the descriptor: address + age byte + any relay parents."""
        return self.address.wire_size + 1 + sum(p.wire_size for p in self.parents)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        suffix = f", parents={len(self.parents)}" if self.parents else ""
        return f"Descriptor(node={self.node_id}, {self.nat_type.value}, age={self.age}{suffix})"
