"""ARRG: Actualized Robust Random Gossiping (Drost et al. [15]).

ARRG was the first peer-sampling service to address NATs, and the Croupier paper uses it
as a cautionary tale rather than a head-to-head baseline: when a view exchange fails
(e.g. because the chosen partner sits behind a NAT), ARRG falls back to a node from its
*open list* — nodes with which it completed a successful exchange in the past. The
fallback keeps the overlay connected but **biases** the sampling towards the open-list
nodes, which is exactly the kind of bias the representation ablation in
``repro/experiments/ablations.py`` quantifies.

The implementation is a Cyclon-style single-view shuffle plus the open list and a
per-shuffle timeout that triggers the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.membership.base import PeerSamplingService, PssConfig
from repro.membership.descriptor import NodeDescriptor
from repro.membership.plugin import register_protocol
from repro.membership.view import PartialView
from repro.net.address import NodeAddress
from repro.simulator.host import Host
from repro.simulator.message import Message, Packet


@dataclass
class ArrgShuffleRequest(Message):
    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class ArrgShuffleResponse(Message):
    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class ArrgConfig(PssConfig):
    """ARRG-specific knobs.

    Attributes
    ----------
    open_list_size:
        Maximum number of previously successful partners remembered for fallback.
    exchange_timeout_ms:
        How long to wait for a shuffle response before falling back to the open list.
    """

    open_list_size: int = 10
    exchange_timeout_ms: float = 500.0


class Arrg(PeerSamplingService):
    """Cyclon-style shuffling with an open-list fallback on failed exchanges."""

    def __init__(self, host: Host, config: Optional[ArrgConfig] = None) -> None:
        super().__init__(host, config or ArrgConfig(), name="ARRG")
        self.config: ArrgConfig = self.config  # type: ignore[assignment]
        self.view = PartialView(self.config.view_size)
        #: Nodes we successfully exchanged views with, most recent last.
        self.open_list: List[NodeAddress] = []
        self._pending: Dict[int, Tuple[NodeDescriptor, ...]] = {}
        self.fallback_exchanges = 0
        self.subscribe(ArrgShuffleRequest, self._on_request)
        self.subscribe(ArrgShuffleResponse, self._on_response)

    # ------------------------------------------------------------------ bootstrap

    def initialize_view(self, seeds: Sequence[NodeAddress]) -> None:
        for address in seeds:
            if address.node_id == self.address.node_id:
                continue
            self.view.add(NodeDescriptor(address=address, age=0))

    # ------------------------------------------------------------------ round

    def on_round(self) -> None:
        self.view.increase_ages()
        partner = self.view.oldest(self.rng)
        if partner is None:
            self.stats.rounds_skipped_empty_view += 1
            return
        self.view.remove(partner.node_id)
        subset = self._make_subset(exclude_id=partner.node_id)
        self._start_exchange(partner.address, subset, allow_fallback=True)

    def _make_subset(self, exclude_id: int) -> Tuple[NodeDescriptor, ...]:
        subset = self.view.random_subset(
            self.rng, max(0, self.config.shuffle_size - 1), exclude_ids=(exclude_id,)
        )
        subset.append(self.self_descriptor())
        return tuple(subset)

    def _start_exchange(
        self,
        partner: NodeAddress,
        subset: Tuple[NodeDescriptor, ...],
        allow_fallback: bool,
    ) -> None:
        self._pending[partner.node_id] = subset
        self.stats.shuffles_initiated += 1
        self.send_to_node(
            partner, ArrgShuffleRequest(sender=self.self_descriptor(), descriptors=subset)
        )
        if allow_fallback:
            self.schedule(
                self.config.exchange_timeout_ms,
                lambda: self._maybe_fallback(partner.node_id, subset),
            )

    def _maybe_fallback(self, partner_id: int, subset: Tuple[NodeDescriptor, ...]) -> None:
        """If the exchange with ``partner_id`` never completed, retry with the open list."""
        if partner_id not in self._pending:
            return  # the response arrived in time
        del self._pending[partner_id]
        candidates = [a for a in self.open_list if a.node_id != partner_id]
        if not candidates:
            return
        fallback = self.rng.choice(candidates)
        self.fallback_exchanges += 1
        self._start_exchange(fallback, subset, allow_fallback=False)

    def _remember_success(self, partner: NodeAddress) -> None:
        self.open_list = [a for a in self.open_list if a.node_id != partner.node_id]
        self.open_list.append(partner)
        if len(self.open_list) > self.config.open_list_size:
            self.open_list.pop(0)

    # ------------------------------------------------------------------ handlers

    def _on_request(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, ArrgShuffleRequest)
        self.stats.shuffle_requests_handled += 1
        reply_subset = self.view.random_subset(
            self.rng, self.config.shuffle_size, exclude_ids=(message.sender.node_id,)
        )
        self.view.update_view(
            sent=reply_subset,
            received=message.descriptors,
            self_id=self.address.node_id,
        )
        self._remember_success(message.sender.address)
        self.send(
            packet.source,
            ArrgShuffleResponse(
                sender=self.self_descriptor(), descriptors=tuple(reply_subset)
            ),
        )

    def _on_response(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, ArrgShuffleResponse)
        self.stats.shuffle_responses_received += 1
        sent = self._pending.pop(message.sender.node_id, ())
        self.view.update_view(
            sent=sent,
            received=message.descriptors,
            self_id=self.address.node_id,
        )
        self._remember_success(message.sender.address)

    # ------------------------------------------------------------------ sampling

    def sample(self) -> Optional[NodeAddress]:
        self.stats.samples_served += 1
        descriptor = self.view.random_descriptor(self.rng)
        return descriptor.address if descriptor is not None else None

    def neighbor_addresses(self) -> List[NodeAddress]:
        return [d.address for d in self.view]


register_protocol(
    "arrg",
    Arrg,
    ArrgConfig,
    description="Cyclon-style shuffle with an open-list fallback on failed exchanges; "
    "keeps NATed overlays connected at the price of sampling bias",
)
