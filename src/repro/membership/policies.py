"""Named node-selection and view-merge policies.

The gossip peer-sampling design space (Jelasity et al. [7]) is spanned by the choice of
*node selection* (which neighbour to shuffle with), *view exchange* (push vs. push-pull)
and *view merging* (how to combine the received descriptors with the local view). The
paper fixes **tail** selection, **push-pull** exchange and **swapper** merging for every
protocol it compares, "for a cleaner comparison"; the enums here exist so the ablation
experiments can deviate from that choice explicitly.
"""

from __future__ import annotations

import enum
import random
from typing import List, Optional, Sequence

from repro.membership.descriptor import NodeDescriptor
from repro.membership.view import PartialView


class SelectionPolicy(enum.Enum):
    """Which neighbour a node picks to shuffle with."""

    TAIL = "tail"      #: the oldest descriptor (the paper's choice)
    RANDOM = "random"  #: a uniformly random descriptor


class MergePolicy(enum.Enum):
    """How the received descriptors are merged into the local view."""

    SWAPPER = "swapper"  #: evict descriptors we sent (the paper's choice)
    HEALER = "healer"    #: keep the freshest descriptors overall


def select_partner(
    view: PartialView,
    policy: SelectionPolicy,
    rng: random.Random,
) -> Optional[NodeDescriptor]:
    """Pick the shuffle partner from ``view`` according to ``policy``."""
    if policy is SelectionPolicy.TAIL:
        return view.oldest(rng)
    return view.random_descriptor(rng)


def merge_views(
    view: PartialView,
    sent: Sequence[NodeDescriptor],
    received: Sequence[NodeDescriptor],
    self_id: int,
    policy: MergePolicy,
) -> None:
    """Merge ``received`` into ``view`` according to ``policy``.

    ``SWAPPER`` delegates to :meth:`PartialView.update_view` (the paper's procedure).
    ``HEALER`` keeps the globally freshest descriptors: the union of the current view
    and the received descriptors is sorted by age and truncated to the view capacity.
    """
    if policy is MergePolicy.SWAPPER:
        view.update_view(sent, received, self_id)
        return

    freshest: dict = {d.node_id: d for d in view.descriptors()}
    for incoming in received:
        if incoming.node_id == self_id:
            continue
        existing = freshest.get(incoming.node_id)
        if existing is None or incoming.is_fresher_than(existing):
            freshest[incoming.node_id] = incoming
    merged: List[NodeDescriptor] = sorted(
        freshest.values(), key=lambda d: (d.age, d.node_id)
    )
    view.clear()
    for descriptor in merged[: view.capacity]:
        view.add(descriptor)
