"""Nylon: NAT-resilient gossip peer sampling via rendezvous chains (Kermarrec et al. [9]).

Nylon keeps a single partial view containing both public and private nodes. To shuffle
with a **private** partner, the initiator routes a hole-punch request along a chain of
rendezvous points (RVPs): every node remembers, for each descriptor in its view, which
neighbour it learned that descriptor from, and forwards the request to that neighbour.
The chain ends when it reaches a node that has an open NAT mapping to the target (or the
target itself); the target then punches a hole by sending a packet directly to the
initiator, after which the shuffle proceeds over the direct path.

Two properties the Croupier paper calls out are modelled explicitly:

* **Unbounded chains.** The RVP chain length is only limited by a loop-protection hop
  cap; under churn, broken links silently lose shuffle requests (making Nylon fragile —
  compare Figure 7(b)).
* **Keep-alives.** Private nodes refresh the NAT mappings towards the neighbours that
  act as their RVPs every round, which is a large share of Nylon's protocol overhead
  (Figure 7(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.membership.base import PeerSamplingService, PssConfig
from repro.membership.capabilities import NatAware
from repro.membership.descriptor import NodeDescriptor
from repro.membership.plugin import register_protocol
from repro.membership.view import PartialView
from repro.nat.traversal import HolePunchPing, HolePunchRequest, KeepAlive, KeepAliveAck
from repro.net.address import NodeAddress
from repro.simulator.host import Host
from repro.simulator.message import Message, Packet


@dataclass
class NylonShuffleRequest(Message):
    """The actual view-exchange request, sent over a direct (possibly punched) path."""

    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class NylonShuffleResponse(Message):
    sender: NodeDescriptor
    descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)

    def payload_size(self) -> int:
        return self.sender.wire_size + sum(d.wire_size for d in self.descriptors)


@dataclass
class NylonConfig(PssConfig):
    """Nylon-specific knobs on top of the common PSS configuration.

    Attributes
    ----------
    max_rvp_hops:
        Loop-protection cap on the RVP chain length (the protocol itself does not bound
        the chain; this guard only prevents infinite forwarding on routing loops).
    keepalive_fanout:
        Upper bound on the RVP neighbours a private node refreshes per round. Nylon's
        RVP relationships are symmetric and unbounded ("two nodes become the RVP of
        each other whenever they exchange their views"), so private nodes end up
        refreshing most of the nodes they recently exchanged with — a major share of
        Nylon's protocol overhead in Figure 7(a).
    """

    max_rvp_hops: int = 16
    keepalive_fanout: int = 20


class Nylon(PeerSamplingService, NatAware):
    """Single-view NAT-aware peer sampling using RVP chains and hole punching."""

    def __init__(self, host: Host, config: Optional[NylonConfig] = None) -> None:
        super().__init__(host, config or NylonConfig(), name="Nylon")
        self.config: NylonConfig = self.config  # type: ignore[assignment]
        self.view = PartialView(self.config.view_size)
        #: node_id -> the neighbour we learned that node from (our RVP towards it).
        self.rvp_table: Dict[int, NodeAddress] = {}
        #: Nodes we have recently exchanged views with (we hold an open mapping to them).
        self._open_contacts: Dict[int, NodeAddress] = {}
        self._pending: Dict[int, Tuple[NodeDescriptor, ...]] = {}
        #: Shuffle subsets prepared while waiting for a hole-punch ping from the target.
        self._awaiting_punch: Dict[int, Tuple[NodeDescriptor, ...]] = {}
        self.subscribe(NylonShuffleRequest, self._on_request)
        self.subscribe(NylonShuffleResponse, self._on_response)
        self.subscribe(HolePunchRequest, self._on_hole_punch_request)
        self.subscribe(HolePunchPing, self._on_hole_punch_ping)
        self.subscribe(KeepAlive, self._on_keepalive)

    # ------------------------------------------------------------------ bootstrap

    def initialize_view(self, seeds: Sequence[NodeAddress]) -> None:
        for address in seeds:
            if address.node_id == self.address.node_id:
                continue
            self.view.add(NodeDescriptor(address=address, age=0))

    # ------------------------------------------------------------------ round

    def on_round(self) -> None:
        self.view.increase_ages()
        self._send_keepalives()

        partner = self.view.oldest(self.rng)
        if partner is None:
            self.stats.rounds_skipped_empty_view += 1
            return
        self.view.remove(partner.node_id)

        subset = self.view.random_subset(
            self.rng, max(0, self.config.shuffle_size - 1), exclude_ids=(partner.node_id,)
        )
        subset.append(self.self_descriptor())
        sent = tuple(subset)
        self._pending[partner.node_id] = sent
        self.stats.shuffles_initiated += 1

        if partner.is_public or partner.node_id in self._open_contacts:
            # Direct path available (public target, or a mapping we already hold open).
            self._send_shuffle_request(partner.address, sent)
            return

        # Private target with no open mapping: route a hole-punch request along the
        # RVP chain and send the shuffle once the target pings us directly. We also
        # send our own punch packet straight at the target: it is dropped by the
        # target's NAT, but it opens *our* NAT mapping towards the target, so the
        # target's reverse ping can get through (classic UDP hole punching).
        self._awaiting_punch[partner.node_id] = sent
        if self.address.is_private:
            self.send_to_node(partner.address, HolePunchPing(origin=self.address))
        rvp = self.rvp_table.get(partner.node_id)
        if rvp is None:
            # No known RVP towards the target: the shuffle is lost this round (exactly
            # the fragility the Croupier paper describes).
            self.stats.extra["shuffles_without_rvp"] = (
                self.stats.extra.get("shuffles_without_rvp", 0) + 1
            )
            return
        request = HolePunchRequest(
            initiator=self.address,
            target=partner.address,
            max_hops=self.config.max_rvp_hops,
        )
        self.send_to_node(rvp, request)

    def _send_keepalives(self) -> None:
        """Private nodes refresh NAT mappings towards a bounded set of RVP neighbours."""
        if self.address.is_public:
            return
        targets = list(self._open_contacts.values())
        if not targets:
            targets = [d.address for d in self.view if d.is_public]
        self.rng.shuffle(targets)
        for target in targets[: self.config.keepalive_fanout]:
            self.send_to_node(target, KeepAlive(origin=self.address))

    def _send_shuffle_request(
        self, partner: NodeAddress, subset: Tuple[NodeDescriptor, ...]
    ) -> None:
        self.send_to_node(
            partner,
            NylonShuffleRequest(sender=self.self_descriptor(), descriptors=subset),
        )

    # ------------------------------------------------------------------ relaying / punching

    def _on_hole_punch_request(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, HolePunchRequest)
        if message.target.node_id == self.address.node_id:
            # We are the target: punch a hole towards the initiator and let it know it
            # can now reach us directly.
            self._open_contacts[message.initiator.node_id] = message.initiator
            self.send_to_node(message.initiator, HolePunchPing(origin=self.address))
            return
        if message.exceeded_hop_limit:
            self.stats.extra["relay_hop_limit_drops"] = (
                self.stats.extra.get("relay_hop_limit_drops", 0) + 1
            )
            return
        forwarded = message.forwarded()
        self.stats.extra["relayed_punch_requests"] = (
            self.stats.extra.get("relayed_punch_requests", 0) + 1
        )
        if message.target.node_id in self._open_contacts or message.target.is_public:
            # We hold an open mapping towards the target (it contacted us recently with
            # a shuffle or keep-alive), or the target is public: last hop of the chain.
            self.send_to_node(message.target, forwarded)
            return
        next_hop = self.rvp_table.get(message.target.node_id)
        if next_hop is None or next_hop.node_id == self.address.node_id:
            self.stats.extra["relay_dead_ends"] = (
                self.stats.extra.get("relay_dead_ends", 0) + 1
            )
            return
        self.send_to_node(next_hop, forwarded)

    def _on_hole_punch_ping(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, HolePunchPing)
        self._open_contacts[message.origin.node_id] = message.origin
        subset = self._awaiting_punch.pop(message.origin.node_id, None)
        if subset is None:
            return
        # The target opened its NAT towards us; reply to the endpoint the ping came
        # from, which traverses the freshly punched mapping.
        self.send(
            packet.source,
            NylonShuffleRequest(sender=self.self_descriptor(), descriptors=subset),
        )

    def _on_keepalive(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, KeepAlive)
        # Receiving a keep-alive means the sender holds a mapping towards us; remember
        # it so future shuffles towards that (private) node can go direct, and
        # acknowledge so the sender knows its RVP is still alive.
        self._open_contacts[message.origin.node_id] = message.origin
        self.send(packet.source, KeepAliveAck(origin=self.address))

    # ------------------------------------------------------------------ shuffle handlers

    def _on_request(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, NylonShuffleRequest)
        self.stats.shuffle_requests_handled += 1
        self._learn_rvps(message.descriptors, learned_from=message.sender.address)
        self._open_contacts[message.sender.node_id] = message.sender.address

        reply_subset = self.view.random_subset(
            self.rng, self.config.shuffle_size, exclude_ids=(message.sender.node_id,)
        )
        self.view.update_view(
            sent=reply_subset,
            received=message.descriptors,
            self_id=self.address.node_id,
        )
        self.send(
            packet.source,
            NylonShuffleResponse(
                sender=self.self_descriptor(), descriptors=tuple(reply_subset)
            ),
        )

    def _on_response(self, packet: Packet) -> None:
        message = packet.message
        assert isinstance(message, NylonShuffleResponse)
        self.stats.shuffle_responses_received += 1
        self._learn_rvps(message.descriptors, learned_from=message.sender.address)
        self._open_contacts[message.sender.node_id] = message.sender.address
        sent = self._pending.pop(message.sender.node_id, ())
        self.view.update_view(
            sent=sent,
            received=message.descriptors,
            self_id=self.address.node_id,
        )

    def _learn_rvps(
        self, descriptors: Sequence[NodeDescriptor], learned_from: NodeAddress
    ) -> None:
        """Remember which neighbour told us about each descriptor (our RVP towards it)."""
        for descriptor in descriptors:
            if descriptor.node_id in (self.address.node_id, learned_from.node_id):
                continue
            self.rvp_table[descriptor.node_id] = learned_from
        # Bound the routing table: drop entries for nodes that long left every view.
        if len(self.rvp_table) > 8 * self.config.view_size:
            in_view = set(self.view.node_ids())
            self.rvp_table = {
                nid: addr
                for nid, addr in self.rvp_table.items()
                if nid in in_view or nid in self._awaiting_punch
            }

    # ------------------------------------------------------------------ sampling

    def sample(self) -> Optional[NodeAddress]:
        self.stats.samples_served += 1
        descriptor = self.view.random_descriptor(self.rng)
        return descriptor.address if descriptor is not None else None

    def neighbor_addresses(self) -> List[NodeAddress]:
        return [d.address for d in self.view]

    def private_peer_strategy(self) -> str:
        return "hole-punching"


register_protocol(
    "nylon",
    Nylon,
    NylonConfig,
    description="rendezvous-chain routing: shuffles to private nodes are hole-punched "
    "via the neighbour each descriptor was learned from (unbounded chains)",
)
