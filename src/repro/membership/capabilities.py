"""Capability interfaces for peer-sampling protocols.

The paper compares five protocols (Croupier, Gozar, Nylon, Cyclon, ARRG) on identical
NATed deployments, but the protocols do not expose identical features: only Croupier
estimates the public/private ratio, only the NAT-aware protocols distinguish node
classes, and so on. Instead of probing concrete classes (``isinstance(pss, Croupier)``)
the experiment layers query these small abstract interfaces — a protocol advertises a
feature by inheriting the capability, and :class:`~repro.membership.plugin.ProtocolPlugin`
derives the capability set from the component class at registration time.

Adding a cross-cutting feature is therefore a new capability class plus an inheritance
edge per supporting protocol; no ``Scenario`` or collector edit enumerates protocols.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple, Type

from repro.net.address import NodeAddress


class Capability(abc.ABC):
    """Marker base for protocol capabilities (every capability subclasses this)."""

    __slots__ = ()


class OverlaySampling(Capability):
    """The core peer-sampling contract: random samples and a neighbour set.

    Every registered protocol provides this; it is what the overlay-graph metrics
    (in-degree distribution, path length, clustering) are measured through.
    """

    __slots__ = ()

    @abc.abstractmethod
    def sample(self) -> Optional[NodeAddress]:
        """One node drawn (approximately) uniformly at random, or ``None`` if unknown."""

    @abc.abstractmethod
    def sample_many(self, count: int) -> List[NodeAddress]:
        """``count`` independent samples (duplicates possible, as in a true PSS)."""

    @abc.abstractmethod
    def neighbor_addresses(self) -> List[NodeAddress]:
        """Every node currently referenced by this node's view(s)."""


class RatioEstimating(Capability):
    """Estimates the global public/private node ratio ω (Croupier's defining feature).

    The estimation collectors sample :meth:`estimated_ratio` once per round from every
    live service advertising this capability; ``current_round`` gates the paper's
    "exclude nodes until they have executed 2 rounds" rule.
    """

    __slots__ = ()

    #: Rounds executed so far; concrete services maintain this as a plain attribute.
    current_round: int

    @abc.abstractmethod
    def estimated_ratio(self) -> Optional[float]:
        """This node's current estimate of ω, or ``None`` before any information."""


class NatAware(Capability):
    """Distinguishes public from private peers in its view exchange.

    Croupier (separate public/private views), Gozar (relay parents) and Nylon
    (rendezvous chains) are NAT-aware; Cyclon and ARRG treat every peer alike, which is
    precisely why the paper uses them as baselines on NAT-free (or NAT-degraded)
    deployments.
    """

    __slots__ = ()

    @abc.abstractmethod
    def private_peer_strategy(self) -> str:
        """How this protocol reaches private peers: ``"croupier-indirection"``,
        ``"relay"`` (Gozar) or ``"hole-punching"`` (Nylon)."""


#: Every known capability, in a stable documentation order.
CAPABILITIES: Tuple[Type[Capability], ...] = (OverlaySampling, RatioEstimating, NatAware)


def capability_name(capability: Type[Capability]) -> str:
    """The user-facing name of a capability (used in errors and reports)."""
    return capability.__name__


def capabilities_of(component_cls: type) -> frozenset:
    """The set of capability classes a component class implements."""
    return frozenset(cap for cap in CAPABILITIES if issubclass(component_cls, cap))
