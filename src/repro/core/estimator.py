"""Distributed estimation of the public/private node ratio (Section VI, eqs. 1–9).

Every **public** node (croupier) counts, per gossip round, how many shuffle requests it
received from public senders (``cu``) and how many from private senders (``cv``). Over a
sliding window of the last α rounds (the *local history*), the node's local estimate is

    E_i = Cu_i / (Cu_i + Cv_i)                                 (equation 6)

Because every node — public or private — sends exactly one shuffle request per round to
a uniformly chosen public node, the expected fraction of public-origin requests equals
the global ratio ω = |U| / (|U| + |V|) (equations 1–4).

Local estimates are piggy-backed on shuffle messages. Every node (public or private)
caches the estimates it has seen from public nodes for at most γ rounds (the *neighbour
history*) and averages them; a public node additionally includes its own local estimate
in the average (equations 8 and 9, procedure ``estimatePublicPrivateRatio``).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class RatioEstimate:
    """One public node's local estimate, as disseminated on shuffle messages.

    Attributes
    ----------
    origin_id:
        The public node that produced the estimate.
    value:
        The estimate E_i ∈ [0, 1].
    age:
        Rounds since the estimate was produced; incremented by every node that stores
        it, and used to discard estimates older than γ and to keep only the freshest
        estimate per origin.
    """

    origin_id: int
    value: float
    age: int = 0

    #: Paper, Section VII: "5 bytes used per estimation ... two bytes for the node
    #: identifier, one byte each for the public and private counts, and one for the
    #: timestamp".
    wire_size: int = 5

    def aged(self, increment: int = 1) -> "RatioEstimate":
        return RatioEstimate(self.origin_id, self.value, self.age + increment)

    def is_fresher_than(self, other: "RatioEstimate") -> bool:
        return self.age < other.age


class RatioEstimator:
    """Per-node state and arithmetic for the ratio estimation protocol.

    Parameters
    ----------
    alpha:
        α — the local history window, in rounds.
    gamma:
        γ — the neighbour history window, in rounds.
    is_public:
        Whether the owning node is public. Private nodes never have a local estimate
        (they receive no shuffle requests) and use equation 9 instead of 8.
    """

    def __init__(self, alpha: int, gamma: int, is_public: bool) -> None:
        if alpha <= 0 or gamma <= 0:
            raise ConfigurationError(f"alpha and gamma must be positive (α={alpha}, γ={gamma})")
        self.alpha = alpha
        self.gamma = gamma
        self.is_public = is_public
        # Per-round (cu, cv) pairs for the last α completed rounds.
        self._history: Deque[Tuple[int, int]] = deque(maxlen=alpha)
        # Hit counters for the round currently in progress.
        self._current_public_hits = 0
        self._current_private_hits = 0
        # Neighbour estimates M_i keyed by origin node id, stored lazily as
        # (value, born) where ``born = rounds_at_merge - wire_age``. The effective age
        # of an entry is ``self.rounds - born``, so ageing the whole cache each round
        # is free — no per-entry RatioEstimate reallocation. Wire-format
        # :class:`RatioEstimate` objects are materialised only when estimates leave
        # through :meth:`estimates_subset` / :meth:`neighbour_estimates`.
        self._neighbour_estimates: Dict[int, Tuple[float, int]] = {}
        # Origin ids in cache insertion order (mirrors the dict's own order). Kept so
        # estimates_subset can sample without building an O(cache) list per message;
        # rebuilt only when expiry actually removes entries.
        self._origin_order: List[int] = []
        # Lower bound on the smallest born round in the cache. Lets advance_round
        # skip the expiry scan entirely while nothing can have expired yet (the
        # common steady-state case: active origins keep refreshing their entries).
        self._min_born_bound: Optional[int] = None
        self.rounds = 0

    # ------------------------------------------------------------------ hit counting

    def record_shuffle_request(self, sender_is_public: bool) -> None:
        """Count one received shuffle request (Algorithm 2, lines 26–30)."""
        if sender_is_public:
            self._current_public_hits += 1
        else:
            self._current_private_hits += 1

    @property
    def current_round_hits(self) -> Tuple[int, int]:
        """The (public, private) hit counters of the round in progress."""
        return self._current_public_hits, self._current_private_hits

    # ------------------------------------------------------------------ round boundary

    def advance_round(self) -> None:
        """Per-round maintenance (Algorithm 2, lines 3–11).

        Ages and prunes the neighbour estimates, recomputes the local estimate from the
        local history (public nodes), then archives the current round's hit counters
        into the history and resets them.
        """
        self.rounds += 1
        # Ageing is implicit (effective age = rounds - born); only expiry needs work,
        # and only when the oldest entry could actually have crossed the γ horizon.
        horizon = self.rounds - self.gamma
        cache = self._neighbour_estimates
        bound = self._min_born_bound
        if bound is not None and bound < horizon:
            expired = [origin_id for origin_id, (_, born) in cache.items() if born < horizon]
            for origin_id in expired:
                del cache[origin_id]
            if expired:
                self._origin_order = list(cache)
            self._min_born_bound = (
                min(born for _, born in cache.values()) if cache else None
            )

        # Archive the completed round's counters (the deque enforces the α window).
        self._history.append((self._current_public_hits, self._current_private_hits))
        self._current_public_hits = 0
        self._current_private_hits = 0

    def _calc_hits_ratio(self) -> Optional[float]:
        """The paper's ``CalcHitsRatio`` over the last α rounds (plus the current one)."""
        public_count = self._current_public_hits
        private_count = self._current_private_hits
        for cu, cv in self._history:
            public_count += cu
            private_count += cv
        total = public_count + private_count
        if total == 0:
            return None
        return public_count / total

    # ------------------------------------------------------------------ dissemination

    def local_estimate(self) -> Optional[float]:
        """E_i — the node's own local estimate, or ``None`` for private / cold nodes.

        Always computed over the last α archived rounds plus the round in progress, so
        the value a croupier piggy-backs on a shuffle response already reflects the
        requests it received this round.
        """
        if not self.is_public:
            return None
        return self._calc_hits_ratio()

    def own_estimate_record(self, node_id: int) -> Optional[RatioEstimate]:
        """The node's local estimate packaged for piggy-backing, if it has one."""
        value = self.local_estimate()
        if value is None:
            return None
        return RatioEstimate(origin_id=node_id, value=value, age=0)

    def merge_estimates(self, estimates: Iterable[Optional[RatioEstimate]]) -> int:
        """Merge received estimates into the neighbour cache (keep the freshest per origin).

        ``None`` entries are ignored so callers can pass ``[*subset, sender_estimate]``
        without checking. Estimates the node produced itself are skipped for public
        nodes (their own estimate is added separately by equation 8). Returns the
        number of entries that changed the cache.
        """
        merged = 0
        cache = self._neighbour_estimates
        rounds = self.rounds
        for estimate in estimates:
            if estimate is None:
                continue
            if estimate.age > self.gamma:
                continue
            # Fresher ⇔ smaller effective age ⇔ larger born round.
            born = rounds - estimate.age
            existing = cache.get(estimate.origin_id)
            if existing is None or born > existing[1]:
                if existing is None:
                    self._origin_order.append(estimate.origin_id)
                cache[estimate.origin_id] = (estimate.value, born)
                merged += 1
                bound = self._min_born_bound
                if bound is None or born < bound:
                    self._min_born_bound = born
        return merged

    def estimates_subset(self, rng: random.Random, count: int) -> List[RatioEstimate]:
        """A bounded random subset of the neighbour cache to piggy-back on a message.

        The returned estimates carry the sender-relative age at send time (the wire
        semantics the paper's 5-byte encoding assumes).
        """
        cache = self._neighbour_estimates
        order = self._origin_order
        if len(order) > count:
            # Sampling from the persistent order list draws exactly as sampling from
            # a freshly built item list would (the draws depend only on the length),
            # without allocating an O(cache) list per outgoing message.
            chosen = rng.sample(order, count)
        else:
            chosen = order
        rounds = self.rounds
        result = []
        for origin_id in chosen:
            value, born = cache[origin_id]
            result.append(RatioEstimate(origin_id, value, rounds - born))
        return result

    # ------------------------------------------------------------------ estimation

    def estimate_ratio(self) -> Optional[float]:
        """The node's best estimate of ω (equations 8 and 9).

        Public nodes average their own local estimate together with the cached
        neighbour estimates; private nodes average only the neighbour estimates.
        Returns ``None`` when the node has no information at all yet.
        """
        cached = [value for value, _born in self._neighbour_estimates.values()]
        if self.is_public:
            own = self.local_estimate()
            if own is not None:
                cached = cached + [own]
        if not cached:
            return None
        return sum(cached) / len(cached)

    # ------------------------------------------------------------------ introspection

    @property
    def neighbour_estimate_count(self) -> int:
        return len(self._neighbour_estimates)

    def neighbour_estimates(self) -> List[RatioEstimate]:
        """Snapshot of the cached neighbour estimates (testing/diagnostics)."""
        rounds = self.rounds
        return [
            RatioEstimate(origin_id, value, rounds - born)
            for origin_id, (value, born) in self._neighbour_estimates.items()
        ]

    def history_snapshot(self) -> List[Tuple[int, int]]:
        """Snapshot of the archived (cu, cv) history (testing/diagnostics)."""
        return list(self._history)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        estimate = self.estimate_ratio()
        rendered = "n/a" if estimate is None else f"{estimate:.3f}"
        return (
            f"RatioEstimator(α={self.alpha}, γ={self.gamma}, "
            f"{'public' if self.is_public else 'private'}, estimate={rendered})"
        )
