"""Configuration for the Croupier protocol."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.membership.base import PssConfig


@dataclass
class CroupierConfig(PssConfig):
    """Croupier parameters on top of the common PSS configuration.

    Attributes
    ----------
    local_history_alpha:
        α — how many past rounds of shuffle-request hit counts a public node keeps when
        computing its own local estimate (paper default for most experiments: 25).
    neighbour_history_gamma:
        γ — estimates received from other public nodes older than this many rounds are
        discarded (paper default for most experiments: 50).
    max_estimates_per_message:
        Upper bound on the number of neighbour estimates piggy-backed on each shuffle
        request/response. The paper uses 10, which at 5 bytes per estimate adds at most
        50 bytes per shuffle message.
    estimate_entry_bytes:
        Wire size of one piggy-backed estimate (paper: 2 bytes node id, 1 byte public
        count, 1 byte private count, 1 byte timestamp = 5 bytes).
    pending_shuffle_timeout_rounds:
        How many rounds an unanswered shuffle request is remembered before its state is
        discarded (bounds memory under message loss and churn).
    """

    local_history_alpha: int = 25
    neighbour_history_gamma: int = 50
    max_estimates_per_message: int = 10
    estimate_entry_bytes: int = 5
    pending_shuffle_timeout_rounds: int = 3

    def validate(self) -> None:
        super().validate()
        if self.local_history_alpha <= 0:
            raise ConfigurationError(
                f"local_history_alpha must be positive, got {self.local_history_alpha}"
            )
        if self.neighbour_history_gamma <= 0:
            raise ConfigurationError(
                "neighbour_history_gamma must be positive, got "
                f"{self.neighbour_history_gamma}"
            )
        if self.max_estimates_per_message < 0:
            raise ConfigurationError(
                "max_estimates_per_message must be non-negative, got "
                f"{self.max_estimates_per_message}"
            )
        if self.estimate_entry_bytes <= 0:
            raise ConfigurationError(
                f"estimate_entry_bytes must be positive, got {self.estimate_entry_bytes}"
            )
        if self.pending_shuffle_timeout_rounds <= 0:
            raise ConfigurationError(
                "pending_shuffle_timeout_rounds must be positive, got "
                f"{self.pending_shuffle_timeout_rounds}"
            )

    # The window presets used throughout the paper's Figures 1 and 2.

    @staticmethod
    def small_windows(**kwargs) -> "CroupierConfig":
        """α=10, γ=25 — fastest convergence, least accurate steady state."""
        return CroupierConfig(local_history_alpha=10, neighbour_history_gamma=25, **kwargs)

    @staticmethod
    def medium_windows(**kwargs) -> "CroupierConfig":
        """α=25, γ=50 — the paper's default balance."""
        return CroupierConfig(local_history_alpha=25, neighbour_history_gamma=50, **kwargs)

    @staticmethod
    def large_windows(**kwargs) -> "CroupierConfig":
        """α=100, γ=250 — slowest convergence, most accurate steady state."""
        return CroupierConfig(
            local_history_alpha=100, neighbour_history_gamma=250, **kwargs
        )
