"""The Croupier peer-sampling component (Algorithm 2 of the paper).

Every node — public or private — keeps a *public view* and a *private view* and, once
per round, sends a shuffle request to the oldest descriptor in its public view. Only
public nodes ("croupiers") ever receive shuffle requests; they shuffle public and
private descriptors on behalf of everyone and reply with a shuffle response. Ratio
estimates ride along on both messages.

The component exposes the peer-sampling API of
:class:`~repro.membership.base.PeerSamplingService` plus Croupier-specific
introspection used by the experiments (estimated ratio, view snapshots).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import CroupierConfig
from repro.core.estimator import RatioEstimator
from repro.core.messages import ShuffleRequest, ShuffleResponse
from repro.core.sampling import generate_random_sample
from repro.membership.base import PeerSamplingService
from repro.membership.capabilities import NatAware, RatioEstimating
from repro.membership.descriptor import NodeDescriptor
from repro.membership.plugin import register_protocol
from repro.membership.policies import select_partner
from repro.membership.view import PartialView
from repro.net.address import NodeAddress
from repro.simulator.host import Host
from repro.simulator.message import Packet


@dataclass
class _PendingShuffle:
    """What this node sent in an outstanding shuffle request, keyed by partner id."""

    sent_public: Tuple[NodeDescriptor, ...]
    sent_private: Tuple[NodeDescriptor, ...]
    issued_round: int


class Croupier(PeerSamplingService, RatioEstimating, NatAware):
    """NAT-aware peer sampling without relaying."""

    def __init__(self, host: Host, config: Optional[CroupierConfig] = None) -> None:
        config = config or CroupierConfig()
        super().__init__(host, config, name="Croupier")
        self.config: CroupierConfig = config
        self.public_view = PartialView(config.view_size)
        self.private_view = PartialView(config.view_size)
        self.estimator = RatioEstimator(
            alpha=config.local_history_alpha,
            gamma=config.neighbour_history_gamma,
            is_public=self.address.is_public,
        )
        self._pending: Dict[int, _PendingShuffle] = {}
        self.subscribe(ShuffleRequest, self._on_shuffle_request)
        self.subscribe(ShuffleResponse, self._on_shuffle_response)

    # ------------------------------------------------------------------ bootstrap

    def initialize_view(self, seeds: Sequence[NodeAddress]) -> None:
        """Seed the views from bootstrap-provided addresses.

        Public seeds go into the public view and private seeds into the private view;
        in practice the bootstrap service only hands out public nodes, but accepting
        both keeps the method usable for tests that construct arbitrary topologies.
        """
        for address in seeds:
            if address.node_id == self.address.node_id:
                continue
            descriptor = NodeDescriptor(address=address, age=0)
            if address.is_public:
                self.public_view.add(descriptor)
            else:
                self.private_view.add(descriptor)

    # ------------------------------------------------------------------ gossip round

    def on_round(self) -> None:
        """One execution of the paper's ``Round`` procedure (Algorithm 2, lines 2–23)."""
        self.public_view.increase_ages()
        self.private_view.increase_ages()
        self.estimator.advance_round()
        self._expire_pending()

        partner = select_partner(self.public_view, self.config.selection, self.rng)
        if partner is None:
            self.stats.rounds_skipped_empty_view += 1
            return
        self.public_view.remove(partner.node_id)

        send_public = self.public_view.random_subset(
            self.rng, self._outgoing_subset_size(public=True), exclude_ids=(partner.node_id,)
        )
        send_private = self.private_view.random_subset(
            self.rng, self._outgoing_subset_size(public=False)
        )
        if self.address.is_public:
            send_public.append(self.self_descriptor())
        else:
            send_private.append(self.self_descriptor())

        # Descriptors are immutable: the message and the pending record share the
        # same tuples (no defensive copies anywhere on this path).
        sent_public = tuple(send_public)
        sent_private = tuple(send_private)
        request = ShuffleRequest(
            sender=self.self_descriptor(),
            public_descriptors=sent_public,
            private_descriptors=sent_private,
            estimates=tuple(
                self.estimator.estimates_subset(
                    self.rng, self.config.max_estimates_per_message
                )
            ),
            sender_estimate=self.estimator.own_estimate_record(self.address.node_id),
        )
        self._pending[partner.node_id] = _PendingShuffle(
            sent_public=sent_public,
            sent_private=sent_private,
            issued_round=self.current_round,
        )
        self.stats.shuffles_initiated += 1
        self.send_to_node(partner.address, request)

    def _outgoing_subset_size(self, public: bool) -> int:
        """How many descriptors of each class to put in a shuffle message.

        The shuffle subset size bounds the descriptors taken from each view; the view
        matching the node's own class contributes one slot less because the node's own
        fresh descriptor is appended to it.
        """
        if public == self.address.is_public:
            return max(0, self.config.shuffle_size - 1)
        return self.config.shuffle_size

    def _expire_pending(self) -> None:
        horizon = self.current_round - self.config.pending_shuffle_timeout_rounds
        expired = [nid for nid, entry in self._pending.items() if entry.issued_round <= horizon]
        for nid in expired:
            del self._pending[nid]

    # ------------------------------------------------------------------ handlers

    def _on_shuffle_request(self, packet: Packet) -> None:
        """Croupier-side handling (Algorithm 2, lines 25–38). Only public nodes run this."""
        message = packet.message
        assert isinstance(message, ShuffleRequest)
        if not self.address.is_public:
            # A private node received a shuffle request: protocol violation (stale or
            # corrupt descriptor). Count it and ignore.
            self.stats.extra["misdirected_requests"] = (
                self.stats.extra.get("misdirected_requests", 0) + 1
            )
            return
        self.stats.shuffle_requests_handled += 1
        self.estimator.record_shuffle_request(message.sender.is_public)

        reply_public = self.public_view.random_subset(
            self.rng, self.config.shuffle_size, exclude_ids=(message.sender.node_id,)
        )
        reply_private = self.private_view.random_subset(
            self.rng, self.config.shuffle_size, exclude_ids=(message.sender.node_id,)
        )

        self.public_view.update_view(
            sent=reply_public,
            received=message.public_descriptors,
            self_id=self.address.node_id,
        )
        self.private_view.update_view(
            sent=reply_private,
            received=message.private_descriptors,
            self_id=self.address.node_id,
        )
        self.estimator.merge_estimates([*message.estimates, message.sender_estimate])

        response = ShuffleResponse(
            sender=self.self_descriptor(),
            public_descriptors=tuple(reply_public),
            private_descriptors=tuple(reply_private),
            estimates=tuple(
                self.estimator.estimates_subset(
                    self.rng, self.config.max_estimates_per_message
                )
            ),
            sender_estimate=self.estimator.own_estimate_record(self.address.node_id),
        )
        # Reply to the endpoint the request arrived from: for a private requester this
        # is its NAT's external mapping, which is exactly the path the response must
        # take to get back through the NAT.
        self.send(packet.source, response)

    def _on_shuffle_response(self, packet: Packet) -> None:
        """Requester-side handling (Algorithm 2, lines 40–44)."""
        message = packet.message
        assert isinstance(message, ShuffleResponse)
        self.stats.shuffle_responses_received += 1
        pending = self._pending.pop(message.sender.node_id, None)
        sent_public: Sequence[NodeDescriptor] = pending.sent_public if pending else ()
        sent_private: Sequence[NodeDescriptor] = pending.sent_private if pending else ()

        self.public_view.update_view(
            sent=sent_public,
            received=message.public_descriptors,
            self_id=self.address.node_id,
        )
        self.private_view.update_view(
            sent=sent_private,
            received=message.private_descriptors,
            self_id=self.address.node_id,
        )
        self.estimator.merge_estimates([*message.estimates, message.sender_estimate])

    # ------------------------------------------------------------------ sampling API

    def sample(self) -> Optional[NodeAddress]:
        self.stats.samples_served += 1
        return generate_random_sample(
            self.public_view,
            self.private_view,
            self.estimator.estimate_ratio(),
            self.rng,
        )

    def neighbor_addresses(self) -> List[NodeAddress]:
        return [d.address for d in self.public_view] + [
            d.address for d in self.private_view
        ]

    # ------------------------------------------------------------------ introspection

    def estimated_ratio(self) -> Optional[float]:
        """The node's current estimate of ω, or ``None`` before any information arrives."""
        return self.estimator.estimate_ratio()

    def private_peer_strategy(self) -> str:
        return "croupier-indirection"

    def view_sizes(self) -> Tuple[int, int]:
        """(public view occupancy, private view occupancy)."""
        return len(self.public_view), len(self.private_view)

    @property
    def pending_shuffles(self) -> int:
        return len(self._pending)


register_protocol(
    "croupier",
    Croupier,
    CroupierConfig,
    description="NAT-aware peer sampling without relaying; croupiers shuffle on behalf "
    "of private nodes and piggy-back ratio estimates (Algorithm 2)",
)
