"""Croupier — the paper's primary contribution.

Croupier is a gossip peer-sampling service that stays uniform when most nodes are behind
NATs, *without* relaying or hole punching. The package splits the contribution into its
three moving parts:

* :class:`~repro.core.croupier.Croupier` — the protocol component: split public/private
  views and the croupier shuffle of Algorithm 2.
* :class:`~repro.core.estimator.RatioEstimator` — the distributed public/private ratio
  estimation of Section VI (equations 1–9), driven by shuffle-request hit counts over a
  local history window α and neighbour estimates over a window γ.
* :func:`~repro.core.sampling.generate_random_sample` — Algorithm 3's sampling rule,
  which picks the public or the private view with probability equal to the estimated
  ratio.

Typical use::

    from repro.core import Croupier, CroupierConfig

    pss = Croupier(host, CroupierConfig(view_size=10, shuffle_size=5))
    pss.initialize_view(bootstrap_nodes)
    pss.start()
    ...
    address = pss.sample()          # a uniform random node, or None early on
    ratio = pss.estimated_ratio()   # current estimate of |public| / |all|
"""

from repro.core.config import CroupierConfig
from repro.core.croupier import Croupier
from repro.core.estimator import RatioEstimate, RatioEstimator
from repro.core.messages import ShuffleRequest, ShuffleResponse
from repro.core.sampling import generate_random_sample

__all__ = [
    "Croupier",
    "CroupierConfig",
    "RatioEstimate",
    "RatioEstimator",
    "ShuffleRequest",
    "ShuffleResponse",
    "generate_random_sample",
]
