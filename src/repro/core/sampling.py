"""Algorithm 3's ``generateRandomSample``: combining two views into one uniform sample.

With the partial view split into a public and a private view, picking a uniformly random
node requires knowing what fraction of the system is public: the sampler flips a biased
coin with the estimated ratio and then draws uniformly from the corresponding view.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.membership.view import PartialView
from repro.net.address import NodeAddress


def generate_random_sample(
    public_view: PartialView,
    private_view: PartialView,
    estimated_ratio: Optional[float],
    rng: random.Random,
) -> Optional[NodeAddress]:
    """Draw one node address approximately uniformly at random over the whole system.

    Parameters
    ----------
    public_view / private_view:
        The node's two partial views.
    estimated_ratio:
        The node's current estimate of ω = |public| / (|public| + |private|). When the
        node has no estimate yet (``None``), the sampler falls back to a uniform draw
        over the union of both views — biased, but the best available before any
        estimate has propagated (the paper excludes a node's first two rounds from its
        metrics for the same reason).

    Returns
    -------
    The sampled :class:`~repro.net.address.NodeAddress`, or ``None`` if both views are
    empty.
    """
    if public_view.is_empty and private_view.is_empty:
        return None

    if estimated_ratio is None:
        combined = public_view.descriptors() + private_view.descriptors()
        return rng.choice(combined).address

    ratio = min(1.0, max(0.0, estimated_ratio))
    pick_public = rng.random() < ratio

    primary, fallback = (
        (public_view, private_view) if pick_public else (private_view, public_view)
    )
    descriptor = primary.random_descriptor(rng)
    if descriptor is None:
        descriptor = fallback.random_descriptor(rng)
    if descriptor is None:
        return None
    return descriptor.address
