"""Croupier's two protocol messages: the shuffle request and the shuffle response.

Both carry the same kind of payload (Algorithm 2): a bounded random subset of the
sender's public view, a bounded random subset of its private view, a bounded subset of
the ratio estimates it has cached from public nodes, and — if the sender is itself a
public node — its own local estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.estimator import RatioEstimate
from repro.membership.descriptor import NodeDescriptor
from repro.simulator.message import Message


@dataclass
class ShuffleRequest(Message):
    """Sent once per round by every node (public or private) to a public node."""

    sender: NodeDescriptor
    public_descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)
    private_descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)
    estimates: Tuple[RatioEstimate, ...] = field(default_factory=tuple)
    sender_estimate: Optional[RatioEstimate] = None

    def payload_size(self) -> int:
        size = self.sender.wire_size
        size += sum(d.wire_size for d in self.public_descriptors)
        size += sum(d.wire_size for d in self.private_descriptors)
        size += sum(e.wire_size for e in self.estimates)
        if self.sender_estimate is not None:
            size += self.sender_estimate.wire_size
        return size

    @property
    def descriptor_count(self) -> int:
        return len(self.public_descriptors) + len(self.private_descriptors)


@dataclass
class ShuffleResponse(Message):
    """Sent by the public node (croupier) that handled a :class:`ShuffleRequest`."""

    sender: NodeDescriptor
    public_descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)
    private_descriptors: Tuple[NodeDescriptor, ...] = field(default_factory=tuple)
    estimates: Tuple[RatioEstimate, ...] = field(default_factory=tuple)
    sender_estimate: Optional[RatioEstimate] = None

    def payload_size(self) -> int:
        size = self.sender.wire_size
        size += sum(d.wire_size for d in self.public_descriptors)
        size += sum(d.wire_size for d in self.private_descriptors)
        size += sum(e.wire_size for e in self.estimates)
        if self.sender_estimate is not None:
            size += self.sender_estimate.wire_size
        return size

    @property
    def descriptor_count(self) -> int:
        return len(self.public_descriptors) + len(self.private_descriptors)
