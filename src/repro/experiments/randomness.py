"""Figure 6: randomness properties of the overlay (Croupier vs. Gozar vs. Nylon vs. Cyclon).

Three classic graph metrics are tracked while the protocols run:

* **in-degree distribution** after 250 rounds (Figure 6a) — should be concentrated,
  close to Cyclon's;
* **average path length** over time (Figure 6b) — all protocols track Cyclon closely
  (Gozar starts higher while private nodes look for relay parents);
* **clustering coefficient** over time (Figure 6c) — Croupier's ends up the lowest,
  because two private nodes never exchange views directly.

Cyclon is the "true randomness" baseline and, as in the paper, runs with public nodes
only (it cannot traverse NATs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.constants import DEFAULT_PUBLIC_RATIO
from repro.errors import ExperimentError
from repro.experiments.matrix import CellContext, measure_cell, register_scenario
from repro.experiments.report import histogram_table, time_series_table
from repro.metrics.collector import TimeSeries
from repro.metrics.graph import (
    average_clustering_coefficient,
    average_path_length,
    build_overlay_graph,
    degree_statistics,
    in_degree_distribution,
)
from repro.metrics.payload import MetricPayload
from repro.workload.scenario import Scenario, ScenarioConfig

#: Protocols compared in Figure 6, in the paper's order.
PAPER_PROTOCOLS = ("croupier", "gozar", "nylon", "cyclon")


def run_randomness_cell(ctx: CellContext) -> MetricPayload:
    """One Figure 6 matrix cell: run the protocol, sample randomness metrics over time.

    The payload carries the final ``in_degree`` histogram (Figure 6a, via the standard
    graph probe) plus ``path_length`` and ``clustering`` series sampled every
    ``measure_every_rounds`` rounds (Figures 6b/6c). Protocols registered as NAT-free
    baselines (Cyclon) run over public nodes only, as in the paper.
    """
    cell = ctx.cell
    from repro.membership.plugin import get_plugin

    if get_plugin(cell.protocol).nat_free_baseline:
        scenario = ctx.populated_scenario(n_public=cell.size, n_private=0)
    else:
        scenario = ctx.populated_scenario()
    installed = ctx.install_timeline(scenario)

    measure_every = int(cell.param("measure_every_rounds", 10))
    sources = int(cell.param("path_length_sources", 30))
    series_rng = scenario.sim.derive_rng("randomness-series")
    path_points = []
    clustering_points = []
    executed = 0
    while executed < cell.rounds:
        step = min(measure_every, cell.rounds - executed)
        installed.advance_rounds(step)
        executed += step
        graph = build_overlay_graph(scenario.overlay_graph())
        path = average_path_length(graph, sample_sources=sources, rng=series_rng)
        clustering = average_clustering_coefficient(graph)
        if path is not None:
            path_points.append((scenario.now, path))
        if clustering is not None:
            clustering_points.append((scenario.now, clustering))

    payload = measure_cell(scenario, path_length_sources=sources)
    payload.set_series("path_length", path_points)
    payload.set_series("clustering", clustering_points)
    return payload


register_scenario(
    "randomness",
    run_randomness_cell,
    description="overlay randomness over time: in-degree histogram plus path-length "
    "and clustering series (Figure 6; Cyclon runs public-only)",
    default_params={"measure_every_rounds": 10},
)


@dataclass
class ProtocolRandomness:
    """The Figure 6 measurements for one protocol."""

    protocol: str
    in_degree_histogram: Dict[int, int] = field(default_factory=dict)
    in_degree_stats: Dict[str, float] = field(default_factory=dict)
    path_length: TimeSeries = field(default_factory=lambda: TimeSeries("path length"))
    clustering: TimeSeries = field(default_factory=lambda: TimeSeries("clustering"))
    final_live_nodes: int = 0


@dataclass
class RandomnessResult:
    """All protocols' randomness measurements plus the experiment parameters."""

    total_nodes: int
    public_ratio: float
    rounds: int
    per_protocol: Dict[str, ProtocolRandomness] = field(default_factory=dict)

    def to_text(self) -> str:
        histograms = {
            name: measurement.in_degree_histogram
            for name, measurement in self.per_protocol.items()
        }
        path_series = [
            TimeSeries(name=name, times=m.path_length.times, values=m.path_length.values)
            for name, m in self.per_protocol.items()
        ]
        clustering_series = [
            TimeSeries(name=name, times=m.clustering.times, values=m.clustering.values)
            for name, m in self.per_protocol.items()
        ]
        parts = [
            histogram_table(histograms, title="Figure 6(a): in-degree distribution"),
            "",
            time_series_table(path_series, title="Figure 6(b): average path length"),
            "",
            time_series_table(clustering_series, title="Figure 6(c): clustering coefficient"),
        ]
        return "\n".join(parts)


def run_randomness_experiment(
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    total_nodes: int = 1000,
    public_ratio: float = DEFAULT_PUBLIC_RATIO,
    rounds: int = 250,
    measure_every_rounds: int = 10,
    path_length_sources: int = 50,
    seed: int = 42,
    latency: str = "king",
) -> RandomnessResult:
    """Reproduce Figure 6 for the given protocols.

    Parameters
    ----------
    measure_every_rounds:
        Cadence of the path-length / clustering samples (the in-degree histogram is
        always taken at the end of the run).
    path_length_sources:
        Number of BFS sources used to estimate the average path length (all-pairs BFS
        at every sample would dominate the experiment's runtime).
    """
    if total_nodes <= 0:
        raise ExperimentError("total_nodes must be positive")
    result = RandomnessResult(
        total_nodes=total_nodes, public_ratio=public_ratio, rounds=rounds
    )
    for protocol in protocols:
        if protocol == "cyclon":
            # The paper's Cyclon baseline runs over public nodes only.
            n_public, n_private = total_nodes, 0
        else:
            n_public = max(1, int(round(total_nodes * public_ratio)))
            n_private = total_nodes - n_public
        scenario = Scenario(ScenarioConfig(protocol=protocol, seed=seed, latency=latency))
        scenario.populate(n_public=n_public, n_private=n_private)

        measurement = ProtocolRandomness(protocol=protocol)
        metrics_rng = scenario.sim.derive_rng("randomness-metrics", protocol)
        executed = 0
        while executed < rounds:
            step = min(measure_every_rounds, rounds - executed)
            scenario.run_rounds(step)
            executed += step
            graph = build_overlay_graph(scenario.overlay_graph())
            path = average_path_length(
                graph, sample_sources=path_length_sources, rng=metrics_rng
            )
            clustering = average_clustering_coefficient(graph)
            if path is not None:
                measurement.path_length.record(scenario.now, path)
            if clustering is not None:
                measurement.clustering.record(scenario.now, clustering)

        final_graph = build_overlay_graph(scenario.overlay_graph())
        measurement.in_degree_histogram = in_degree_distribution(final_graph)
        measurement.in_degree_stats = degree_statistics(final_graph)
        measurement.final_live_nodes = scenario.live_count()
        result.per_protocol[protocol] = measurement
    return result
