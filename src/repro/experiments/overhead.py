"""Figure 7(a): protocol overhead — average load per node for public and private nodes.

The paper reports steady-state traffic (bytes/second averaged per node, split into
public and private nodes) for Croupier, Gozar and Nylon, with Croupier's configuration
using α=25, γ=100 and at most 10 piggy-backed estimates of 5 bytes each. The headline
result: Croupier's private-node overhead is less than half of Gozar's and less than a
quarter of Nylon's, while its public-node overhead also stays the lowest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.constants import DEFAULT_PUBLIC_RATIO
from repro.core.config import CroupierConfig
from repro.experiments.base import run_estimation_cell
from repro.experiments.matrix import register_scenario
from repro.experiments.report import format_table
from repro.metrics.overhead import OverheadReport, measure_overhead
from repro.workload.scenario import Scenario, ScenarioConfig

#: Protocols compared in Figure 7(a). Cyclon (public nodes only) is the baseline the
#: paper's figure normalises against ("protocol overhead relative to Cyclon").
PAPER_PROTOCOLS = ("croupier", "gozar", "nylon", "cyclon")


register_scenario(
    "overhead",
    run_estimation_cell,
    description="steady-state per-class traffic load, Croupier at the paper's "
    "overhead configuration α=25, γ=100, ≤10 piggy-backed estimates (Figure 7a)",
    default_params={"croupier_gamma": 100, "max_estimates": 10},
)


@dataclass
class OverheadExperimentResult:
    """Per-protocol overhead reports plus the experiment parameters."""

    total_nodes: int
    public_ratio: float
    warmup_rounds: int
    measure_rounds: int
    reports: Dict[str, OverheadReport] = field(default_factory=dict)

    def public_loads(self) -> Dict[str, float]:
        return {name: report.public_bytes_per_second for name, report in self.reports.items()}

    def private_loads(self) -> Dict[str, float]:
        return {name: report.private_bytes_per_second for name, report in self.reports.items()}

    def cyclon_baseline_bps(self) -> Optional[float]:
        """Average per-node load of the Cyclon baseline run (``None`` if not measured)."""
        report = self.reports.get("cyclon")
        return report.all_bytes_per_second if report is not None else None

    def relative_loads(self) -> Dict[str, Dict[str, float]]:
        """Per-protocol loads minus the Cyclon baseline — the quantity Figure 7(a) plots."""
        baseline = self.cyclon_baseline_bps() or 0.0
        return {
            name: {
                "public": report.public_bytes_per_second - baseline,
                "private": report.private_bytes_per_second - baseline,
            }
            for name, report in self.reports.items()
            if name != "cyclon"
        }

    def to_text(self) -> str:
        baseline = self.cyclon_baseline_bps() or 0.0
        rows = [
            [
                name,
                report.public_bytes_per_second,
                report.private_bytes_per_second,
                report.all_bytes_per_second,
                report.public_bytes_per_second - baseline if name != "cyclon" else None,
                report.private_bytes_per_second - baseline if name != "cyclon" else None,
            ]
            for name, report in self.reports.items()
        ]
        return format_table(
            [
                "protocol",
                "public B/s",
                "private B/s",
                "all B/s",
                "public rel. Cyclon",
                "private rel. Cyclon",
            ],
            rows,
            title="Figure 7(a): average load per node (steady state)",
        )


def run_overhead_experiment(
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    total_nodes: int = 1000,
    public_ratio: float = DEFAULT_PUBLIC_RATIO,
    warmup_rounds: int = 50,
    measure_rounds: int = 50,
    croupier_alpha: int = 25,
    croupier_gamma: int = 100,
    max_estimates_per_message: int = 10,
    seed: int = 42,
    latency: str = "king",
) -> OverheadExperimentResult:
    """Reproduce Figure 7(a).

    Each protocol runs with the same population; after ``warmup_rounds`` a traffic
    snapshot is taken and the average per-node load is measured over the following
    ``measure_rounds``.
    """
    result = OverheadExperimentResult(
        total_nodes=total_nodes,
        public_ratio=public_ratio,
        warmup_rounds=warmup_rounds,
        measure_rounds=measure_rounds,
    )
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = total_nodes - n_public
    for protocol in protocols:
        pss_config = None
        if protocol == "croupier":
            pss_config = CroupierConfig(
                local_history_alpha=croupier_alpha,
                neighbour_history_gamma=croupier_gamma,
                max_estimates_per_message=max_estimates_per_message,
            )
        if protocol == "cyclon":
            # The Cyclon baseline runs over public nodes only, as in the paper.
            protocol_public, protocol_private = total_nodes, 0
        else:
            protocol_public, protocol_private = n_public, n_private
        scenario = Scenario(
            ScenarioConfig(protocol=protocol, seed=seed, latency=latency, pss_config=pss_config)
        )
        scenario.populate(n_public=protocol_public, n_private=protocol_private)
        scenario.run_rounds(warmup_rounds)
        snapshot = scenario.traffic_snapshot()
        scenario.run_rounds(measure_rounds)
        result.reports[protocol] = measure_overhead(
            protocol=protocol,
            monitor=scenario.monitor,
            window_start=snapshot,
            now_ms=scenario.now,
            public_node_ids=scenario.live_public_ids(),
            private_node_ids=scenario.live_private_ids(),
        )
    return result
