"""Symmetric-NAT underrepresentation: the per-NAT-class in-degree figure.

The paper argues that NAT types which are hard to traverse — symmetric NATs above all
— end up *underrepresented* in the overlay: other nodes hold fewer references to them,
so they receive fewer shuffles and less of the gossip stream. PR 4 added the raw
evidence (the ``in_degree_<class>`` histogram breakdown recorded by the graph probe
whenever a :class:`~repro.nat.mixture.NatMixture` is in play); this module promotes it
to a first-class experiment: the ``nat_indegree`` matrix kind runs a heterogeneous
gateway population (the paper's measured mixture unless the cell sweeps its own),
warms it up and reports each NAT class's mean in-degree *relative to public nodes* —
``indeg_rel_<class>`` scalars plus the headline ``symmetric_underrepresentation``
(1 − symmetric/public; ≈0.5 means symmetric-NAT nodes hold about half the public
in-degree, the paper's claim). ``repro report`` renders the matching
"NAT-class in-degree" section for any aggregate carrying the breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.experiments.matrix import (
    DEFAULT_NAT_MIXTURE,
    CellContext,
    measure_cell,
    register_scenario,
)
from repro.experiments.report import format_table
from repro.metrics.payload import MetricPayload
from repro.nat.mixture import NAT_MIXTURES
from repro.workload.scenario import Scenario, ScenarioConfig

#: The mixture a cell runs when its ``nat_mixture`` axis is ``"none"`` — the paper's
#: measured NAT-type distribution, which is the population the claim is about.
FALLBACK_MIXTURE = "paper"

#: Scalar prefix of the relative in-degree metrics this kind adds.
RELATIVE_PREFIX = "indeg_rel_"


def relative_indegree_scalars(payload: MetricPayload) -> None:
    """Add ``indeg_rel_<class>`` (mean in-degree over the public mean) and the
    ``symmetric_underrepresentation`` headline to a payload carrying the per-class
    ``indeg_mean_<class>`` breakdown. No-op without a public reference class."""
    public_mean = payload.scalars.get("indeg_mean_public")
    if not public_mean:
        return
    for name in sorted(payload.scalars):
        if not name.startswith("indeg_mean_") or name == "indeg_mean_public":
            continue
        label = name[len("indeg_mean_"):]
        payload.set_scalar(RELATIVE_PREFIX + label, payload.scalars[name] / public_mean)
    symmetric = payload.scalars.get("indeg_mean_symmetric")
    if symmetric is not None:
        payload.set_scalar("symmetric_underrepresentation", 1.0 - symmetric / public_mean)


def run_nat_indegree_cell(ctx: CellContext) -> MetricPayload:
    """One symmetric-NAT-underrepresentation cell: warm a mixed-NAT population up,
    then read the per-class in-degree breakdown.

    Cells on the default (``none``) mixture axis run the registered ``paper``
    mixture — the kind is *about* heterogeneous gateways, so a homogeneous cell
    would measure nothing; sweeping ``--nat-mixtures`` still works and keys the
    cells as usual.
    """
    cell = ctx.cell
    mixture = (
        cell.nat_mixture if cell.nat_mixture != DEFAULT_NAT_MIXTURE else FALLBACK_MIXTURE
    )
    scenario = ctx.populated_scenario(nat_mixture=mixture)
    installed = ctx.install_timeline(scenario)
    installed.advance_rounds(cell.rounds)
    payload = measure_cell(scenario)
    relative_indegree_scalars(payload)
    return payload


register_scenario(
    "nat_indegree",
    run_nat_indegree_cell,
    description="per-NAT-class in-degree breakdown over a mixed gateway population — "
    "the symmetric-NAT underrepresentation figure (paper mixture unless the "
    "nat_mixture axis is swept)",
)


@dataclass
class NatInDegreeResult:
    """Mean in-degree per NAT class, per protocol (the figure's data)."""

    total_nodes: int
    rounds: int
    mixture: str
    #: protocol -> {nat class -> mean in-degree}
    class_means: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def relative_to_public(self, protocol: str) -> Dict[str, float]:
        means = self.class_means.get(protocol, {})
        public = means.get("public")
        if not public:
            return {}
        return {label: mean / public for label, mean in means.items()}

    def to_text(self) -> str:
        classes = sorted({c for means in self.class_means.values() for c in means})
        rows = []
        for protocol, means in self.class_means.items():
            public = means.get("public") or 0.0
            rows.append(
                [protocol]
                + [means.get(c) for c in classes]
                + [
                    (1.0 - means["symmetric"] / public)
                    if public and "symmetric" in means
                    else None
                ]
            )
        headers = ["protocol"] + classes + ["symmetric underrep."]
        return format_table(
            headers,
            rows,
            title=(
                "Symmetric-NAT underrepresentation: mean in-degree per NAT class "
                f"({self.mixture!r} mixture, {self.total_nodes} nodes, "
                f"{self.rounds} rounds)"
            ),
        )


def run_nat_indegree_experiment(
    protocols: Sequence[str] = ("croupier", "gozar", "nylon"),
    total_nodes: int = 200,
    public_ratio: float = 0.2,
    rounds: int = 60,
    mixture: str = FALLBACK_MIXTURE,
    seed: int = 42,
    latency: str = "king",
) -> NatInDegreeResult:
    """The figure-level harness behind ``repro run nat-indegree``."""
    result = NatInDegreeResult(total_nodes=total_nodes, rounds=rounds, mixture=mixture)
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = max(0, total_nodes - n_public)
    for protocol in protocols:
        scenario = Scenario(
            ScenarioConfig(
                protocol=protocol,
                seed=seed,
                latency=latency,
                nat_mixture=NAT_MIXTURES[mixture],
            )
        )
        scenario.populate(n_public=n_public, n_private=n_private)
        scenario.run_rounds(rounds)
        payload = measure_cell(scenario)
        result.class_means[protocol] = {
            name[len("indeg_mean_"):]: value
            for name, value in payload.scalars.items()
            if name.startswith("indeg_mean_")
        }
    return result
