"""The declarative experiment-matrix layer.

The paper's evaluation is a grid — five protocols crossed with system sizes,
public/private ratios, churn and catastrophic-failure workloads — and this module makes
that grid a first-class object. A :class:`MatrixSpec` declares the axes (scenario kinds
× protocols × sizes × seeds); :meth:`MatrixSpec.cells` expands them into
:class:`CellSpec` values, each with a stable :attr:`~CellSpec.key`; and
:func:`run_cell` executes one cell with a seed derived deterministically from the root
seed and the cell key (:func:`repro.simulator.core.derive_seed`), so a cell's outcome
never depends on which worker process runs it or in what order.

Scenario kinds are *registered*, not hard-coded: every experiment module
(:mod:`~repro.experiments.base`, :mod:`~repro.experiments.churn`,
:mod:`~repro.experiments.ratio_sweep`, :mod:`~repro.experiments.system_size`,
:mod:`~repro.experiments.catastrophic_failure`, :mod:`~repro.experiments.overhead`)
calls :func:`register_scenario` with a cell runner and the paper's sweep points as
default variants. The sharded multiprocess executor lives in
:mod:`~repro.experiments.runner`; the ``repro matrix`` CLI, the benchmarks and CI all
drive this same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ExperimentError
from repro.membership.plugin import protocol_names
from repro.metrics.payload import MetricPayload
from repro.nat.mixture import NAT_MIXTURES
from repro.nat.types import NAMED_PROFILES, NatProfile
from repro.simulator.core import derive_seed

#: JSON-scalar parameter values a cell may carry (they must round-trip through repr()
#: identically in every process, which rules out floats computed at run time — variants
#: should use literal constants).
ParamValue = Union[int, float, str, bool]
Params = Tuple[Tuple[str, ParamValue], ...]

#: Label used as the first component of every cell-seed derivation.
_CELL_SEED_LABEL = "matrix-cell"

#: First-class NAT-profile axis values -> profile factories (the canonical vocabulary
#: lives in :data:`repro.nat.types.NAMED_PROFILES`; this alias is the axis view of it).
NAT_PROFILES: Dict[str, Callable[[], NatProfile]] = dict(NAMED_PROFILES)

#: Axis defaults. Cells at the default value omit the field from their key, so every
#: pre-axis cell key (and therefore every derived seed and archived aggregate) is
#: unchanged — the axes are additive.
DEFAULT_NAT_PROFILE = "restricted_cone"
DEFAULT_LOSS_RATE = 0.0
#: ``"none"`` = homogeneous gateways (the ``nat_profile`` axis applies); any other
#: value names a registered :class:`~repro.nat.mixture.NatMixture`.
DEFAULT_NAT_MIXTURE = "none"
DEFAULT_UPNP_FRACTION = 0.0
#: ``"none"`` = no extra workload dynamics; any other value names a registered
#: :class:`~repro.workload.timeline.Timeline` whose events are appended to the cell's
#: own dynamics (the kind's params still build the base timeline).
DEFAULT_TIMELINE = "none"
#: ``"object"`` = the per-node component simulation; ``"columnar"`` = the flat-array
#: batched engine (:mod:`repro.columnar`) for 10⁵–10⁶-node cells.
DEFAULT_ENGINE = "object"


def timeline_digest(name: str) -> str:
    """The content digest of the registered timeline ``name`` (what cell keys embed)."""
    from repro.workload.timeline import get_timeline

    try:
        return get_timeline(name).digest
    except ConfigurationError as error:
        raise ExperimentError(str(error)) from None

#: The paper-setup sweep values for the deployment axes: Section VII runs
#: restricted-cone gateways as the base case and calls out the cone spectrum through
#: symmetric NATs; the loss sweep covers "no loss" to the 5 % uniform loss stress
#: point; the UPnP sweep spans "no gateway helps" to half of them mapping ports.
PAPER_NAT_PROFILES = ("full_cone", "restricted_cone", "port_restricted_cone", "symmetric")
PAPER_LOSS_RATES = (0.0, 0.01, 0.05)
PAPER_UPNP_FRACTIONS = (0.0, 0.2, 0.5)


# --------------------------------------------------------------------- cell & matrix


@dataclass(frozen=True)
class CellSpec:
    """One cell of the experiment matrix: a single simulated run.

    Cells are frozen (hashable, picklable) so they can be shipped to worker processes
    and used as dictionary keys. ``params`` is a sorted tuple of ``(name, value)``
    pairs — the scenario kind's variant knobs (churn fraction, failure fraction,
    public ratio, ...).
    """

    scenario: str
    protocol: str
    size: int
    seed_index: int
    rounds: int
    public_ratio: float = 0.2
    nat_profile: str = DEFAULT_NAT_PROFILE
    loss_rate: float = DEFAULT_LOSS_RATE
    nat_mixture: str = DEFAULT_NAT_MIXTURE
    upnp_fraction: float = DEFAULT_UPNP_FRACTION
    timeline: str = DEFAULT_TIMELINE
    engine: str = DEFAULT_ENGINE
    params: Params = ()

    @property
    def key(self) -> str:
        """Stable identifier: a pure function of the cell's content.

        The deployment axes (``nat_profile``, ``loss_rate``, ``nat_mixture``,
        ``upnp_fraction``) and the ``timeline`` axis appear only when they differ
        from the defaults, so cell keys — and the seeds derived from them — from
        before those axes existed are unchanged. A non-default timeline is keyed as
        ``name@digest``: the digest hashes the timeline's canonical JSON, so editing
        a preset's *content* re-seeds its cells even though the name stays put.
        """
        parts = [
            f"scenario={self.scenario}",
            f"protocol={self.protocol}",
            f"size={self.size}",
            f"seed={self.seed_index}",
            f"rounds={self.rounds}",
            f"public_ratio={self.public_ratio:g}",
        ]
        if self.nat_profile != DEFAULT_NAT_PROFILE:
            parts.append(f"nat_profile={self.nat_profile}")
        if self.loss_rate != DEFAULT_LOSS_RATE:
            parts.append(f"loss_rate={self.loss_rate:g}")
        if self.nat_mixture != DEFAULT_NAT_MIXTURE:
            parts.append(f"nat_mixture={self.nat_mixture}")
        if self.upnp_fraction != DEFAULT_UPNP_FRACTION:
            parts.append(f"upnp_fraction={self.upnp_fraction:g}")
        if self.timeline != DEFAULT_TIMELINE:
            parts.append(f"timeline={self.timeline}@{timeline_digest(self.timeline)}")
        if self.engine != DEFAULT_ENGINE:
            parts.append(f"engine={self.engine}")
        parts.extend(f"{name}={value}" for name, value in self.params)
        return ";".join(parts)

    def param(self, name: str, default: ParamValue = None) -> ParamValue:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def validate(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ExperimentError(
                f"unknown scenario kind {self.scenario!r}; registered: {scenario_names()}"
            )
        if self.protocol not in protocol_names():
            raise ExperimentError(
                f"unknown protocol {self.protocol!r}; expected one of {protocol_names()}"
            )
        if self.nat_profile not in NAT_PROFILES:
            raise ExperimentError(
                f"unknown nat_profile {self.nat_profile!r}; expected one of "
                f"{sorted(NAT_PROFILES)}"
            )
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ExperimentError(f"loss_rate out of range: {self.loss_rate}")
        if self.nat_mixture != DEFAULT_NAT_MIXTURE:
            if self.nat_mixture not in NAT_MIXTURES:
                raise ExperimentError(
                    f"unknown nat_mixture {self.nat_mixture!r}; expected "
                    f"{DEFAULT_NAT_MIXTURE!r} or one of {sorted(NAT_MIXTURES)}"
                )
            if self.nat_profile != DEFAULT_NAT_PROFILE:
                raise ExperimentError(
                    f"cell sets both nat_mixture={self.nat_mixture!r} and "
                    f"nat_profile={self.nat_profile!r}; a mixture already decides "
                    "every gateway's profile"
                )
        if not 0.0 <= self.upnp_fraction <= 1.0:
            raise ExperimentError(f"upnp_fraction out of range: {self.upnp_fraction}")
        if self.timeline != DEFAULT_TIMELINE:
            timeline_digest(self.timeline)  # raises on unknown names
        from repro.workload.scenario import ENGINES

        if self.engine not in ENGINES:
            raise ExperimentError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.engine == "columnar":
            from repro.columnar.engine import COLUMNAR_PROTOCOLS

            if self.protocol not in COLUMNAR_PROTOCOLS:
                raise ExperimentError(
                    f"engine='columnar' supports protocols {COLUMNAR_PROTOCOLS}, "
                    f"got {self.protocol!r}"
                )
        if self.size <= 0:
            raise ExperimentError("cell size must be positive")
        if self.rounds <= 0:
            raise ExperimentError("cell rounds must be positive")
        if not 0.0 < self.public_ratio <= 1.0:
            raise ExperimentError(f"public_ratio out of range: {self.public_ratio}")


def derive_cell_seed(root_seed: int, cell_key: str) -> int:
    """The seed a cell runs with: hash(root seed, cell key) via the simulator's rule."""
    return derive_seed(root_seed, _CELL_SEED_LABEL, cell_key)


@dataclass
class MatrixSpec:
    """A declarative experiment grid: scenario kinds × protocols × sizes × seeds.

    ``seeds`` is a *count* of seed indices (0..seeds-1); each cell's actual simulator
    seed is derived from ``root_seed`` and the cell key, so changing any axis value
    changes only the affected cells' seeds, never the others'.

    ``variants`` controls which of a scenario kind's registered parameter variants are
    expanded: ``"default"`` (the kind's single default), ``"paper"`` (the full sweep
    the paper plots, e.g. all churn levels) or ``"first"`` (the first paper variant).

    ``nat_profiles``, ``loss_rates``, ``nat_mixtures`` and ``upnp_fractions`` are
    first-class deployment axes: the NAT behaviour of private nodes' gateways (names
    from :data:`NAT_PROFILES`; :data:`PAPER_NAT_PROFILES` is the paper-setup sweep),
    the uniform packet-loss probability (:data:`PAPER_LOSS_RATES`), heterogeneous
    gateway populations (registered :data:`repro.nat.mixture.NAT_MIXTURES` names —
    ``"paper"`` is the paper's measured NAT-type distribution; ``"none"`` keeps the
    homogeneous ``nat_profiles`` behaviour) and the fraction of gateways whose NAT
    supports UPnP port mapping (:data:`PAPER_UPNP_FRACTIONS`). Their defaults
    reproduce the pre-axis grids exactly, cell keys included.

    ``timelines`` is the workload-dynamics axis: each value names a registered
    :class:`~repro.workload.timeline.Timeline` (``repro matrix --list`` shows the
    presets: ``paper-churn``, ``paper-failure``, ``flash-crowd``, ``diurnal``,
    ``partition-heal``) whose events are installed on top of the scenario kind's own
    dynamics. ``"none"`` (the default) adds nothing and keeps every legacy cell key,
    derived seed and aggregate byte intact.

    ``engines`` is the execution-backend axis: ``"object"`` (default — per-node
    component simulation) or ``"columnar"`` (flat-array batched engine for
    10⁵–10⁶-node cells; Croupier and Cyclon only). The default is omitted from cell
    keys, so adding the axis never re-seeds a legacy cell.
    """

    scenarios: Sequence[str] = ("static",)
    protocols: Sequence[str] = ("croupier",)
    sizes: Sequence[int] = (100,)
    seeds: int = 1
    rounds: int = 30
    public_ratio: float = 0.2
    root_seed: int = 42
    latency: str = "king"
    variants: str = "default"
    nat_profiles: Sequence[str] = (DEFAULT_NAT_PROFILE,)
    loss_rates: Sequence[float] = (DEFAULT_LOSS_RATE,)
    nat_mixtures: Sequence[str] = (DEFAULT_NAT_MIXTURE,)
    upnp_fractions: Sequence[float] = (DEFAULT_UPNP_FRACTION,)
    timelines: Sequence[str] = (DEFAULT_TIMELINE,)
    engines: Sequence[str] = (DEFAULT_ENGINE,)

    def validate(self) -> List["CellSpec"]:
        """Validate the axes and every expanded cell; returns the cells so callers
        (the runner, the CLI) don't have to expand the grid a second time."""
        if not self.scenarios:
            raise ExperimentError("matrix needs at least one scenario kind")
        if not self.protocols:
            raise ExperimentError("matrix needs at least one protocol")
        if not self.sizes:
            raise ExperimentError("matrix needs at least one system size")
        if not self.nat_profiles:
            raise ExperimentError("matrix needs at least one NAT profile")
        if not self.loss_rates:
            raise ExperimentError("matrix needs at least one loss rate")
        if not self.nat_mixtures:
            raise ExperimentError("matrix needs at least one NAT mixture (or 'none')")
        if not self.upnp_fractions:
            raise ExperimentError("matrix needs at least one UPnP fraction")
        if not self.timelines:
            raise ExperimentError("matrix needs at least one timeline (or 'none')")
        if not self.engines:
            raise ExperimentError("matrix needs at least one engine")
        if self.seeds <= 0:
            raise ExperimentError("seeds must be positive")
        if self.rounds <= 0:
            raise ExperimentError("rounds must be positive")
        if self.variants not in ("default", "paper", "first"):
            raise ExperimentError(f"unknown variants mode {self.variants!r}")
        for name in self.scenarios:
            if name not in SCENARIOS:
                raise ExperimentError(
                    f"unknown scenario kind {name!r}; registered: {scenario_names()}"
                )
        cells = self.cells()
        for cell in cells:
            cell.validate()
        return cells

    def cells(self) -> List[CellSpec]:
        """Expand the axes into cells, in a stable, documented order.

        Order is scenario → variant → protocol → NAT profile → NAT mixture → UPnP
        fraction → loss rate → timeline → engine → size → seed, exactly as
        declared; the runner preserves this order in its results regardless of
        which worker finishes first.
        """
        cells: List[CellSpec] = []
        for scenario_name in self.scenarios:
            kind = SCENARIOS[scenario_name]
            for params in kind.expand_variants(self.variants):
                # A variant's public_ratio is the cell's ratio, not an extra param —
                # folding it in keeps cell keys free of duplicate fields.
                variant = dict(params)
                ratio = float(variant.pop("public_ratio", self.public_ratio))
                for protocol in self.protocols:
                    for nat_profile in self.nat_profiles:
                        for nat_mixture in self.nat_mixtures:
                            for upnp_fraction in self.upnp_fractions:
                                for loss_rate in self.loss_rates:
                                    for timeline in self.timelines:
                                        for engine in self.engines:
                                            for size in self.sizes:
                                                for seed_index in range(self.seeds):
                                                    cells.append(
                                                        CellSpec(
                                                            scenario=scenario_name,
                                                            protocol=protocol,
                                                            size=size,
                                                            seed_index=seed_index,
                                                            rounds=self.rounds,
                                                            public_ratio=ratio,
                                                            nat_profile=nat_profile,
                                                            loss_rate=float(loss_rate),
                                                            nat_mixture=nat_mixture,
                                                            upnp_fraction=float(upnp_fraction),
                                                            timeline=timeline,
                                                            engine=engine,
                                                            params=_freeze_params(variant),
                                                        )
                                                    )
        keys = [cell.key for cell in cells]
        if len(set(keys)) != len(keys):
            raise ExperimentError("matrix expansion produced duplicate cell keys")
        return cells

    def spec_json_dict(self) -> Dict[str, object]:
        """The spec's canonical JSON form — the aggregate's ``spec`` section and the
        basis of journal spec digests. Axes left at their defaults are omitted, so
        pre-axis specs serialise exactly as they always have."""
        section: Dict[str, object] = {
            "scenarios": list(self.scenarios),
            "protocols": list(self.protocols),
            "sizes": list(self.sizes),
            "seeds": self.seeds,
            "rounds": self.rounds,
            "public_ratio": self.public_ratio,
            "root_seed": self.root_seed,
            "latency": self.latency,
            "variants": self.variants,
            "nat_profiles": list(self.nat_profiles),
            "loss_rates": list(self.loss_rates),
        }
        if tuple(self.nat_mixtures) != (DEFAULT_NAT_MIXTURE,):
            section["nat_mixtures"] = list(self.nat_mixtures)
        if tuple(self.upnp_fractions) != (DEFAULT_UPNP_FRACTION,):
            section["upnp_fractions"] = list(self.upnp_fractions)
        if tuple(self.timelines) != (DEFAULT_TIMELINE,):
            section["timelines"] = list(self.timelines)
        if tuple(self.engines) != (DEFAULT_ENGINE,):
            section["engines"] = list(self.engines)
        return section

    def describe(self) -> str:
        cells = self.cells()
        description = (
            f"{len(cells)} cells: scenarios={list(self.scenarios)} × "
            f"protocols={list(self.protocols)} × sizes={list(self.sizes)} × "
            f"seeds={self.seeds} (variants={self.variants}, rounds={self.rounds})"
        )
        if tuple(self.nat_profiles) != (DEFAULT_NAT_PROFILE,):
            description += f" × nat_profiles={list(self.nat_profiles)}"
        if tuple(self.nat_mixtures) != (DEFAULT_NAT_MIXTURE,):
            description += f" × nat_mixtures={list(self.nat_mixtures)}"
        if tuple(self.upnp_fractions) != (DEFAULT_UPNP_FRACTION,):
            description += f" × upnp_fractions={list(self.upnp_fractions)}"
        if tuple(self.loss_rates) != (DEFAULT_LOSS_RATE,):
            description += f" × loss_rates={list(self.loss_rates)}"
        if tuple(self.timelines) != (DEFAULT_TIMELINE,):
            description += f" × timelines={list(self.timelines)}"
        if tuple(self.engines) != (DEFAULT_ENGINE,):
            description += f" × engines={list(self.engines)}"
        return description


# --------------------------------------------------------------------- registry


@dataclass(frozen=True)
class ScenarioKind:
    """A registered workload shape that can populate matrix cells.

    ``runner`` receives a :class:`CellContext` and returns a
    :class:`~repro.metrics.payload.MetricPayload` (plain ``{metric: number}`` dicts
    are still accepted and adapted). ``paper_variants`` are the sweep points of the
    figure the kind reproduces (each a params dict); ``default_params`` is the single
    variant used when the matrix doesn't ask for the full paper sweep.

    ``timeout_s`` is the kind's default per-cell wall-clock budget under the matrix
    runner's watchdog (``None`` = the runner-wide default; ``repro matrix
    --cell-timeout`` overrides both). A cell past its budget is classified as a
    ``timeout`` fault, its worker killed, and the cell retried on a fresh one.
    """

    name: str
    runner: Callable[["CellContext"], "MetricPayload"]
    description: str = ""
    default_params: Tuple[Tuple[str, ParamValue], ...] = ()
    paper_variants: Tuple[Params, ...] = ()
    timeout_s: Optional[float] = None

    def expand_variants(self, mode: str) -> List[Params]:
        if mode == "paper" and self.paper_variants:
            return list(self.paper_variants)
        if mode == "first" and self.paper_variants:
            return [self.paper_variants[0]]
        return [self.default_params]


#: Global scenario-kind registry, filled by the experiment modules at import time.
SCENARIOS: Dict[str, ScenarioKind] = {}


def register_scenario(
    name: str,
    runner: Callable[["CellContext"], Dict[str, float]],
    description: str = "",
    default_params: Optional[Mapping[str, ParamValue]] = None,
    paper_variants: Optional[Sequence[Mapping[str, ParamValue]]] = None,
    replace: bool = False,
    timeout_s: Optional[float] = None,
) -> ScenarioKind:
    """Register a scenario kind under ``name`` (used by experiment modules and tests).

    Note for parallel runs: the pool runner forks where the platform allows, so kinds
    registered at run time (tests, notebooks) are visible in workers. Under a spawn
    start method (e.g. Windows) only kinds registered at import time of
    :mod:`repro.experiments` exist in workers — put custom kinds in an importable
    module there, or run with ``workers=1``.
    """
    if name in SCENARIOS and not replace:
        raise ExperimentError(f"scenario kind {name!r} already registered")
    kind = ScenarioKind(
        name=name,
        runner=runner,
        description=description,
        default_params=_freeze_params(default_params or {}),
        paper_variants=tuple(_freeze_params(v) for v in (paper_variants or ())),
        timeout_s=timeout_s,
    )
    SCENARIOS[name] = kind
    return kind


def unregister_scenario(name: str) -> None:
    SCENARIOS.pop(name, None)


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def _freeze_params(params: Mapping[str, ParamValue]) -> Params:
    return tuple(sorted(params.items()))


# --------------------------------------------------------------------- execution


@dataclass
class CellContext:
    """Everything a scenario-kind runner needs to execute one cell.

    ``reuse`` is the worker-local :class:`~repro.experiments.runner.ScenarioReuse`
    cache the runner injects (``None`` when a cell runs standalone): cells within one
    group share their construction recipe except for the derived seed, and the
    context routes protocol-config prototypes and populated-scenario builds through
    that cache so the shared parts are resolved once per worker instead of once per
    cell.
    """

    cell: CellSpec
    seed: int
    latency: str = "king"
    reuse: Optional[object] = None

    @property
    def n_public(self) -> int:
        ratio = float(self.cell.param("public_ratio", self.cell.public_ratio))
        return max(1, int(round(self.cell.size * ratio)))

    @property
    def n_private(self) -> int:
        return max(0, self.cell.size - self.n_public)

    @property
    def timeline(self):
        """The cell's axis :class:`~repro.workload.timeline.Timeline` (``None`` for
        the default ``"none"`` — the value every pre-timeline cell carries).

        Presets that declare an authored horizon are compressed proportionally
        when this cell measures fewer rounds than the preset was written for
        (:meth:`~repro.workload.timeline.TimelinePreset.timeline_for_horizon`);
        the cell key's digest still hashes the authored timeline, so scaling
        never changes the derived seed.
        """
        if self.cell.timeline == DEFAULT_TIMELINE:
            return None
        from repro.workload.timeline import TIMELINES, get_timeline

        preset = TIMELINES.get(self.cell.timeline)
        if preset is None:
            return get_timeline(self.cell.timeline)  # raises the canonical error
        return preset.timeline_for_horizon(float(self.cell.rounds))

    def install_timeline(self, scenario, base=None):
        """Install the cell's dynamics onto ``scenario``: the scenario kind's own
        ``base`` timeline (its params, compiled — may be ``None``) extended with the
        axis timeline's events. Returns the
        :class:`~repro.workload.timeline.InstalledTimeline` whose
        ``fire_boundary(round)`` the measurement loop must call between rounds.
        """
        from repro.workload.timeline import Timeline

        timeline = base if base is not None else Timeline()
        axis = self.timeline
        if axis is not None:
            timeline = timeline.extended(*axis.events)
        # The cell's measured rounds are the horizon: events starting past it would
        # silently never fire, so install() warns about them.
        return timeline.install(scenario, horizon_rounds=self.cell.rounds)

    def scenario_config(self, pss_config=None, nat_mixture: Optional[str] = None):
        """The :class:`~repro.workload.ScenarioConfig` this cell prescribes: protocol,
        derived seed, latency, and the deployment axes (NAT profile or mixture, UPnP
        fraction, loss rate). ``nat_mixture`` overrides the cell's mixture axis (the
        ``nat_indegree`` kind forces the paper mixture on mixture-less cells)."""
        from repro.workload.scenario import ScenarioConfig

        cell = self.cell
        mixture_name = nat_mixture if nat_mixture is not None else cell.nat_mixture
        mixture = (
            NAT_MIXTURES[mixture_name]
            if mixture_name != DEFAULT_NAT_MIXTURE
            else None
        )
        return ScenarioConfig(
            protocol=cell.protocol,
            seed=self.seed,
            latency=self.latency,
            loss_rate=cell.loss_rate,
            nat_profile=NAT_PROFILES[cell.nat_profile](),
            nat_mixture=mixture,
            upnp_fraction=cell.upnp_fraction,
            pss_config=pss_config,
            engine=cell.engine,
        )

    def pss_config_for(self, key: Tuple, build: Callable[[], object]):
        """A validated protocol-config prototype, shared through the reuse cache.

        ``key`` must fully determine the prototype (protocol name plus every config
        parameter); configs are read-only by the protocol contract, so one prototype
        can safely serve every cell — and every node — that asks for the same key.
        """
        if self.reuse is None:
            return build()
        return self.reuse.pss_config((self.cell.protocol,) + key, build)

    def populated_scenario(
        self, n_public=None, n_private=None, pss_config=None,
        nat_mixture: Optional[str] = None,
    ):
        """Build (or clone from the worker cache) this cell's populated scenario.

        The build recipe — protocol, derived seed, latency, deployment axes,
        population split and config prototype — fully determines the populated
        scenario, so a cached pristine clone continues exactly like a fresh build
        and worker counts can never change results. The cell's timeline is *not*
        part of the recipe: timelines install onto the returned scenario afterwards,
        so cells that share a populated prefix and differ only in their timeline
        suffix share one cached snapshot.
        """
        from repro.workload.scenario import create_scenario

        if n_public is None:
            n_public = self.n_public
        if n_private is None:
            n_private = self.n_private

        def build():
            scenario = create_scenario(
                self.scenario_config(pss_config=pss_config, nat_mixture=nat_mixture)
            )
            scenario.populate(n_public=n_public, n_private=n_private)
            return scenario

        if self.reuse is None:
            return build()
        cell = self.cell
        recipe = (
            cell.protocol,
            self.seed,
            self.latency,
            cell.loss_rate,
            cell.nat_profile,
            nat_mixture if nat_mixture is not None else cell.nat_mixture,
            cell.upnp_fraction,
            n_public,
            n_private,
            None if pss_config is None else (type(pss_config).__name__, repr(pss_config)),
        )
        if cell.engine != DEFAULT_ENGINE:
            # Appended conditionally so legacy recipes (and their cached snapshots)
            # keep their exact tuples.
            recipe = recipe + (cell.engine,)
        return self.reuse.populated_scenario(recipe, build)


def run_cell(
    cell: CellSpec,
    root_seed: int,
    latency: str = "king",
    reuse: Optional[object] = None,
) -> MetricPayload:
    """Execute one cell and return its :class:`~repro.metrics.payload.MetricPayload`
    (raises on unknown kinds or runner errors). ``reuse`` is the worker-local
    :class:`~repro.experiments.runner.ScenarioReuse` cache, when running under the
    matrix runner."""
    cell.validate()
    kind = SCENARIOS[cell.scenario]
    context = CellContext(
        cell=cell,
        seed=derive_cell_seed(root_seed, cell.key),
        latency=latency,
        reuse=reuse,
    )
    measured = kind.runner(context)
    if not isinstance(measured, MetricPayload):
        measured = MetricPayload.from_scalars(dict(measured))
    measured.scalars = dict(sorted(measured.scalars.items()))
    return measured


# --------------------------------------------------------------------- measurement


def measure_cell(
    scenario,
    error_series=None,
    overhead_window=None,
    probes=None,
    path_length_sources: int = 30,
) -> MetricPayload:
    """The standard per-cell measurement, run through the pluggable probe set.

    Covers what the paper's figures plot: ω̂ estimation error (mean/max tails plus
    series percentiles — only for protocols advertising
    :class:`~repro.membership.capabilities.RatioEstimating`), the in-degree
    distribution (as summary scalars *and* as the ``in_degree`` histogram), graph
    randomness (Figure 6), partition connectivity (Figure 7b) and per-class traffic
    overhead when the caller opened a measurement window (Figure 7a). All values are
    pure functions of the cell seed, so aggregates are byte-identical across worker
    counts.

    ``probes`` replaces the default set (:func:`repro.metrics.probes.default_probes`);
    probes whose required capabilities the protocol lacks are skipped.
    """
    from repro.metrics.probes import ProbeContext, run_probes

    context = ProbeContext(
        error_series=error_series,
        overhead_window=overhead_window,
        path_length_sources=path_length_sources,
    )
    return run_probes(scenario, context=context, probes=probes)
