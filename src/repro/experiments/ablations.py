"""Ablation experiments for the design choices called out in DESIGN.md (A1–A4).

These are not figures from the paper; they probe *why* Croupier is built the way it is:

* **A1 — split views vs. a single NAT-oblivious view** — run Croupier and Cyclon over
  the same NATed population and compare how well private nodes are represented in the
  views and samples. A NAT-oblivious PSS under-represents private nodes (the problem
  statement of the paper's introduction).
* **A3 — estimate piggy-backing bound** — sweep ``max_estimates_per_message`` and
  measure both estimation error and per-message overhead to expose the trade-off.
* **A4 — tail vs. random partner selection** — compare the estimation accuracy and the
  staleness of views under the two selection policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import CroupierConfig
from repro.experiments.report import format_table
from repro.membership.capabilities import RatioEstimating
from repro.membership.policies import SelectionPolicy
from repro.metrics.estimation import average_error
from repro.metrics.probes import collect_ratio_estimates
from repro.workload.scenario import Scenario, ScenarioConfig


# ----------------------------------------------------------------------------- A1


@dataclass
class ViewRepresentationResult:
    """How well private nodes are represented, per protocol (ablation A1)."""

    true_private_fraction: float
    #: protocol -> fraction of view entries (over all nodes) that point at private nodes
    private_fraction_in_views: Dict[str, float] = field(default_factory=dict)
    #: protocol -> fraction of drawn samples that are private nodes
    private_fraction_in_samples: Dict[str, float] = field(default_factory=dict)

    def representation_bias(self, protocol: str) -> float:
        """True private fraction minus sampled private fraction (positive = under-represented)."""
        return self.true_private_fraction - self.private_fraction_in_samples[protocol]

    def to_text(self) -> str:
        rows = [
            [
                protocol,
                self.private_fraction_in_views.get(protocol),
                self.private_fraction_in_samples.get(protocol),
                self.representation_bias(protocol),
            ]
            for protocol in self.private_fraction_in_samples
        ]
        return format_table(
            ["protocol", "private in views", "private in samples", "bias"],
            rows,
            title=(
                "Ablation A1: representation of private nodes "
                f"(true private fraction = {self.true_private_fraction:.2f})"
            ),
        )


def run_view_representation_ablation(
    protocols: Sequence[str] = ("croupier", "cyclon", "gozar", "nylon"),
    total_nodes: int = 200,
    public_ratio: float = 0.2,
    rounds: int = 100,
    samples_per_node: int = 20,
    seed: int = 42,
    latency: str = "constant",
) -> ViewRepresentationResult:
    """Ablation A1: do private nodes stay represented in views and samples?

    Unlike the paper's Cyclon baseline (public nodes only), Cyclon here runs over the
    *same* NATed population as the others, which is exactly the configuration where a
    NAT-oblivious protocol degrades.
    """
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = total_nodes - n_public
    true_private_fraction = n_private / total_nodes
    result = ViewRepresentationResult(true_private_fraction=true_private_fraction)

    for protocol in protocols:
        scenario = Scenario(ScenarioConfig(protocol=protocol, seed=seed, latency=latency))
        scenario.populate(n_public=n_public, n_private=n_private)
        scenario.run_rounds(rounds)

        view_entries = 0
        private_entries = 0
        private_samples = 0
        total_samples = 0
        for handle in scenario.live_handles():
            for address in handle.pss.neighbor_addresses():
                view_entries += 1
                if address.is_private:
                    private_entries += 1
            for address in handle.pss.sample_many(samples_per_node):
                total_samples += 1
                if address.is_private:
                    private_samples += 1
        result.private_fraction_in_views[protocol] = (
            private_entries / view_entries if view_entries else 0.0
        )
        result.private_fraction_in_samples[protocol] = (
            private_samples / total_samples if total_samples else 0.0
        )
    return result


# ----------------------------------------------------------------------------- A3


@dataclass
class PiggybackBoundResult:
    """Estimation error and message size as a function of the piggy-back bound (A3)."""

    #: bound -> final average estimation error
    avg_error_by_bound: Dict[int, Optional[float]] = field(default_factory=dict)
    #: bound -> mean shuffle-message wire size (bytes)
    message_bytes_by_bound: Dict[int, float] = field(default_factory=dict)

    def to_text(self) -> str:
        rows = [
            [bound, self.avg_error_by_bound[bound], self.message_bytes_by_bound.get(bound)]
            for bound in sorted(self.avg_error_by_bound)
        ]
        return format_table(
            ["max estimates/msg", "final avg error", "mean shuffle bytes"],
            rows,
            title="Ablation A3: estimate piggy-backing bound",
        )


def run_piggyback_bound_ablation(
    bounds: Sequence[int] = (0, 2, 5, 10, 20),
    total_nodes: int = 150,
    public_ratio: float = 0.2,
    rounds: int = 100,
    seed: int = 42,
    latency: str = "constant",
) -> PiggybackBoundResult:
    """Ablation A3: sweep the number of estimates piggy-backed on each shuffle message."""
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = total_nodes - n_public
    result = PiggybackBoundResult()
    for bound in bounds:
        config = CroupierConfig(max_estimates_per_message=bound)
        scenario = Scenario(
            ScenarioConfig(protocol="croupier", seed=seed, latency=latency, pss_config=config)
        )
        scenario.populate(n_public=n_public, n_private=n_private)
        scenario.run_rounds(rounds)
        estimates = collect_ratio_estimates(scenario)
        result.avg_error_by_bound[bound] = average_error(scenario.true_ratio(), estimates)
        # Average shuffle message size over the whole run.
        total_bytes = 0
        total_msgs = 0
        for handle in scenario.live_handles():
            traffic = scenario.monitor.node_traffic(handle.node_id)
            for type_name in ("ShuffleRequest", "ShuffleResponse"):
                total_bytes += traffic.tx_by_type.get(type_name, 0)
            total_msgs += traffic.tx_messages
        result.message_bytes_by_bound[bound] = (
            total_bytes / total_msgs if total_msgs else 0.0
        )
    return result


# ----------------------------------------------------------------------------- A4


@dataclass
class SelectionPolicyResult:
    """Estimation error and view staleness for tail vs. random partner selection (A4)."""

    avg_error_by_policy: Dict[str, Optional[float]] = field(default_factory=dict)
    mean_view_age_by_policy: Dict[str, float] = field(default_factory=dict)

    def to_text(self) -> str:
        rows = [
            [
                policy,
                self.avg_error_by_policy[policy],
                self.mean_view_age_by_policy.get(policy),
            ]
            for policy in self.avg_error_by_policy
        ]
        return format_table(
            ["selection policy", "final avg error", "mean descriptor age"],
            rows,
            title="Ablation A4: tail vs. random partner selection",
        )


def run_selection_policy_ablation(
    total_nodes: int = 150,
    public_ratio: float = 0.2,
    rounds: int = 100,
    seed: int = 42,
    latency: str = "constant",
) -> SelectionPolicyResult:
    """Ablation A4: compare tail and random selection for Croupier's partner choice.

    Croupier always uses the tail policy (oldest descriptor); this ablation quantifies
    what random selection would change — typically similar error but older descriptors
    lingering in views (staler membership information).
    """
    result = SelectionPolicyResult()
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = total_nodes - n_public
    for policy in (SelectionPolicy.TAIL, SelectionPolicy.RANDOM):
        config = CroupierConfig(selection=policy)
        scenario = Scenario(
            ScenarioConfig(protocol="croupier", seed=seed, latency=latency, pss_config=config)
        )
        scenario.populate(n_public=n_public, n_private=n_private)
        scenario.run_rounds(rounds)
        estimates = collect_ratio_estimates(scenario)
        result.avg_error_by_policy[policy.value] = average_error(
            scenario.true_ratio(), estimates
        )
        ages: List[int] = []
        for pss in scenario.services_with(RatioEstimating):
            ages.extend(d.age for d in pss.public_view)
            ages.extend(d.age for d in pss.private_view)
        result.mean_view_age_by_policy[policy.value] = (
            sum(ages) / len(ages) if ages else 0.0
        )
    return result
