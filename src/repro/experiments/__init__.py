"""Experiment harnesses: one module per figure of the paper's evaluation (Section VII).

Every harness is a plain function that builds a :class:`~repro.workload.Scenario`,
drives the workload the paper describes, collects the same series the paper plots and
returns a result object with a ``to_text()`` rendering. The default parameters are
scaled down so the whole suite runs in minutes on a laptop; every harness accepts the
paper-scale parameters (see EXPERIMENTS.md for the exact invocations and the measured
results).

Mapping to the paper:

========================  ==========================================================
Figure                     Harness
========================  ==========================================================
Figure 1 (a, b)            :func:`~repro.experiments.history_windows.run_history_window_experiment` (``dynamic=False``)
Figure 2 (a, b)            :func:`~repro.experiments.history_windows.run_history_window_experiment` (``dynamic=True``)
Figure 3 (a, b)            :func:`~repro.experiments.system_size.run_system_size_experiment`
Figure 4 (a, b)            :func:`~repro.experiments.ratio_sweep.run_ratio_sweep_experiment`
Figure 5 (a, b)            :func:`~repro.experiments.churn.run_churn_experiment`
Figure 6 (a, b, c)         :func:`~repro.experiments.randomness.run_randomness_experiment`
Figure 7 (a)               :func:`~repro.experiments.overhead.run_overhead_experiment`
Figure 7 (b)               :func:`~repro.experiments.catastrophic_failure.run_failure_experiment`
NAT-class in-degree        :func:`~repro.experiments.nat_indegree.run_nat_indegree_experiment`
Ablations (DESIGN.md A1-A4) :mod:`~repro.experiments.ablations`
========================  ==========================================================

Grids of such runs — protocol × scenario kind × system size × seed — are expressed
declaratively with :class:`~repro.experiments.matrix.MatrixSpec` and executed on a
sharded multiprocess pool by :func:`~repro.experiments.runner.run_matrix` (the
``repro matrix`` CLI). See ``docs/experiments.md``.
"""

from repro.experiments.base import (
    EstimationExperimentSpec,
    EstimationRun,
    run_estimation_cell,
    run_estimation_scenario,
)
from repro.experiments.matrix import (
    NAT_MIXTURES,
    NAT_PROFILES,
    PAPER_LOSS_RATES,
    PAPER_NAT_PROFILES,
    PAPER_UPNP_FRACTIONS,
    CellContext,
    CellSpec,
    MatrixSpec,
    derive_cell_seed,
    measure_cell,
    register_scenario,
    scenario_names,
)
from repro.experiments.checkpoint import JournalWriter, load_journal, spec_digest
from repro.experiments.faults import FaultPlan, RetryPolicy, payload_digest
from repro.experiments.runner import (
    CellResult,
    MatrixRunResult,
    run_matrix,
    write_artifacts,
)
from repro.experiments.catastrophic_failure import FailureExperimentResult, run_failure_experiment
from repro.experiments.churn import ChurnExperimentResult, run_churn_experiment
from repro.experiments.history_windows import (
    HistoryWindowResult,
    run_history_window_experiment,
)
from repro.experiments.nat_indegree import NatInDegreeResult, run_nat_indegree_experiment
from repro.experiments.overhead import OverheadExperimentResult, run_overhead_experiment
from repro.experiments.quick import QuickRunResult, quick_croupier_run
from repro.experiments.randomness import RandomnessResult, run_randomness_experiment
from repro.experiments.ratio_sweep import RatioSweepResult, run_ratio_sweep_experiment
from repro.experiments.scale import (
    ScaleRunResult,
    ScaleVariantResult,
    run_scale_cell,
    run_scale_experiment,
)
from repro.experiments.system_size import SystemSizeResult, run_system_size_experiment

__all__ = [
    "NAT_MIXTURES",
    "NAT_PROFILES",
    "PAPER_LOSS_RATES",
    "PAPER_NAT_PROFILES",
    "PAPER_UPNP_FRACTIONS",
    "CellContext",
    "CellResult",
    "CellSpec",
    "ChurnExperimentResult",
    "EstimationExperimentSpec",
    "EstimationRun",
    "FailureExperimentResult",
    "FaultPlan",
    "HistoryWindowResult",
    "JournalWriter",
    "MatrixRunResult",
    "MatrixSpec",
    "NatInDegreeResult",
    "OverheadExperimentResult",
    "QuickRunResult",
    "RandomnessResult",
    "RatioSweepResult",
    "RetryPolicy",
    "ScaleRunResult",
    "ScaleVariantResult",
    "SystemSizeResult",
    "derive_cell_seed",
    "load_journal",
    "measure_cell",
    "payload_digest",
    "quick_croupier_run",
    "register_scenario",
    "run_churn_experiment",
    "run_estimation_cell",
    "run_estimation_scenario",
    "run_failure_experiment",
    "run_history_window_experiment",
    "run_matrix",
    "run_nat_indegree_experiment",
    "run_overhead_experiment",
    "run_randomness_experiment",
    "run_ratio_sweep_experiment",
    "run_scale_cell",
    "run_scale_experiment",
    "run_system_size_experiment",
    "scenario_names",
    "spec_digest",
    "write_artifacts",
]
