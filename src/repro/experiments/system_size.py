"""Figure 3: effect of the system size on estimation accuracy.

The paper measures systems of 50, 100, 500, 1000 and 5000 nodes (public ratio 0.2,
α=25, γ=50) and finds that accuracy improves rapidly up to a few hundred nodes and only
marginally beyond 1000.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.base import (
    EstimationExperimentSpec,
    EstimationRun,
    run_estimation_cell,
    run_estimation_scenario,
)
from repro.experiments.matrix import register_scenario
from repro.experiments.report import error_series_table, error_summary_table

#: The system sizes of Figure 3.
PAPER_SYSTEM_SIZES = (50, 100, 500, 1000, 5000)

register_scenario(
    "join",
    run_estimation_cell,
    description="both node classes join over a Poisson window, then the ratio stays constant "
    "(Figure 3's workload; sweep the matrix size axis for the full figure)",
    default_params={"join_window_ms": 5000.0},
)


@dataclass
class SystemSizeResult:
    """One estimation run per system size."""

    public_ratio: float
    runs: Dict[int, EstimationRun] = field(default_factory=dict)

    @property
    def series(self):
        return [self.runs[size].series for size in sorted(self.runs)]

    def final_avg_errors(self) -> Dict[int, Optional[float]]:
        return {size: run.series.final_avg_error() for size, run in self.runs.items()}

    def final_max_errors(self) -> Dict[int, Optional[float]]:
        return {size: run.series.final_max_error() for size, run in self.runs.items()}

    def to_text(self) -> str:
        parts = [
            error_summary_table(self.series, title="Figure 3: estimation error vs. system size"),
            "",
            error_series_table(self.series, metric="avg", title="Figure 3(a): average error"),
            "",
            error_series_table(self.series, metric="max", title="Figure 3(b): maximum error"),
        ]
        return "\n".join(parts)


def run_system_size_experiment(
    sizes: Sequence[int] = PAPER_SYSTEM_SIZES,
    public_ratio: float = 0.2,
    rounds: int = 200,
    alpha: int = 25,
    gamma: int = 50,
    join_window_ms: float = 50_000.0,
    seed: int = 42,
    latency: str = "king",
) -> SystemSizeResult:
    """Reproduce Figure 3 for the given system sizes.

    Nodes of both classes join over ``join_window_ms`` following Poisson processes (the
    paper's 1000-node runs use a 10 ms inter-arrival time, i.e. a ~10 s window for the
    whole population; keeping the window constant across sizes preserves the transient
    the figure shows at its left edge).
    """
    result = SystemSizeResult(public_ratio=public_ratio)
    for size in sizes:
        n_public = max(1, int(round(size * public_ratio)))
        n_private = max(0, size - n_public)
        spec = EstimationExperimentSpec(
            label=f"N={size}",
            n_public=n_public,
            n_private=n_private,
            alpha=alpha,
            gamma=gamma,
            rounds=rounds,
            seed=seed,
            public_interarrival_ms=join_window_ms / max(1, n_public),
            private_interarrival_ms=join_window_ms / max(1, n_private) if n_private else None,
            latency=latency,
        )
        result.runs[size] = run_estimation_scenario(spec)
    return result
