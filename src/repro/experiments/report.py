"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; this module prints the same series as
aligned text tables so that running a benchmark or an example reproduces the numbers in
a terminal (EXPERIMENTS.md contains the archived outputs).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.collector import TimeSeries
from repro.metrics.estimation import EstimationErrorSeries


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned text table."""
    rendered_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.4f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def error_series_table(
    series_list: Sequence[EstimationErrorSeries],
    metric: str = "avg",
    every: int = 10,
    title: Optional[str] = None,
) -> str:
    """Tabulate several error series side by side (one column per plotted line).

    Parameters
    ----------
    metric:
        ``"avg"`` or ``"max"`` — which error metric to print.
    every:
        Print every N-th sample to keep the table readable.
    """
    headers = ["t (s)"] + [s.name for s in series_list]
    rows: List[List[object]] = []
    length = max((len(s.samples) for s in series_list), default=0)
    for index in range(0, length, max(1, every)):
        row: List[object] = []
        time_value: Optional[float] = None
        for series in series_list:
            if index < len(series.samples):
                sample = series.samples[index]
                time_value = sample.time_ms / 1000.0
                row.append(sample.avg_error if metric == "avg" else sample.max_error)
            else:
                row.append(None)
        rows.append([time_value] + row)
    return format_table(headers, rows, title=title)


def error_summary_table(
    series_list: Sequence[EstimationErrorSeries],
    title: Optional[str] = None,
) -> str:
    """One row per series: converged average and maximum error (tail means)."""
    headers = ["series", "final avg error", "final max error", "samples"]
    rows = [
        [s.name, s.final_avg_error(), s.final_max_error(), len(s)]
        for s in series_list
    ]
    return format_table(headers, rows, title=title)


def time_series_table(
    series_list: Sequence[TimeSeries],
    every: int = 10,
    title: Optional[str] = None,
) -> str:
    """Tabulate generic time series (path length, clustering coefficient, ...)."""
    headers = ["t (s)"] + [s.name for s in series_list]
    rows: List[List[object]] = []
    length = max((len(s) for s in series_list), default=0)
    for index in range(0, length, max(1, every)):
        row: List[object] = []
        time_value: Optional[float] = None
        for series in series_list:
            if index < len(series.values):
                time_value = series.times[index] / 1000.0
                row.append(series.values[index])
            else:
                row.append(None)
        rows.append([time_value] + row)
    return format_table(headers, rows, title=title)


def histogram_table(
    histograms: Mapping[str, Mapping[int, int]],
    title: Optional[str] = None,
) -> str:
    """Tabulate in-degree histograms, one column per protocol (Figure 6a)."""
    all_degrees = sorted({d for h in histograms.values() for d in h})
    headers = ["in-degree"] + list(histograms)
    rows: List[List[object]] = []
    for degree in all_degrees:
        rows.append([degree] + [histograms[name].get(degree, 0) for name in histograms])
    return format_table(headers, rows, title=title)


def key_value_table(
    pairs: Sequence[Tuple[str, object]],
    title: Optional[str] = None,
) -> str:
    """Two-column key/value table used by the overhead and failure reports."""
    return format_table(["metric", "value"], [[k, v] for k, v in pairs], title=title)


def matrix_markdown_summary(aggregate: Mapping) -> str:
    """Render a matrix aggregate (see :mod:`repro.experiments.runner`) as markdown.

    One row per cell group (seeds collapsed), with the headline metrics the paper's
    figures plot; failed cells get their own section so CI logs surface them.
    """
    spec = aggregate.get("spec", {})
    groups = aggregate.get("groups", {})
    failed = aggregate.get("failed", [])
    degraded = aggregate.get("degraded", {})
    total_cells = len(aggregate.get("cells", {}))

    headline = (
        ("est_err_avg_final", "ω̂ err (avg)"),
        ("est_err_max_final", "ω̂ err (max)"),
        ("biggest_cluster_fraction", "biggest cluster"),
        ("path_length", "path len"),
        ("all_bps", "all B/s"),
    )
    lines = [
        "# Experiment matrix summary",
        "",
        f"- scenarios: `{', '.join(spec.get('scenarios', []))}`"
        f" (variants: {spec.get('variants', 'default')})",
        f"- protocols: `{', '.join(spec.get('protocols', []))}`",
        f"- sizes: {', '.join(str(s) for s in spec.get('sizes', []))}"
        f" × seeds: {spec.get('seeds', '?')} × rounds: {spec.get('rounds', '?')}",
        f"- root seed: {spec.get('root_seed', '?')}, latency: {spec.get('latency', '?')}",
        f"- cells: {total_cells} total, {len(failed)} failed"
        + (f", {len(degraded)} degraded" if degraded else ""),
        "",
        "## Groups (mean over seeds)",
        "",
        "| group | cells | " + " | ".join(label for _, label in headline) + " |",
        "|" + "---|" * (2 + len(headline)),
    ]
    group_histograms = aggregate.get("group_histograms", {})
    for group_name, metrics in groups.items():
        count = 0
        for summary in metrics.values():
            count = max(count, int(summary.get("count", 0)))
        row = [f"`{group_name}`", str(count)]
        for metric, _label in headline:
            summary = metrics.get(metric)
            row.append(_fmt(summary["mean"]) if summary else "-")
        lines.append("| " + " | ".join(row) + " |")

    nat_lines = _nat_indegree_section(groups)
    if nat_lines:
        lines.extend(nat_lines)

    scale_lines = _scale_invariance_section(groups)
    if scale_lines:
        lines.extend(scale_lines)

    if group_histograms:
        lines.extend(["", "## Histogram payloads (merged across seeds)", ""])
        for group_name, histograms in group_histograms.items():
            for name, histogram in histograms.items():
                bins = len(histogram)
                total = sum(histogram.values())
                lines.append(f"- `{group_name}` · `{name}`: {bins} bins, {total} samples")

    if failed:
        lines.extend(["", "## Failed cells", ""])
        lines.extend(f"- `{key}`" for key in failed)

    if degraded:
        lines.extend(["", "## Degraded cells (transient-fault retries exhausted)", ""])
        for key in sorted(degraded):
            entry = degraded[key]
            faults = ", ".join(entry.get("faults", [])) or "?"
            lines.append(
                f"- `{key}` — {entry.get('attempts', '?')} attempts, faults: {faults}"
            )
    lines.append("")
    return "\n".join(lines)


def _nat_indegree_section(groups: Mapping) -> List[str]:
    """The symmetric-NAT underrepresentation section of the matrix summary.

    Rendered for every group whose cells recorded the per-NAT-class in-degree
    breakdown (``indeg_mean_<class>`` — mixture populations and the ``nat_indegree``
    kind): one row per NAT class with its mean in-degree relative to public nodes,
    which is the paper's claim that hard-to-traverse NAT types are underrepresented
    in views. Groups without the breakdown render nothing, keeping legacy summaries
    unchanged.
    """
    rows: List[List[object]] = []
    for group_name, metrics in groups.items():
        class_means = {
            name[len("indeg_mean_"):]: summary["mean"]
            for name, summary in metrics.items()
            if name.startswith("indeg_mean_")
        }
        public = class_means.get("public")
        if not public or len(class_means) < 2:
            continue
        for label in sorted(class_means):
            rows.append(
                [
                    f"`{group_name}`",
                    label,
                    _fmt(class_means[label]),
                    f"{class_means[label] / public:.2f}×",
                ]
            )
    if not rows:
        return []
    lines = [
        "",
        "## NAT-class in-degree (symmetric-NAT underrepresentation)",
        "",
        "| group | NAT class | mean in-degree | vs public |",
        "|---|---|---|---|",
    ]
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |" for row in rows)
    return lines


def _scale_invariance_section(groups: Mapping) -> List[str]:
    """The scale-invariance section of the matrix summary: ω̂ error vs N.

    Rendered only when the aggregate contains groups of the ``scale`` scenario
    kind (the 10⁵⁺-node columnar cells): one row per group ordered by system
    size, so the paper's claim — estimation error does not degrade with N —
    reads straight down the table. Aggregates without scale cells render
    nothing, keeping legacy summaries byte-identical.
    """
    rows: List[tuple] = []
    for group_name, metrics in groups.items():
        parts = dict(
            part.split("=", 1) for part in group_name.split(";") if "=" in part
        )
        if parts.get("scenario") != "scale":
            continue
        try:
            size = int(parts.get("size", "0"))
        except ValueError:
            size = 0
        avg = metrics.get("est_err_avg_final")
        max_ = metrics.get("est_err_max_final")
        measured = metrics.get("est_nodes_measured")
        rows.append(
            (
                size,
                group_name,
                parts.get("engine", "object"),
                _fmt(avg["mean"]) if avg else "-",
                _fmt(max_["mean"]) if max_ else "-",
                f"{measured['mean']:.0f}" if measured else "-",
            )
        )
    if not rows:
        return []
    lines = [
        "",
        "## Scale invariance (ω̂ error vs N)",
        "",
        "| group | engine | N | ω̂ err (avg) | ω̂ err (max) | nodes measured |",
        "|---|---|---|---|---|---|",
    ]
    for size, group_name, engine, avg, max_, measured in sorted(rows):
        lines.append(
            f"| `{group_name}` | {engine} | {size} | {avg} | {max_} | {measured} |"
        )
    return lines


def comparison_rows(values: Dict[str, Dict[str, float]]) -> List[List[object]]:
    """Flatten ``{row_label: {column: value}}`` into table rows with stable ordering."""
    columns = sorted({c for row in values.values() for c in row})
    rows: List[List[object]] = []
    for label in values:
        rows.append([label] + [values[label].get(column) for column in columns])
    return rows


# ------------------------------------------------------------------ aggregate diffing

#: Metrics where a higher value in the new aggregate is a regression (error, cost and
#: stretch metrics — everything the paper wants small).
LOWER_IS_BETTER = frozenset(
    {
        "est_err_avg_final",
        "est_err_max_final",
        "est_err_avg_p50",
        "est_err_avg_p90",
        "path_length",
        "clustering",
        "indeg_stddev",
        "indeg_max",
        "public_bps",
        "private_bps",
        "all_bps",
    }
)

#: Metrics where a lower value in the new aggregate is a regression (connectivity and
#: survival — everything the paper wants large).
HIGHER_IS_BETTER = frozenset({"biggest_cluster_fraction", "live_nodes", "survivors"})


def ks_distance(
    old: Mapping[int, int],
    new: Mapping[int, int],
) -> float:
    """Kolmogorov–Smirnov distance between two integer-bin histograms.

    Both histograms are read as empirical distributions (bin → count, normalised by
    their totals); the distance is the maximum absolute difference of the two CDFs
    over the union of bins — 0.0 for identical shapes, 1.0 for disjoint supports.
    Bin keys may be ints or the strings the aggregate JSON stores them as.
    """
    old_counts = {int(bin_): count for bin_, count in old.items()}
    new_counts = {int(bin_): count for bin_, count in new.items()}
    old_total = float(sum(old_counts.values()))
    new_total = float(sum(new_counts.values()))
    if old_total == 0.0 or new_total == 0.0:
        return 0.0 if old_total == new_total else 1.0
    distance = 0.0
    cdf_old = 0.0
    cdf_new = 0.0
    for bin_ in sorted(set(old_counts) | set(new_counts)):
        cdf_old += old_counts.get(bin_, 0) / old_total
        cdf_new += new_counts.get(bin_, 0) / new_total
        gap = abs(cdf_old - cdf_new)
        if gap > distance:
            distance = gap
    return distance


@dataclass
class MetricChange:
    """One per-group metric whose mean moved beyond the diff tolerance."""

    group: str
    metric: str
    old_mean: float
    new_mean: float
    rel_change: float  # signed, relative to max(|old|, |new|)

    @property
    def direction(self) -> str:
        """``"worse"``/``"better"`` for oriented metrics, ``"changed"`` otherwise."""
        higher = self.new_mean > self.old_mean
        if self.metric in LOWER_IS_BETTER:
            return "worse" if higher else "better"
        if self.metric in HIGHER_IS_BETTER:
            return "better" if higher else "worse"
        return "changed"


@dataclass
class HistogramChange:
    """One per-group histogram whose shape moved (Kolmogorov–Smirnov distance > 0)."""

    group: str
    name: str
    distance: float
    old_samples: int
    new_samples: int
    gates: bool  # True when the distance exceeds the KS tolerance

    @property
    def verdict(self) -> str:
        return "drifted" if self.gates else "within-tolerance"


@dataclass
class AggregateDiff:
    """The comparison of two matrix aggregates (``repro report --diff OLD NEW``)."""

    tolerance: float
    ks_tolerance: float = 0.1
    changes: List[MetricChange] = dataclass_field(default_factory=list)
    missing_groups: List[str] = dataclass_field(default_factory=list)
    added_groups: List[str] = dataclass_field(default_factory=list)
    #: ``"group/metric"`` entries present in OLD but absent from NEW (shared groups).
    missing_metrics: List[str] = dataclass_field(default_factory=list)
    newly_failed_cells: List[str] = dataclass_field(default_factory=list)
    recovered_cells: List[str] = dataclass_field(default_factory=list)
    #: Every compared group histogram with a non-zero KS distance (gating or not).
    histogram_changes: List[HistogramChange] = dataclass_field(default_factory=list)
    #: ``"group/histogram"`` entries present in OLD but absent from NEW (shared groups).
    missing_histograms: List[str] = dataclass_field(default_factory=list)

    @property
    def regressions(self) -> List[MetricChange]:
        return [c for c in self.changes if c.direction == "worse"]

    @property
    def improvements(self) -> List[MetricChange]:
        return [c for c in self.changes if c.direction == "better"]

    @property
    def missing_gated_metrics(self) -> List[str]:
        """Disappeared metrics that the gate actually watches (oriented ones) — a
        vanished error metric must fail the gate, not slip past the intersection."""
        return [
            entry
            for entry in self.missing_metrics
            if entry.rsplit("/", 1)[-1] in LOWER_IS_BETTER | HIGHER_IS_BETTER
        ]

    @property
    def histogram_regressions(self) -> List[HistogramChange]:
        """Histogram drifts beyond the KS tolerance — randomness regressions gate."""
        return [c for c in self.histogram_changes if c.gates]

    @property
    def has_regressions(self) -> bool:
        """Metric regressions, disappeared groups/metrics/histograms, histogram
        drifts beyond the KS tolerance or newly failing cells all count."""
        return bool(
            self.regressions
            or self.missing_groups
            or self.missing_gated_metrics
            or self.newly_failed_cells
            or self.histogram_regressions
            or self.missing_histograms
        )

    def to_text(self) -> str:
        lines = [
            f"aggregate diff (tolerance: {self.tolerance:.1%} relative change of group "
            f"means; KS tolerance: {self.ks_tolerance:.2f} on group histograms)"
        ]
        if not (self.changes or self.missing_groups or self.added_groups
                or self.missing_metrics or self.newly_failed_cells
                or self.recovered_cells or self.histogram_changes
                or self.missing_histograms):
            lines.append("no differences beyond tolerance")
            return "\n".join(lines)
        if self.changes:
            rows = [
                [c.direction, c.group, c.metric, c.old_mean, c.new_mean,
                 f"{c.rel_change:+.1%}"]
                for c in sorted(
                    self.changes,
                    key=lambda c: (c.direction != "worse", c.group, c.metric),
                )
            ]
            lines.append(
                format_table(
                    ["verdict", "group", "metric", "old mean", "new mean", "change"],
                    rows,
                )
            )
        if self.histogram_changes:
            rows = [
                [c.verdict, c.group, c.name, f"{c.distance:.4f}",
                 c.old_samples, c.new_samples]
                for c in sorted(
                    self.histogram_changes,
                    key=lambda c: (-c.distance, c.group, c.name),
                )
            ]
            lines.append(
                format_table(
                    ["verdict", "group", "histogram", "KS distance",
                     "old n", "new n"],
                    rows,
                    title="histogram shapes (Kolmogorov–Smirnov distance of CDFs):",
                )
            )
        for label, keys in (
            ("groups only in OLD", self.missing_groups),
            ("groups only in NEW", self.added_groups),
            ("metrics missing from NEW (gated ones regress)", self.missing_metrics),
            ("histograms missing from NEW (regress)", self.missing_histograms),
            ("cells newly failing in NEW", self.newly_failed_cells),
            ("cells recovered in NEW", self.recovered_cells),
        ):
            if keys:
                lines.append(f"{label}:")
                lines.extend(f"  - {key}" for key in keys)
        lines.append(
            f"summary: {len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.changes) - len(self.regressions) - len(self.improvements)} "
            f"neutral change(s), {len(self.histogram_regressions)} histogram drift(s) "
            f"beyond KS tolerance"
        )
        return "\n".join(lines)


def diff_aggregates(
    old: Mapping,
    new: Mapping,
    tolerance: float = 0.05,
    ks_tolerance: float = 0.1,
) -> AggregateDiff:
    """Compare two matrix aggregates group by group, metric by metric.

    A metric *changed* when the relative difference of its group means exceeds
    ``tolerance`` (relative to the larger magnitude, with a 1e-9 absolute floor so
    exactly-zero error metrics don't flag on noise-free reruns). Whether a change is a
    *regression* follows the metric's orientation (:data:`LOWER_IS_BETTER` /
    :data:`HIGHER_IS_BETTER`); unoriented metrics are reported but never gate.

    Histogram payloads gate too: every ``group_histograms`` entry the aggregates
    share is compared by :func:`ks_distance` (e.g. the per-group in-degree
    distributions — the paper's randomness evidence). Non-zero distances are
    reported; distances beyond ``ks_tolerance``, and histograms that disappeared
    from NEW, count as regressions.

    Diffing an aggregate against itself reports nothing and never regresses — CI
    exercises exactly that invariant via the committed baseline.
    """
    old_groups = old.get("groups", {})
    new_groups = new.get("groups", {})
    diff = AggregateDiff(tolerance=tolerance, ks_tolerance=ks_tolerance)
    diff.missing_groups = sorted(set(old_groups) - set(new_groups))
    diff.added_groups = sorted(set(new_groups) - set(old_groups))

    for group in sorted(set(old_groups) & set(new_groups)):
        old_metrics = old_groups[group]
        new_metrics = new_groups[group]
        diff.missing_metrics.extend(
            f"{group}/{metric}" for metric in sorted(set(old_metrics) - set(new_metrics))
        )
        for metric in sorted(set(old_metrics) & set(new_metrics)):
            old_mean = float(old_metrics[metric]["mean"])
            new_mean = float(new_metrics[metric]["mean"])
            delta = new_mean - old_mean
            scale = max(abs(old_mean), abs(new_mean))
            if abs(delta) <= 1e-9 or scale == 0.0 or abs(delta) <= tolerance * scale:
                continue
            diff.changes.append(
                MetricChange(
                    group=group,
                    metric=metric,
                    old_mean=old_mean,
                    new_mean=new_mean,
                    rel_change=delta / scale,
                )
            )

    old_histograms = old.get("group_histograms", {})
    new_histograms = new.get("group_histograms", {})
    for group in sorted(set(old_histograms) & set(new_histograms)):
        old_named = old_histograms[group]
        new_named = new_histograms[group]
        diff.missing_histograms.extend(
            f"{group}/{name}" for name in sorted(set(old_named) - set(new_named))
        )
        for name in sorted(set(old_named) & set(new_named)):
            distance = ks_distance(old_named[name], new_named[name])
            if distance <= 0.0:
                continue
            diff.histogram_changes.append(
                HistogramChange(
                    group=group,
                    name=name,
                    distance=distance,
                    old_samples=int(sum(old_named[name].values())),
                    new_samples=int(sum(new_named[name].values())),
                    gates=distance > ks_tolerance,
                )
            )
    diff.missing_histograms.extend(
        f"{group}/{name}"
        for group in sorted(set(old_histograms) - set(new_histograms))
        if group in new_groups  # a disappeared *group* is already reported above
        for name in sorted(old_histograms[group])
    )

    # Degraded cells (transient-fault retries exhausted) count as failed for gating:
    # either way the cell contributed no data to NEW that OLD had.
    old_failed = set(old.get("failed", [])) | set(old.get("degraded", {}))
    new_failed = set(new.get("failed", [])) | set(new.get("degraded", {}))
    diff.newly_failed_cells = sorted(new_failed - old_failed)
    diff.recovered_cells = sorted(old_failed - new_failed)
    return diff
