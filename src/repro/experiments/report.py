"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; this module prints the same series as
aligned text tables so that running a benchmark or an example reproduces the numbers in
a terminal (EXPERIMENTS.md contains the archived outputs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.collector import TimeSeries
from repro.metrics.estimation import EstimationErrorSeries


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a simple aligned text table."""
    rendered_rows: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and abs(value) < 0.01:
            return f"{value:.5f}"
        return f"{value:.4f}" if abs(value) < 100 else f"{value:.1f}"
    return str(value)


def error_series_table(
    series_list: Sequence[EstimationErrorSeries],
    metric: str = "avg",
    every: int = 10,
    title: Optional[str] = None,
) -> str:
    """Tabulate several error series side by side (one column per plotted line).

    Parameters
    ----------
    metric:
        ``"avg"`` or ``"max"`` — which error metric to print.
    every:
        Print every N-th sample to keep the table readable.
    """
    headers = ["t (s)"] + [s.name for s in series_list]
    rows: List[List[object]] = []
    length = max((len(s.samples) for s in series_list), default=0)
    for index in range(0, length, max(1, every)):
        row: List[object] = []
        time_value: Optional[float] = None
        for series in series_list:
            if index < len(series.samples):
                sample = series.samples[index]
                time_value = sample.time_ms / 1000.0
                row.append(sample.avg_error if metric == "avg" else sample.max_error)
            else:
                row.append(None)
        rows.append([time_value] + row)
    return format_table(headers, rows, title=title)


def error_summary_table(
    series_list: Sequence[EstimationErrorSeries],
    title: Optional[str] = None,
) -> str:
    """One row per series: converged average and maximum error (tail means)."""
    headers = ["series", "final avg error", "final max error", "samples"]
    rows = [
        [s.name, s.final_avg_error(), s.final_max_error(), len(s)]
        for s in series_list
    ]
    return format_table(headers, rows, title=title)


def time_series_table(
    series_list: Sequence[TimeSeries],
    every: int = 10,
    title: Optional[str] = None,
) -> str:
    """Tabulate generic time series (path length, clustering coefficient, ...)."""
    headers = ["t (s)"] + [s.name for s in series_list]
    rows: List[List[object]] = []
    length = max((len(s) for s in series_list), default=0)
    for index in range(0, length, max(1, every)):
        row: List[object] = []
        time_value: Optional[float] = None
        for series in series_list:
            if index < len(series.values):
                time_value = series.times[index] / 1000.0
                row.append(series.values[index])
            else:
                row.append(None)
        rows.append([time_value] + row)
    return format_table(headers, rows, title=title)


def histogram_table(
    histograms: Mapping[str, Mapping[int, int]],
    title: Optional[str] = None,
) -> str:
    """Tabulate in-degree histograms, one column per protocol (Figure 6a)."""
    all_degrees = sorted({d for h in histograms.values() for d in h})
    headers = ["in-degree"] + list(histograms)
    rows: List[List[object]] = []
    for degree in all_degrees:
        rows.append([degree] + [histograms[name].get(degree, 0) for name in histograms])
    return format_table(headers, rows, title=title)


def key_value_table(
    pairs: Sequence[Tuple[str, object]],
    title: Optional[str] = None,
) -> str:
    """Two-column key/value table used by the overhead and failure reports."""
    return format_table(["metric", "value"], [[k, v] for k, v in pairs], title=title)


def matrix_markdown_summary(aggregate: Mapping) -> str:
    """Render a matrix aggregate (see :mod:`repro.experiments.runner`) as markdown.

    One row per cell group (seeds collapsed), with the headline metrics the paper's
    figures plot; failed cells get their own section so CI logs surface them.
    """
    spec = aggregate.get("spec", {})
    groups = aggregate.get("groups", {})
    failed = aggregate.get("failed", [])
    total_cells = len(aggregate.get("cells", {}))

    headline = (
        ("est_err_avg_final", "ω̂ err (avg)"),
        ("est_err_max_final", "ω̂ err (max)"),
        ("biggest_cluster_fraction", "biggest cluster"),
        ("path_length", "path len"),
        ("all_bps", "all B/s"),
    )
    lines = [
        "# Experiment matrix summary",
        "",
        f"- scenarios: `{', '.join(spec.get('scenarios', []))}`"
        f" (variants: {spec.get('variants', 'default')})",
        f"- protocols: `{', '.join(spec.get('protocols', []))}`",
        f"- sizes: {', '.join(str(s) for s in spec.get('sizes', []))}"
        f" × seeds: {spec.get('seeds', '?')} × rounds: {spec.get('rounds', '?')}",
        f"- root seed: {spec.get('root_seed', '?')}, latency: {spec.get('latency', '?')}",
        f"- cells: {total_cells} total, {len(failed)} failed",
        "",
        "## Groups (mean over seeds)",
        "",
        "| group | cells | " + " | ".join(label for _, label in headline) + " |",
        "|" + "---|" * (2 + len(headline)),
    ]
    for group_name, metrics in groups.items():
        count = 0
        for summary in metrics.values():
            count = max(count, int(summary.get("count", 0)))
        row = [f"`{group_name}`", str(count)]
        for metric, _label in headline:
            summary = metrics.get(metric)
            row.append(_fmt(summary["mean"]) if summary else "-")
        lines.append("| " + " | ".join(row) + " |")

    if failed:
        lines.extend(["", "## Failed cells", ""])
        lines.extend(f"- `{key}`" for key in failed)
    lines.append("")
    return "\n".join(lines)


def comparison_rows(values: Dict[str, Dict[str, float]]) -> List[List[object]]:
    """Flatten ``{row_label: {column: value}}`` into table rows with stable ordering."""
    columns = sorted({c for row in values.values() for c in row})
    rows: List[List[object]] = []
    for label in values:
        rows.append([label] + [values[label].get(column) for column in columns])
    return rows
