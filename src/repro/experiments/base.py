"""Shared machinery for the estimation experiments (Figures 1–5).

All of those figures measure the same two quantities — the average and the maximum
estimation error across nodes, sampled once per gossip round — under different
workloads. Workload dynamics are expressed as a declarative
:class:`~repro.workload.timeline.Timeline`: :func:`estimation_timeline` translates an
experiment's knobs (Poisson join ramps, churn, ratio growth) into typed workload
events, and :func:`run_estimation_scenario` installs that timeline on a Croupier
scenario and records an :class:`~repro.metrics.estimation.EstimationErrorSeries`
round by round.

This module also hosts the generic *matrix cell* runner: the experiment-matrix layer
(:mod:`~repro.experiments.matrix`) executes grids of (protocol, scenario, size, seed)
cells, and the estimation-style scenario kinds (``static``, ``join``, ``ratio``,
``churn``, ``history``, ``overhead``) all share :func:`run_estimation_cell`, which
compiles the cell's params — plus the cell's ``--timelines`` axis value — into one
installed timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.config import CroupierConfig
from repro.errors import ExperimentError
from repro.experiments.matrix import CellContext, measure_cell, register_scenario
from repro.metrics.estimation import EstimationErrorSeries
from repro.metrics.payload import MetricPayload
from repro.metrics.probes import collect_ratio_estimates
from repro.workload.events import ChurnPhase, PoissonJoin, RatioGrowth
from repro.workload.scenario import Scenario, ScenarioConfig, create_scenario
from repro.workload.timeline import Timeline


@dataclass
class EstimationExperimentSpec:
    """Everything that defines one estimation run (one plotted line).

    Attributes
    ----------
    label:
        Name of the plotted line (e.g. ``"α=25, γ=50"``).
    n_public / n_private:
        Population sizes after all joins complete.
    alpha / gamma:
        Croupier's history-window parameters.
    rounds:
        How many gossip rounds to simulate (and measure).
    seed:
        Master seed of the run.
    public_interarrival_ms / private_interarrival_ms:
        Mean inter-arrival times of the Poisson join processes. ``None`` for either
        means the corresponding population is created instantly at t=0.
    churn_fraction / churn_start_round:
        Steady-state churn, as a per-round replacement fraction, starting at the given
        round (Figure 5 starts churn at t=61).
    ratio_growth_*:
        Optional dynamic-ratio schedule (Figure 2): starting at ``ratio_growth_start_round``
        add ``ratio_growth_count`` public nodes, one every ``ratio_growth_interval_ms``.
    latency:
        Latency model name passed to the scenario ("king", "constant", "uniform").
    measure_every_rounds:
        Sampling cadence of the error series (1 = every round, as in the paper).
    """

    label: str
    n_public: int
    n_private: int
    alpha: int = 25
    gamma: int = 50
    rounds: int = 150
    seed: int = 42
    public_interarrival_ms: Optional[float] = None
    private_interarrival_ms: Optional[float] = None
    churn_fraction: float = 0.0
    churn_start_round: int = 0
    ratio_growth_start_round: Optional[int] = None
    ratio_growth_interval_ms: float = 42.0
    ratio_growth_count: int = 0
    latency: str = "king"
    measure_every_rounds: int = 1
    view_size: int = 10
    shuffle_size: int = 5

    def validate(self) -> None:
        if self.n_public <= 0:
            raise ExperimentError("n_public must be positive (Croupier needs croupiers)")
        if self.n_private < 0:
            raise ExperimentError("n_private must be non-negative")
        if self.rounds <= 0:
            raise ExperimentError("rounds must be positive")
        if self.measure_every_rounds <= 0:
            raise ExperimentError("measure_every_rounds must be positive")


@dataclass
class EstimationRun:
    """The outcome of one estimation run: the error series plus scenario bookkeeping."""

    spec: EstimationExperimentSpec
    series: EstimationErrorSeries
    final_true_ratio: float
    live_nodes: int
    summary: Dict[str, float] = field(default_factory=dict)


def estimation_timeline(
    n_public: int,
    n_private: int,
    public_interarrival_ms: Optional[float] = None,
    private_interarrival_ms: Optional[float] = None,
    churn_fraction: float = 0.0,
    churn_start_round: float = 0.0,
    ratio_growth_start_round: Optional[float] = None,
    ratio_growth_interval_ms: float = 42.0,
    ratio_growth_count: int = 0,
) -> Timeline:
    """The estimation experiments' dynamics as a declarative timeline.

    Event order mirrors the order the imperative harnesses constructed their
    processes in (public join, private join, churn, ratio growth), so installing
    the timeline schedules bit-identically to the pre-timeline code. Joins are only
    part of the timeline when an inter-arrival time is given — instant population
    stays a :meth:`~repro.workload.Scenario.populate` call, outside the dynamics.
    """
    events = []
    if public_interarrival_ms is not None or private_interarrival_ms is not None:
        events.append(PoissonJoin(
            public=True,
            count=n_public,
            mean_interarrival_ms=public_interarrival_ms or 1.0,
        ))
        if n_private > 0:
            events.append(PoissonJoin(
                public=False,
                count=n_private,
                mean_interarrival_ms=private_interarrival_ms or 1.0,
            ))
    if churn_fraction > 0.0:
        events.append(ChurnPhase(
            fraction_per_round=churn_fraction,
            start_round=float(churn_start_round),
        ))
    if ratio_growth_start_round is not None and ratio_growth_count > 0:
        events.append(RatioGrowth(
            count=ratio_growth_count,
            start_round=float(ratio_growth_start_round),
            interval_ms=ratio_growth_interval_ms,
        ))
    return Timeline(tuple(events))


def run_estimation_scenario(spec: EstimationExperimentSpec) -> EstimationRun:
    """Run one Croupier scenario under ``spec`` and record the error series round by round."""
    spec.validate()
    config = CroupierConfig(
        view_size=spec.view_size,
        shuffle_size=spec.shuffle_size,
        local_history_alpha=spec.alpha,
        neighbour_history_gamma=spec.gamma,
    )
    scenario = Scenario(
        ScenarioConfig(
            protocol="croupier",
            seed=spec.seed,
            pss_config=config,
            latency=spec.latency,
        )
    )

    # --- population & dynamics (as one declarative timeline) ---------------------
    instant = spec.public_interarrival_ms is None and spec.private_interarrival_ms is None
    if instant:
        scenario.populate(spec.n_public, spec.n_private)
    timeline = estimation_timeline(
        n_public=spec.n_public,
        n_private=spec.n_private,
        public_interarrival_ms=None if instant else spec.public_interarrival_ms,
        private_interarrival_ms=None if instant else spec.private_interarrival_ms,
        churn_fraction=spec.churn_fraction,
        churn_start_round=spec.churn_start_round,
        ratio_growth_start_round=spec.ratio_growth_start_round,
        ratio_growth_interval_ms=spec.ratio_growth_interval_ms,
        ratio_growth_count=spec.ratio_growth_count,
    )
    installed = timeline.install(scenario, horizon_rounds=spec.rounds)

    # --- measurement loop -------------------------------------------------------
    series = EstimationErrorSeries(name=spec.label)
    for round_index in range(1, spec.rounds + 1):
        installed.advance_rounds(1)
        if round_index % spec.measure_every_rounds != 0:
            continue
        true_ratio = scenario.true_ratio()
        estimates = collect_ratio_estimates(scenario, min_rounds=2)
        series.record(scenario.now, true_ratio, estimates)

    return EstimationRun(
        spec=spec,
        series=series,
        final_true_ratio=scenario.true_ratio(),
        live_nodes=scenario.live_count(),
        summary={
            "final_avg_error": series.final_avg_error() or 0.0,
            "final_max_error": series.final_max_error() or 0.0,
        },
    )


# ---------------------------------------------------------------------- matrix cells


def run_estimation_cell(ctx: CellContext) -> MetricPayload:
    """Execute one estimation-style matrix cell and return its metric payload.

    Cell params understood (all optional):

    ``join_window_ms``
        If set, both node classes join over this window following Poisson processes
        (the Figure 1–5 transient) instead of being created instantly at t=0.
    ``churn_fraction`` / ``churn_start_round``
        Steady-state churn as in Figure 5.
    ``alpha`` / ``gamma``
        Croupier's history windows — the Figure 1/2 sweep (the ``history`` scenario
        kind drives these).
    ``croupier_gamma`` / ``max_estimates``
        Croupier history/piggyback overrides (the Figure 7a configuration;
        ``croupier_gamma`` is the pre-payload spelling of ``gamma``).
    ``ratio_growth_start_round`` / ``ratio_growth_count`` / ``ratio_growth_interval_ms``
        The Figure 2 dynamic-ratio schedule: starting at the given round, add public
        nodes one every ``interval_ms``.

    Every cell measures the full standard probe set (:func:`~repro.experiments.matrix.
    measure_cell`) plus per-class traffic load over the second half of the run. The
    Croupier-specific config params are ignored for protocols without a matching
    configuration, exactly like the scenario's capability-gated probes.

    The params compile into a declarative :class:`~repro.workload.Timeline` (via
    :func:`cell_timeline`), extended with the events of the cell's ``--timelines``
    axis value; boundary events (failure spikes) fire between rounds of the
    measurement loop.
    """
    cell = ctx.cell
    pss_config = None
    if cell.protocol == "croupier":
        alpha = cell.param("alpha")
        gamma = cell.param("gamma", cell.param("croupier_gamma"))
        max_estimates = cell.param("max_estimates")
        if alpha is not None or gamma is not None or max_estimates is not None:
            pss_config = ctx.pss_config_for(
                ("croupier-config", alpha, gamma, max_estimates),
                lambda: CroupierConfig(
                    local_history_alpha=int(alpha) if alpha is not None else 25,
                    neighbour_history_gamma=int(gamma) if gamma is not None else 50,
                    max_estimates_per_message=(
                        int(max_estimates) if max_estimates is not None else 10
                    ),
                ),
            )

    n_public, n_private = ctx.n_public, ctx.n_private
    timeline = cell_timeline(ctx)
    if cell.param("join_window_ms"):
        # The join transient is part of the timeline; the scenario starts empty.
        scenario = create_scenario(ctx.scenario_config(pss_config=pss_config))
    else:
        scenario = ctx.populated_scenario(n_public, n_private, pss_config=pss_config)
    installed = ctx.install_timeline(scenario, base=timeline)

    series = EstimationErrorSeries(name=cell.key)
    overhead_window_start = None
    half = max(1, cell.rounds // 2)
    for round_index in range(1, cell.rounds + 1):
        installed.advance_rounds(1)
        series.record(
            scenario.now,
            scenario.true_ratio(),
            collect_ratio_estimates(scenario, min_rounds=2),
        )
        if round_index == half:
            overhead_window_start = scenario.traffic_snapshot()

    return measure_cell(scenario, series, overhead_window=overhead_window_start)


def cell_timeline(ctx: CellContext) -> Timeline:
    """Compile an estimation-style cell's params into its base timeline.

    The translation the table in :func:`run_estimation_cell` documents:
    ``join_window_ms`` becomes two :class:`~repro.workload.PoissonJoin` events,
    ``churn_*`` a :class:`~repro.workload.ChurnPhase`, ``ratio_growth_*`` a
    :class:`~repro.workload.RatioGrowth` — in exactly the construction order of the
    pre-timeline imperative code, so legacy cells replay bit-for-bit.
    """
    cell = ctx.cell
    churn_fraction = float(cell.param("churn_fraction", 0.0))
    churn_start_round = int(cell.param("churn_start_round", 0))
    if churn_fraction > 0.0 and churn_start_round >= cell.rounds:
        # A churn onset past the simulated horizon would silently measure a static
        # system under a churn label; fail the cell instead.
        raise ExperimentError(
            f"churn_start_round={churn_start_round} is beyond the cell's "
            f"rounds={cell.rounds}; raise --rounds (the paper starts churn at t=61)"
        )
    join_window_ms = cell.param("join_window_ms")
    growth_count = int(cell.param("ratio_growth_count", 0))
    return estimation_timeline(
        n_public=ctx.n_public,
        n_private=ctx.n_private,
        public_interarrival_ms=(
            float(join_window_ms) / max(1, ctx.n_public) if join_window_ms else None
        ),
        private_interarrival_ms=(
            float(join_window_ms) / max(1, ctx.n_private) if join_window_ms else None
        ),
        churn_fraction=churn_fraction,
        churn_start_round=churn_start_round,
        ratio_growth_start_round=(
            float(cell.param("ratio_growth_start_round", 0)) if growth_count > 0 else None
        ),
        ratio_growth_interval_ms=float(cell.param("ratio_growth_interval_ms", 42.0)),
        ratio_growth_count=growth_count,
    )


register_scenario(
    "static",
    run_estimation_cell,
    description="instant population, constant public/private ratio (the baseline grid cell)",
)
