"""Figure 7(b): connectivity after catastrophic failure.

A large fraction of nodes (40–90 %) is killed at a single instant; the metric is the
size of the biggest connected cluster among the survivors (as a percentage of the
survivors). The paper runs this with 80 % private nodes and finds Croupier far more
resilient than Gozar and Nylon — e.g. at 90 % failures Croupier's biggest cluster still
covers more than 85 % of the surviving nodes versus roughly 55 % for the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.experiments.matrix import CellContext, measure_cell, register_scenario
from repro.experiments.report import format_table
from repro.workload.events import FailureSpike
from repro.workload.scenario import Scenario, ScenarioConfig
from repro.workload.timeline import Timeline

#: Failure percentages on the x-axis of Figure 7(b).
PAPER_FAILURE_FRACTIONS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9)

#: Protocols compared in Figure 7(b).
PAPER_PROTOCOLS = ("croupier", "gozar", "nylon", "cyclon")


def run_failure_cell(ctx: CellContext) -> Dict[str, float]:
    """One Figure 7(b) matrix cell: warm up, kill a fraction of all nodes, measure.

    The cell's ``rounds`` are the warm-up; its dynamics are a one-event timeline — a
    :class:`~repro.workload.FailureSpike` at the final round boundary — so the
    connectivity of the surviving overlay is measured immediately after the failure,
    exactly as the paper does (and exactly as the pre-timeline imperative cell did).
    """
    cell = ctx.cell
    fraction = float(cell.param("failure_fraction", 0.5))
    spike = FailureSpike(at_round=float(cell.rounds), fraction=fraction)
    scenario = ctx.populated_scenario()
    installed = ctx.install_timeline(scenario, base=Timeline((spike,)))
    installed.advance_rounds(cell.rounds)
    outcome = installed.outcome_of(spike)
    payload = measure_cell(scenario)
    payload.set_scalar("failure_fraction", fraction)
    payload.set_scalar("survivors", float(outcome.survivors))
    payload.set_scalar("biggest_cluster_fraction", outcome.biggest_cluster_fraction)
    return payload


register_scenario(
    "failure",
    run_failure_cell,
    description="catastrophic failure: kill a fraction of all nodes at one instant (Figure 7b)",
    default_params={"failure_fraction": 0.5},
    paper_variants=[{"failure_fraction": f} for f in PAPER_FAILURE_FRACTIONS],
)


@dataclass
class FailureExperimentResult:
    """Biggest-cluster fraction per protocol and failure level."""

    total_nodes: int
    private_ratio: float
    warmup_rounds: int
    #: protocol -> {failure_fraction -> biggest-cluster fraction of survivors}
    clusters: Dict[str, Dict[float, float]] = field(default_factory=dict)

    def cluster_at(self, protocol: str, failure_fraction: float) -> float:
        return self.clusters[protocol][failure_fraction]

    def to_text(self) -> str:
        fractions = sorted({f for per in self.clusters.values() for f in per})
        rows = []
        for protocol, per_fraction in self.clusters.items():
            rows.append(
                [protocol]
                + [round(100.0 * per_fraction.get(f, 0.0), 1) for f in fractions]
            )
        headers = ["protocol"] + [f"{int(f * 100)}% fail" for f in fractions]
        return format_table(
            headers, rows, title="Figure 7(b): biggest cluster size (% of survivors)"
        )


def run_failure_experiment(
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    failure_fractions: Sequence[float] = PAPER_FAILURE_FRACTIONS,
    total_nodes: int = 1000,
    private_ratio: float = 0.8,
    warmup_rounds: int = 100,
    seed: int = 42,
    latency: str = "king",
) -> FailureExperimentResult:
    """Reproduce Figure 7(b).

    Failures are destructive, so fractions cannot share a *run* — but they share the
    entire build-and-warm-up prefix (same seed, same population): each protocol is
    populated and warmed exactly once, and every failure level is a one-event
    timeline suffix (:class:`~repro.workload.FailureSpike`) installed on a
    :meth:`~repro.workload.Scenario.clone` of that warmed system. The clone carries
    the full simulator state, so the outcome per fraction is bit-identical to the
    previous rebuild-per-fraction approach while paying the warm-up once instead of
    once per fraction. As in the paper, Cyclon's scenario uses only public nodes.
    """
    result = FailureExperimentResult(
        total_nodes=total_nodes,
        private_ratio=private_ratio,
        warmup_rounds=warmup_rounds,
    )
    for protocol in protocols:
        if protocol == "cyclon":
            n_public, n_private = total_nodes, 0
        else:
            n_private = int(round(total_nodes * private_ratio))
            n_public = total_nodes - n_private
        warmed = Scenario(ScenarioConfig(protocol=protocol, seed=seed, latency=latency))
        warmed.populate(n_public=n_public, n_private=n_private)
        warmed.run_rounds(warmup_rounds)
        per_fraction: Dict[float, float] = {}
        for fraction in failure_fractions:
            scenario = warmed.clone()
            spike = FailureSpike(at_round=float(warmup_rounds), fraction=fraction)
            installed = Timeline((spike,)).install(scenario)
            installed.fire_boundary(warmup_rounds)
            per_fraction[fraction] = installed.outcome_of(spike).biggest_cluster_fraction
        result.clusters[protocol] = per_fraction
    return result
