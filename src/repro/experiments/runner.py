"""Fault-tolerant sharded multiprocess execution of experiment matrices.

:func:`run_matrix` expands a :class:`~repro.experiments.matrix.MatrixSpec` into cells
and executes them either in-process (``workers=1``) or on a pool of *managed* worker
processes — one persistent process per worker slot, one cell per dispatch (shard
granularity 1, so workers stay load-balanced however uneven the cells are), with the
parent tracking exactly which cell every worker holds. That ownership tracking is what
makes the runner fault-tolerant where a ``multiprocessing.Pool`` would hang:

* **Failure classification.** An exception raised *inside* a cell runner is a
  deterministic failure — it would reproduce identically on every attempt — and is
  recorded as a ``failed`` cell, never retried. A worker that dies without returning
  (``crash``), exceeds its wall-clock budget (``timeout``, enforced by the parent's
  watchdog, which kills the worker) or returns a payload failing its integrity digest
  (``corruption``) is a *transient worker fault*: the cell is retried on a fresh
  worker with capped exponential backoff and seed-derived jitter
  (:class:`~repro.experiments.faults.RetryPolicy`).
* **Graceful degradation.** A cell that exhausts its retry budget becomes a
  ``degraded`` result carrying its attempt and fault history; the aggregate gains a
  ``degraded`` section (only when non-empty, so fault-free aggregates are unchanged
  byte for byte) and ``repro report --strict`` gates on it.
* **Checkpoint/resume.** With a journal path, every terminal cell is appended to a
  JSONL journal (:mod:`~repro.experiments.checkpoint`) as it completes;
  ``resume_from`` replays journalled cells instead of re-running them.
* **Chaos.** A :class:`~repro.experiments.faults.FaultPlan` injects seed-derived
  crashes, hangs and corruptions so all of the above is itself testable — CI runs a
  chaos mini-matrix and byte-compares its aggregate against the fault-free baseline.

Determinism contract: the aggregate produced by :func:`aggregate_json_bytes` is
byte-identical for the same spec regardless of worker count, retries, resume or
injected faults (as long as every cell ends ``ok``), because cell results are pure
functions of the root seed and cell key, results are re-sorted into spec order,
wall-clock times and pids are kept out of the aggregate, and the JSON is serialised
with sorted keys. CI relies on this (see ``scripts/ci.sh``).
"""

from __future__ import annotations

import csv
import io
import json
import multiprocessing
import os
import sys
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.checkpoint import JournalWriter, load_resumable
from repro.experiments.faults import (
    CHAOS_EXIT_CODE,
    FAULT_CORRUPTION,
    FAULT_CRASH,
    FAULT_TIMEOUT,
    INJECT_CORRUPT,
    INJECT_CRASH,
    INJECT_HANG,
    FaultPlan,
    RetryPolicy,
    payload_digest,
)
from repro.experiments.matrix import (
    DEFAULT_ENGINE,
    DEFAULT_LOSS_RATE,
    DEFAULT_NAT_MIXTURE,
    DEFAULT_NAT_PROFILE,
    DEFAULT_TIMELINE,
    DEFAULT_UPNP_FRACTION,
    SCENARIOS,
    CellSpec,
    MatrixSpec,
    derive_cell_seed,
    run_cell,
    timeline_digest,
)
from repro.metrics.payload import MetricPayload

#: Schema tag written into every aggregate, so downstream tooling can detect drift.
#: v2 added the typed payload sections (per-cell ``histograms``/``series`` and the
#: per-group ``group_histograms``) plus the ``nat_profiles``/``loss_rates`` axes.
#: The fault-tolerance layer adds only the *conditional* ``degraded`` section, so
#: fault-free aggregates keep the v2 bytes exactly and the tag stays.
AGGREGATE_SCHEMA = "repro-matrix-aggregate-v2"

#: Watchdog budget for cells whose scenario kind declares no ``timeout_s`` of its own
#: (a generous multiple of the slowest known cell; ``--cell-timeout`` overrides).
DEFAULT_CELL_TIMEOUT_S = 300.0


@dataclass
class CellResult:
    """Outcome of one executed cell: a metric payload on success, a traceback string
    on failure, an attempt/fault history when the cell was degraded by worker faults.

    ``pid``, ``attempts``, ``faults`` and ``duration_s`` are execution diagnostics:
    they make failures diagnosable from the journal alone and never enter the
    aggregate's cell payloads (pids and wall clocks are nondeterministic; the
    aggregate must stay byte-identical across runs).
    """

    cell: CellSpec
    seed: int
    status: str  # "ok" | "failed" | "degraded"
    payload: MetricPayload = field(default_factory=MetricPayload)
    error: Optional[str] = None
    duration_s: float = 0.0  # wall clock; informational only, never aggregated
    pid: Optional[int] = None  # worker process that produced the terminal attempt
    attempts: int = 1  # total execution attempts (1 = first try succeeded)
    faults: Tuple[str, ...] = ()  # transient-fault kinds suffered along the way

    @property
    def metrics(self) -> Dict[str, float]:
        """The payload's scalar metrics (what the CSV and group summaries consume)."""
        return self.payload.scalars

    @property
    def key(self) -> str:
        return self.cell.key

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class MatrixRunResult:
    """Everything a matrix run produced: per-cell results plus the aggregate dict."""

    spec: MatrixSpec
    results: List[CellResult]
    workers: int
    wall_seconds: float
    retries: int = 0  # transient-fault retries performed across the whole run
    resumed: int = 0  # cells replayed from a journal instead of executed

    @property
    def failed(self) -> List[CellResult]:
        """Deterministically failed cells (the runner never retries these)."""
        return [r for r in self.results if r.status == "failed"]

    @property
    def degraded(self) -> List[CellResult]:
        """Cells that exhausted their retry budget on transient worker faults."""
        return [r for r in self.results if r.status == "degraded"]

    @property
    def aggregate(self) -> Dict:
        return build_aggregate(self.spec, self.results)


class ScenarioReuse:
    """Worker-local reuse of scenario-construction work across matrix cells.

    Cells within one group share their entire construction recipe except the derived
    cell seed, so the parts of scenario construction that are *not* functions of that
    seed — the validated protocol-config prototype for a parameter set, and pristine
    populated-scenario snapshots for build recipes that repeat exactly — are resolved
    once per worker process instead of being rebuilt for every cell.

    Reuse can never change results: config prototypes are read-only by the protocol
    contract (one prototype already serves every node of a scenario), snapshots are
    keyed by the full deterministic build recipe *including the seed* and handed out
    as :meth:`~repro.workload.Scenario.clone` copies, and everything seed-dependent
    is still built per cell. That is what keeps the 4-vs-1-worker byte-identical
    aggregate guarantee intact: a cache hit replays exactly the state a fresh build
    would have produced, no matter which worker served it.

    Snapshots are only captured once a recipe is requested a *second* time (cloning
    costs about as much as one small build, so speculatively snapshotting every cell
    would give the win back); repeat-heavy callers therefore pay one extra build
    before hits start. The snapshot store is a small LRU so long matrix runs cannot
    accumulate populations.
    """

    MAX_SNAPSHOTS = 4
    MAX_TRACKED_RECIPES = 256

    def __init__(self) -> None:
        self._configs: Dict[Tuple, object] = {}
        self._snapshots: "OrderedDict[Tuple, object]" = OrderedDict()
        self._requests: "OrderedDict[Tuple, int]" = OrderedDict()
        self.config_hits = 0
        self.snapshot_hits = 0

    def pss_config(self, key: Tuple, build: Callable[[], object]):
        """The validated config prototype for ``key`` (built on first request)."""
        prototype = self._configs.get(key)
        if prototype is None:
            prototype = build()
            self._configs[key] = prototype
        else:
            self.config_hits += 1
        return prototype

    def populated_scenario(self, recipe: Tuple, build: Callable[[], object]):
        """A populated scenario for ``recipe`` — cloned from the cache on repeats."""
        snapshot = self._snapshots.get(recipe)
        if snapshot is not None:
            self._snapshots.move_to_end(recipe)
            self.snapshot_hits += 1
            return snapshot.clone()
        scenario = build()
        count = self._requests.pop(recipe, 0) + 1
        self._requests[recipe] = count  # re-insert at the recent end
        while len(self._requests) > self.MAX_TRACKED_RECIPES:
            self._requests.popitem(last=False)
        if count >= 2:
            self._snapshots[recipe] = scenario.clone()
            while len(self._snapshots) > self.MAX_SNAPSHOTS:
                self._snapshots.popitem(last=False)
        return scenario


#: One reuse cache per process: forked pool workers each get their own copy-on-write
#: instance, and the sequential (workers=1) path shares the main process's.
_WORKER_REUSE: Optional[ScenarioReuse] = None


def _worker_reuse() -> ScenarioReuse:
    global _WORKER_REUSE
    if _WORKER_REUSE is None:
        _WORKER_REUSE = ScenarioReuse()
    return _WORKER_REUSE


# ------------------------------------------------------------------ cell execution

#: Worker→parent record markers for simulated chaos in the in-process executor (the
#: sequential path cannot really kill or hang itself; the classification is shared).
_SIMULATED = "injected"


def _run_attempt(
    cell: CellSpec,
    attempt: int,
    root_seed: int,
    latency: str,
    reuse: ScenarioReuse,
    fault_plan: Optional[FaultPlan],
    in_process: bool,
) -> Dict[str, object]:
    """Execute one attempt of one cell and return the wire record the parent
    classifies. Chaos faults drawn for this attempt manifest for real in pool
    workers (``os._exit``, a long sleep the watchdog cuts short, a tampered payload)
    and as marker records in the in-process executor.
    """
    fault = fault_plan.draw(cell.key, attempt) if fault_plan is not None else None
    if fault == INJECT_CRASH:
        if in_process:
            return {"key": cell.key, _SIMULATED: INJECT_CRASH}
        os._exit(CHAOS_EXIT_CODE)
    if fault == INJECT_HANG:
        if in_process:
            return {"key": cell.key, _SIMULATED: INJECT_HANG}
        # The watchdog is expected to kill us mid-sleep; if it doesn't (timeouts
        # disabled), fall through and run the cell — a hang is a delay, not a wrong
        # answer, so byte-parity still holds.
        time.sleep(fault_plan.hang_s)

    seed = derive_cell_seed(root_seed, cell.key)
    started = time.perf_counter()
    try:
        payload = run_cell(cell, root_seed=root_seed, latency=latency, reuse=reuse)
    except Exception:
        return {
            "key": cell.key,
            "seed": seed,
            "status": "failed",
            "error": traceback.format_exc(limit=20),
            "duration_s": time.perf_counter() - started,
            "pid": os.getpid(),
        }
    payload_json = payload.to_json_dict()
    digest = payload_digest(payload_json)
    if fault == INJECT_CORRUPT:
        # Digest first, tamper second: the parent's integrity check must catch it.
        payload_json = fault_plan.corrupt_payload(payload_json)
    return {
        "key": cell.key,
        "seed": seed,
        "status": "ok",
        "payload": payload_json,
        "digest": digest,
        "duration_s": time.perf_counter() - started,
        "pid": os.getpid(),
    }


def _worker_main(conn, root_seed: int, latency: str, fault_plan: Optional[FaultPlan]):
    """Persistent worker loop: receive ``(cell, attempt)``, send back a record.

    The process lives across cells so the :class:`ScenarioReuse` cache stays warm;
    ``None`` (or a closed pipe) shuts it down.
    """
    # Under a spawn start method the registry is empty until the experiment modules
    # run their register_scenario() calls; importing the package triggers them.
    import repro.experiments  # noqa: F401

    reuse = _worker_reuse()
    while True:
        try:
            message = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if message is None:
            break
        cell, attempt = message
        record = _run_attempt(
            cell, attempt, root_seed, latency, reuse, fault_plan, in_process=False
        )
        try:
            conn.send(record)
        except (BrokenPipeError, OSError):  # parent is gone; nothing left to do
            break
    conn.close()


def _pool_context():
    """Fork where available (fast, inherits in-process registrations), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _timeout_for(cell: CellSpec, override: Optional[float]) -> Optional[float]:
    """The watchdog budget of one cell: CLI override (``<= 0`` disables), else the
    scenario kind's declared ``timeout_s``, else the runner-wide default."""
    if override is not None:
        return override if override > 0 else None
    kind = SCENARIOS.get(cell.scenario)
    if kind is not None and kind.timeout_s is not None:
        return kind.timeout_s
    return DEFAULT_CELL_TIMEOUT_S


def _result_from_record(
    cell: CellSpec, record: Dict, attempts: int, faults: Tuple[str, ...]
) -> CellResult:
    """A terminal :class:`CellResult` from a worker's ``ok``/``failed`` record."""
    if record["status"] == "ok":
        return CellResult(
            cell=cell,
            seed=int(record["seed"]),
            status="ok",
            payload=MetricPayload.from_json_dict(record["payload"]),
            duration_s=float(record.get("duration_s", 0.0)),
            pid=record.get("pid"),
            attempts=attempts,
            faults=faults,
        )
    return CellResult(
        cell=cell,
        seed=int(record["seed"]),
        status="failed",
        error=str(record.get("error")),
        duration_s=float(record.get("duration_s", 0.0)),
        pid=record.get("pid"),
        attempts=attempts,
        faults=faults,
    )


def _degraded_result(cell: CellSpec, root_seed: int, attempts: int,
                     faults: Tuple[str, ...], pid: Optional[int]) -> CellResult:
    return CellResult(
        cell=cell,
        seed=derive_cell_seed(root_seed, cell.key),
        status="degraded",
        error=(
            f"degraded: {attempts} attempt(s) exhausted by transient worker faults "
            f"({', '.join(faults)})"
        ),
        pid=pid,
        attempts=attempts,
        faults=faults,
    )


@dataclass
class _Task:
    """Parent-side execution state of one cell."""

    index: int
    cell: CellSpec
    timeout_s: Optional[float]
    attempts: int = 0  # attempts dispatched so far
    faults: List[str] = field(default_factory=list)
    eligible_at: float = 0.0  # monotonic time before which no retry dispatches
    last_pid: Optional[int] = None


class _Worker:
    """One managed worker process plus the duplex pipe the parent drives it over."""

    def __init__(self, context, root_seed: int, latency: str,
                 fault_plan: Optional[FaultPlan]) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(
            target=_worker_main,
            args=(child_conn, root_seed, latency, fault_plan),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def dispatch(self, task: _Task, now: float) -> bool:
        """Send ``task`` to the worker; False when the worker is already dead (the
        caller classifies that as a crash of this attempt)."""
        self.task = task
        self.deadline = None if task.timeout_s is None else now + task.timeout_s
        task.last_pid = self.process.pid
        try:
            self.conn.send((task.cell, task.attempts))
            return True
        except (BrokenPipeError, OSError):
            return False

    def release(self) -> None:
        self.task = None
        self.deadline = None

    def stop(self) -> None:
        """Graceful shutdown (end of run)."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker at shutdown
            self.process.terminate()
            self.process.join(timeout=2.0)

    def kill(self) -> None:
        """Hard kill (watchdog / cleanup of a crashed worker)."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
            if self.process.is_alive():  # pragma: no cover - SIGTERM ignored
                self.process.kill()
                self.process.join(timeout=2.0)
        self.conn.close()


class _FaultScheduler:
    """The parent-side scheduling loop shared state: classify, retry, degrade."""

    def __init__(
        self,
        spec: MatrixSpec,
        retry: RetryPolicy,
        on_terminal: Callable[[CellResult], None],
        on_retry: Callable[[], None],
    ) -> None:
        self.spec = spec
        self.retry = retry
        self.on_terminal = on_terminal
        self.on_retry = on_retry
        self.pending: List[_Task] = []
        self.outstanding = 0

    def classify_record(self, task: _Task, record: Dict) -> None:
        """A worker returned a record for ``task``: terminal, or a corruption fault."""
        task.attempts += 1
        simulated = record.get(_SIMULATED)
        if simulated is not None:
            self.fault(
                task,
                FAULT_CRASH if simulated == INJECT_CRASH else FAULT_TIMEOUT,
                already_counted=True,
            )
            return
        if record["status"] == "ok" and (
            payload_digest(record["payload"]) != record.get("digest")
        ):
            self.fault(task, FAULT_CORRUPTION, already_counted=True)
            return
        self.outstanding -= 1
        self.on_terminal(
            _result_from_record(task.cell, record, task.attempts, tuple(task.faults))
        )

    def fault(self, task: _Task, kind: str, already_counted: bool = False) -> None:
        """A transient worker fault on ``task``: retry with backoff or degrade."""
        if not already_counted:
            task.attempts += 1
        task.faults.append(kind)
        if task.attempts >= self.retry.max_attempts:
            self.outstanding -= 1
            self.on_terminal(
                _degraded_result(
                    task.cell,
                    self.spec.root_seed,
                    task.attempts,
                    tuple(task.faults),
                    task.last_pid,
                )
            )
            return
        self.on_retry()
        task.eligible_at = time.monotonic() + self.retry.delay_s(
            self.spec.root_seed, task.cell.key, task.attempts
        )
        self.pending.append(task)


def _run_cells_pool(
    cells: List[CellSpec],
    spec: MatrixSpec,
    workers: int,
    retry: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    cell_timeout_s: Optional[float],
    on_terminal: Callable[[CellResult], None],
    on_retry: Callable[[], None],
    tick: Callable[[], None],
) -> None:
    """The managed-pool executor: dispatch, collect, watchdog, retry, respawn."""
    context = _pool_context()
    scheduler = _FaultScheduler(spec, retry, on_terminal, on_retry)
    scheduler.pending = [
        _Task(index=i, cell=cell, timeout_s=_timeout_for(cell, cell_timeout_s))
        for i, cell in enumerate(cells)
    ]
    scheduler.outstanding = len(cells)

    def spawn() -> _Worker:
        return _Worker(context, spec.root_seed, spec.latency, fault_plan)

    pool: List[_Worker] = []
    try:
        while scheduler.outstanding > 0:
            now = time.monotonic()

            # Keep enough live workers for the remaining work; crashed/killed ones
            # were removed below, so this is also where replacements appear.
            needed = min(workers, scheduler.outstanding)
            while len(pool) < needed:
                pool.append(spawn())

            # Dispatch eligible pending tasks onto idle workers (spec order, retries
            # interleaved by their backoff eligibility).
            scheduler.pending.sort(key=lambda t: (t.eligible_at, t.index))
            idle = [w for w in pool if w.task is None]
            while idle and scheduler.pending and scheduler.pending[0].eligible_at <= now:
                task = scheduler.pending.pop(0)
                worker = idle.pop(0)
                if not worker.dispatch(task, now):
                    # Worker died before it could accept the cell: that's a crash of
                    # this attempt; replace the worker on the next loop turn.
                    worker.release()
                    worker.kill()
                    pool.remove(worker)
                    scheduler.fault(task, FAULT_CRASH)

            busy = [w for w in pool if w.task is not None]
            if not busy:
                if scheduler.pending:
                    wait_s = max(0.0, scheduler.pending[0].eligible_at - now)
                    time.sleep(min(wait_s, 0.25) if wait_s else 0.01)
                tick()
                continue

            # Wait for the earliest interesting moment: a result/death, a watchdog
            # deadline, a retry becoming eligible, or the heartbeat tick.
            horizon = [w.deadline - now for w in busy if w.deadline is not None]
            if scheduler.pending and len(busy) < len(pool):
                horizon.append(scheduler.pending[0].eligible_at - now)
            horizon.append(1.0)  # heartbeat granularity / safety net
            timeout = max(0.01, min(horizon))
            handles = [w.conn for w in busy] + [w.process.sentinel for w in busy]
            ready = mp_connection.wait(handles, timeout=timeout)
            now = time.monotonic()

            for worker in busy:
                task = worker.task
                if task is None:  # already handled in this sweep
                    continue
                signalled = worker.conn in ready or worker.process.sentinel in ready
                if signalled and worker.conn.poll():
                    try:
                        record = worker.conn.recv()
                    except (EOFError, OSError):
                        record = None
                    if isinstance(record, dict):
                        worker.release()
                        scheduler.classify_record(task, record)
                        continue
                    # Unreadable result: treat like a death mid-cell.
                    worker.release()
                    worker.kill()
                    pool.remove(worker)
                    scheduler.fault(task, FAULT_CRASH)
                    continue
                if signalled and not worker.process.is_alive():
                    # Died holding a cell and sent nothing back: a crash.
                    worker.release()
                    worker.kill()
                    pool.remove(worker)
                    scheduler.fault(task, FAULT_CRASH)
                    continue
                if worker.deadline is not None and now >= worker.deadline:
                    # One last poll: a result racing the deadline wins over the axe.
                    if worker.conn.poll():
                        continue  # picked up on the next sweep
                    worker.release()
                    worker.kill()
                    pool.remove(worker)
                    scheduler.fault(task, FAULT_TIMEOUT)
            tick()
    finally:
        for worker in pool:
            if worker.task is not None:
                worker.kill()
            else:
                worker.stop()


def _run_cells_sequential(
    cells: List[CellSpec],
    spec: MatrixSpec,
    retry: RetryPolicy,
    fault_plan: Optional[FaultPlan],
    on_terminal: Callable[[CellResult], None],
    on_retry: Callable[[], None],
    tick: Callable[[], None],
) -> None:
    """The in-process executor (``workers=1``): same classification machinery, with
    injected crashes/hangs simulated (a process cannot kill or watchdog itself) —
    a simulated hang is classified exactly like a watchdog timeout would be."""
    reuse = _worker_reuse()
    scheduler = _FaultScheduler(spec, retry, on_terminal, on_retry)
    scheduler.outstanding = len(cells)
    for index, cell in enumerate(cells):
        task = _Task(index=index, cell=cell, timeout_s=None)
        while True:
            record = _run_attempt(
                cell, task.attempts, spec.root_seed, spec.latency, reuse,
                fault_plan, in_process=True,
            )
            task.last_pid = os.getpid()
            before = scheduler.outstanding
            scheduler.classify_record(task, record)
            if scheduler.outstanding < before:
                break  # terminal (ok, failed or degraded)
            scheduler.pending.clear()  # retry immediately after its backoff
            time.sleep(
                min(0.1, retry.delay_s(spec.root_seed, cell.key, task.attempts))
            )
            tick()
        tick()


class _Heartbeat:
    """Periodic progress line on stderr so long runs are observably alive."""

    def __init__(self, interval_s: Optional[float], total: int, stream=None) -> None:
        self.interval_s = interval_s
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.started = time.monotonic()
        self.next_beat = (
            self.started + interval_s if interval_s and interval_s > 0 else None
        )
        self.ok = 0
        self.failed = 0
        self.degraded = 0
        self.retries = 0

    def note_terminal(self, result: CellResult) -> None:
        if result.status == "ok":
            self.ok += 1
        elif result.status == "failed":
            self.failed += 1
        else:
            self.degraded += 1

    def note_retry(self) -> None:
        self.retries += 1

    @property
    def done(self) -> int:
        return self.ok + self.failed + self.degraded

    def tick(self) -> None:
        if self.next_beat is None:
            return
        now = time.monotonic()
        if now < self.next_beat:
            return
        self.next_beat = now + self.interval_s
        elapsed = now - self.started
        remaining = self.total - self.done
        eta = (elapsed / self.done) * remaining if self.done else float("nan")
        eta_text = f"~{eta:.0f}s" if self.done else "?"
        print(
            f"[matrix] {self.done}/{self.total} cells "
            f"({self.ok} ok, {self.failed} failed, {self.degraded} degraded), "
            f"{self.retries} retries, {elapsed:.0f}s elapsed, eta {eta_text}",
            file=self.stream,
            flush=True,
        )


def run_matrix(
    spec: MatrixSpec,
    workers: int = 1,
    progress: Optional[Callable[[CellResult, int, int], None]] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    cell_timeout_s: Optional[float] = None,
    journal_path: Optional[Path] = None,
    resume_from: Optional[Path] = None,
    heartbeat_s: Optional[float] = None,
    heartbeat_stream=None,
) -> MatrixRunResult:
    """Execute every cell of ``spec`` and return results in spec order.

    Parameters
    ----------
    workers:
        1 runs sequentially in-process; N > 1 uses a managed pool of N persistent
        worker processes with one cell per dispatch. Results are identical either
        way (the parity test and CI enforce byte-identical aggregates).
    progress:
        Optional callback invoked as each cell reaches a terminal state (out of
        order under a pool) with ``(result, completed_count, total)``; resumed
        cells are reported through it too.
    retry:
        The :class:`~repro.experiments.faults.RetryPolicy` for transient worker
        faults (default: 3 attempts with capped exponential backoff). Deterministic
        cell exceptions are never retried regardless of policy.
    fault_plan:
        A :class:`~repro.experiments.faults.FaultPlan` injecting deterministic
        chaos — crashes and hangs are real under a pool and simulated in-process.
    cell_timeout_s:
        Watchdog override for every cell (``<= 0`` disables timeouts); by default
        each scenario kind's ``timeout_s`` applies, falling back to
        :data:`DEFAULT_CELL_TIMEOUT_S`. Timeouts require ``workers > 1`` (the
        in-process executor cannot interrupt itself).
    journal_path:
        Append every terminal cell to this JSONL journal as it completes (see
        :mod:`~repro.experiments.checkpoint`). A pre-existing journal is
        overwritten unless it is also ``resume_from``.
    resume_from:
        Replay terminal (``ok``/``failed``) cells recorded in this journal instead
        of executing them; ``degraded`` cells re-run. The journal must match the
        spec (digest-checked). May equal ``journal_path`` to resume in place.
    heartbeat_s:
        Emit a progress heartbeat to ``heartbeat_stream`` (default stderr) every
        this many seconds; ``None``/``0`` disables.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    retry = retry or RetryPolicy()
    retry.validate()
    if fault_plan is not None:
        fault_plan.validate()
    cells = spec.validate()
    started = time.perf_counter()

    resumed: Dict[str, CellResult] = {}
    if resume_from is not None:
        records = load_resumable(Path(resume_from), spec)
        by_key = {cell.key: cell for cell in cells}
        for key, record in records.items():
            cell = by_key[key]
            payload_json = record.get("payload")
            if record["status"] == "ok" and payload_json is not None:
                recorded_digest = record.get("payload_digest")
                if recorded_digest and payload_digest(payload_json) != recorded_digest:
                    raise ExperimentError(
                        f"journal {resume_from} payload for cell {key!r} fails its "
                        "integrity digest — the journal is corrupt; re-run without "
                        "--resume"
                    )
            resumed[key] = _result_from_journal(cell, record)

    to_run = [cell for cell in cells if cell.key not in resumed]

    writer: Optional[JournalWriter] = None
    resume_in_place = (
        journal_path is not None
        and resume_from is not None
        and Path(journal_path).resolve() == Path(resume_from).resolve()
    )
    if journal_path is not None:
        writer = JournalWriter(
            Path(journal_path), spec, total_cells=len(cells), resume=resume_in_place
        )

    heartbeat = _Heartbeat(heartbeat_s, total=len(cells), stream=heartbeat_stream)
    done: Dict[str, CellResult] = {}

    def journal(result: CellResult) -> None:
        if writer is None:
            return
        payload_json = result.payload.to_json_dict() if result.ok else None
        writer.record_cell(
            key=result.key,
            seed=result.seed,
            status=result.status,
            payload_json=payload_json,
            payload_digest=payload_digest(payload_json) if payload_json else None,
            error=result.error,
            duration_s=result.duration_s,
            pid=result.pid,
            attempts=result.attempts,
            faults=list(result.faults),
        )

    def note(result: CellResult, write_journal: bool = True) -> None:
        done[result.key] = result
        heartbeat.note_terminal(result)
        if write_journal:
            journal(result)
        if progress is not None:
            progress(result, len(done), len(cells))

    try:
        # Resumed cells first: they count as done, and a *fresh* journal gets them
        # re-recorded so it is complete on its own (an in-place resume already
        # holds them).
        for cell in cells:
            if cell.key in resumed:
                note(resumed[cell.key], write_journal=not resume_in_place)

        if to_run:
            if workers == 1 or len(to_run) <= 1:
                _run_cells_sequential(
                    to_run, spec, retry, fault_plan,
                    on_terminal=note, on_retry=heartbeat.note_retry,
                    tick=heartbeat.tick,
                )
            else:
                _run_cells_pool(
                    to_run, spec, min(workers, len(to_run)), retry, fault_plan,
                    cell_timeout_s,
                    on_terminal=note, on_retry=heartbeat.note_retry,
                    tick=heartbeat.tick,
                )
    finally:
        if writer is not None:
            writer.close()

    results = [done[cell.key] for cell in cells]
    return MatrixRunResult(
        spec=spec,
        results=results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
        retries=heartbeat.retries,
        resumed=len(resumed),
    )


def _result_from_journal(cell: CellSpec, record: Dict) -> CellResult:
    """Rebuild a terminal :class:`CellResult` from its journal record (resume)."""
    payload = (
        MetricPayload.from_json_dict(record["payload"])
        if record["status"] == "ok"
        else MetricPayload()
    )
    return CellResult(
        cell=cell,
        seed=int(record["seed"]),
        status=str(record["status"]),
        payload=payload,
        error=record.get("error"),
        duration_s=float(record.get("duration_s", 0.0)),
        pid=record.get("pid"),
        attempts=int(record.get("attempts", 1)),
        faults=tuple(record.get("faults", ())),
    )


# ------------------------------------------------------------------ aggregation


def _group_key(cell: CellSpec) -> str:
    """Cells differing only in seed index aggregate into one group.

    As in :attr:`CellSpec.key`, the deployment axes appear only at non-default values
    so pre-axis group names are unchanged.
    """
    parts = [f"scenario={cell.scenario}"]
    parts.extend(f"{name}={value}" for name, value in cell.params)
    parts.append(f"protocol={cell.protocol}")
    if cell.nat_profile != DEFAULT_NAT_PROFILE:
        parts.append(f"nat_profile={cell.nat_profile}")
    if cell.loss_rate != DEFAULT_LOSS_RATE:
        parts.append(f"loss_rate={cell.loss_rate:g}")
    if cell.nat_mixture != DEFAULT_NAT_MIXTURE:
        parts.append(f"nat_mixture={cell.nat_mixture}")
    if cell.upnp_fraction != DEFAULT_UPNP_FRACTION:
        parts.append(f"upnp_fraction={cell.upnp_fraction:g}")
    if cell.timeline != DEFAULT_TIMELINE:
        parts.append(f"timeline={cell.timeline}@{timeline_digest(cell.timeline)}")
    if cell.engine != DEFAULT_ENGINE:
        parts.append(f"engine={cell.engine}")
    parts.append(f"size={cell.size}")
    return ";".join(parts)


def build_aggregate(spec: MatrixSpec, results: List[CellResult]) -> Dict:
    """The canonical aggregate structure (see :data:`AGGREGATE_SCHEMA`).

    Contains only deterministic values — no wall-clock times, pids, hostnames or
    dates — so that re-running the same spec reproduces the same bytes. Scalar
    metrics are summarised per group and overall; histograms are merged bin-wise per
    group into ``group_histograms`` (e.g. the combined in-degree distribution across
    seeds); series stay per-cell. Degraded cells (retries exhausted on transient
    worker faults) appear in a ``degraded`` section with their attempt and fault
    history — present only when non-empty, so fault-free aggregates keep the exact
    bytes of the pre-fault-tolerance format.
    """
    from repro.metrics.collector import (
        aggregate_group_histograms,
        aggregate_groups,
        aggregate_metrics,
    )

    cells_section = {}
    grouped: Dict[str, List[Dict[str, float]]] = {}
    grouped_histograms: Dict[str, List[Dict[str, Dict[int, int]]]] = {}
    ok_rows: List[Dict[str, float]] = []
    degraded_section: Dict[str, Dict[str, object]] = {}
    for result in results:
        entry: Dict[str, object] = {"seed": result.seed, "status": result.status}
        if result.ok:
            payload_json = result.payload.to_json_dict()
            entry["metrics"] = payload_json["scalars"]
            if payload_json["histograms"]:
                entry["histograms"] = payload_json["histograms"]
            if payload_json["series"]:
                entry["series"] = payload_json["series"]
            grouped.setdefault(_group_key(result.cell), []).append(result.metrics)
            grouped_histograms.setdefault(_group_key(result.cell), []).append(
                result.payload.histograms
            )
            ok_rows.append(result.metrics)
        else:
            entry["error"] = result.error
            if result.status == "degraded":
                degraded_section[result.key] = {
                    "attempts": result.attempts,
                    "faults": list(result.faults),
                }
        cells_section[result.key] = entry

    group_histograms = {
        group: {
            name: {str(bin_): count for bin_, count in histogram.items()}
            for name, histogram in histograms.items()
        }
        for group, histograms in aggregate_group_histograms(grouped_histograms).items()
    }

    aggregate = {
        "schema": AGGREGATE_SCHEMA,
        "spec": spec.spec_json_dict(),
        "cells": cells_section,
        "groups": aggregate_groups(grouped),
        "group_histograms": group_histograms,
        "overall": aggregate_metrics(ok_rows) if ok_rows else {},
        "failed": sorted(r.key for r in results if r.status == "failed"),
    }
    if degraded_section:
        aggregate["degraded"] = degraded_section
    return aggregate


def aggregate_json_bytes(result: MatrixRunResult) -> bytes:
    """Canonical serialisation of the aggregate — the byte-identity unit CI compares."""
    return (json.dumps(result.aggregate, indent=1, sort_keys=True) + "\n").encode("utf-8")


# ------------------------------------------------------------------ artifacts


def cells_csv_text(result: MatrixRunResult) -> str:
    """Wide CSV: one row per cell, one column per metric (union, sorted)."""
    metric_names = sorted({name for r in result.results for name in r.metrics})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["cell_key", "scenario", "protocol", "size", "seed_index", "seed", "status"]
        + metric_names
    )
    for r in result.results:
        row = [
            r.key,
            r.cell.scenario,
            r.cell.protocol,
            r.cell.size,
            r.cell.seed_index,
            r.seed,
            r.status,
        ]
        row.extend(repr(r.metrics[name]) if name in r.metrics else "" for name in metric_names)
        writer.writerow(row)
    return buffer.getvalue()


def write_artifacts(result: MatrixRunResult, out_dir: Path) -> Dict[str, Path]:
    """Write the aggregate JSON, per-cell CSV and markdown summary under ``out_dir``."""
    from repro.experiments.report import matrix_markdown_summary

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "aggregate": out_dir / "matrix_aggregate.json",
        "cells": out_dir / "matrix_cells.csv",
        "summary": out_dir / "matrix_summary.md",
    }
    paths["aggregate"].write_bytes(aggregate_json_bytes(result))
    paths["cells"].write_text(cells_csv_text(result))
    paths["summary"].write_text(matrix_markdown_summary(result.aggregate))
    return paths
