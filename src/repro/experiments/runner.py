"""Sharded multiprocess execution of experiment matrices.

:func:`run_matrix` expands a :class:`~repro.experiments.matrix.MatrixSpec` into cells
and executes them either in-process (``workers=1``) or on a ``multiprocessing`` pool,
one cell per dispatch (shard granularity 1, so workers stay load-balanced however
uneven the cells are). Each cell runs with a seed derived from the root seed and the
cell key, and its metrics are streamed back as the cell finishes; a cell whose runner
raises becomes a *failed cell* in the result — it never crashes or hangs the pool.

Determinism contract: the aggregate produced by :func:`aggregate_json_bytes` is
byte-identical for the same spec regardless of worker count, because cell seeds are
order-independent, results are re-sorted into spec order, wall-clock times are kept out
of the aggregate, and the JSON is serialised with sorted keys. CI relies on this (see
``scripts/ci.sh``).
"""

from __future__ import annotations

import csv
import io
import json
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.matrix import (
    DEFAULT_LOSS_RATE,
    DEFAULT_NAT_PROFILE,
    CellSpec,
    MatrixSpec,
    derive_cell_seed,
    run_cell,
)
from repro.metrics.payload import MetricPayload

#: Schema tag written into every aggregate, so downstream tooling can detect drift.
#: v2 added the typed payload sections (per-cell ``histograms``/``series`` and the
#: per-group ``group_histograms``) plus the ``nat_profiles``/``loss_rates`` axes.
AGGREGATE_SCHEMA = "repro-matrix-aggregate-v2"


@dataclass
class CellResult:
    """Outcome of one executed cell: a metric payload on success, a traceback string
    on failure."""

    cell: CellSpec
    seed: int
    status: str  # "ok" | "failed"
    payload: MetricPayload = field(default_factory=MetricPayload)
    error: Optional[str] = None
    duration_s: float = 0.0  # wall clock; informational only, never aggregated

    @property
    def metrics(self) -> Dict[str, float]:
        """The payload's scalar metrics (what the CSV and group summaries consume)."""
        return self.payload.scalars

    @property
    def key(self) -> str:
        return self.cell.key

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class MatrixRunResult:
    """Everything a matrix run produced: per-cell results plus the aggregate dict."""

    spec: MatrixSpec
    results: List[CellResult]
    workers: int
    wall_seconds: float

    @property
    def failed(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def aggregate(self) -> Dict:
        return build_aggregate(self.spec, self.results)


def _execute_cell(payload: Tuple[CellSpec, int, str]) -> CellResult:
    """Top-level worker entry point (must be picklable for the multiprocessing pool).

    Any exception from the cell runner is captured into a failed :class:`CellResult`;
    the worker process itself always returns normally, so one bad cell can never take
    the pool down with it.
    """
    cell, root_seed, latency = payload
    # Under a spawn start method the registry is empty until the experiment modules
    # run their register_scenario() calls; importing the package triggers them.
    import repro.experiments  # noqa: F401

    seed = derive_cell_seed(root_seed, cell.key)
    started = time.perf_counter()
    try:
        payload = run_cell(cell, root_seed=root_seed, latency=latency)
    except Exception:
        return CellResult(
            cell=cell,
            seed=seed,
            status="failed",
            error=traceback.format_exc(limit=20),
            duration_s=time.perf_counter() - started,
        )
    return CellResult(
        cell=cell,
        seed=seed,
        status="ok",
        payload=payload,
        duration_s=time.perf_counter() - started,
    )


def _pool_context():
    """Fork where available (fast, inherits in-process registrations), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_matrix(
    spec: MatrixSpec,
    workers: int = 1,
    progress: Optional[Callable[[CellResult, int, int], None]] = None,
) -> MatrixRunResult:
    """Execute every cell of ``spec`` and return results in spec order.

    Parameters
    ----------
    workers:
        1 runs sequentially in-process; N > 1 uses a pool of N processes with one cell
        per dispatch. Results are identical either way (the parity test and CI enforce
        byte-identical aggregates).
    progress:
        Optional callback invoked as each cell completes (out of order under a pool)
        with ``(result, completed_count, total)``.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    cells = spec.validate()
    payloads = [(cell, spec.root_seed, spec.latency) for cell in cells]
    started = time.perf_counter()
    by_key: Dict[str, CellResult] = {}

    def note(result: CellResult) -> None:
        by_key[result.key] = result
        if progress is not None:
            progress(result, len(by_key), len(cells))

    if workers == 1 or len(cells) <= 1:
        for payload in payloads:
            note(_execute_cell(payload))
    else:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(cells))) as pool:
            for result in pool.imap_unordered(_execute_cell, payloads, chunksize=1):
                note(result)

    results = [by_key[cell.key] for cell in cells]
    return MatrixRunResult(
        spec=spec,
        results=results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
    )


# ------------------------------------------------------------------ aggregation


def _group_key(cell: CellSpec) -> str:
    """Cells differing only in seed index aggregate into one group.

    As in :attr:`CellSpec.key`, the deployment axes appear only at non-default values
    so pre-axis group names are unchanged.
    """
    parts = [f"scenario={cell.scenario}"]
    parts.extend(f"{name}={value}" for name, value in cell.params)
    parts.append(f"protocol={cell.protocol}")
    if cell.nat_profile != DEFAULT_NAT_PROFILE:
        parts.append(f"nat_profile={cell.nat_profile}")
    if cell.loss_rate != DEFAULT_LOSS_RATE:
        parts.append(f"loss_rate={cell.loss_rate:g}")
    parts.append(f"size={cell.size}")
    return ";".join(parts)


def build_aggregate(spec: MatrixSpec, results: List[CellResult]) -> Dict:
    """The canonical aggregate structure (see :data:`AGGREGATE_SCHEMA`).

    Contains only deterministic values — no wall-clock times, hostnames or dates — so
    that re-running the same spec reproduces the same bytes. Scalar metrics are
    summarised per group and overall; histograms are merged bin-wise per group into
    ``group_histograms`` (e.g. the combined in-degree distribution across seeds);
    series stay per-cell.
    """
    from repro.metrics.collector import (
        aggregate_group_histograms,
        aggregate_groups,
        aggregate_metrics,
    )

    cells_section = {}
    grouped: Dict[str, List[Dict[str, float]]] = {}
    grouped_histograms: Dict[str, List[Dict[str, Dict[int, int]]]] = {}
    ok_rows: List[Dict[str, float]] = []
    for result in results:
        entry: Dict[str, object] = {"seed": result.seed, "status": result.status}
        if result.ok:
            payload_json = result.payload.to_json_dict()
            entry["metrics"] = payload_json["scalars"]
            if payload_json["histograms"]:
                entry["histograms"] = payload_json["histograms"]
            if payload_json["series"]:
                entry["series"] = payload_json["series"]
            grouped.setdefault(_group_key(result.cell), []).append(result.metrics)
            grouped_histograms.setdefault(_group_key(result.cell), []).append(
                result.payload.histograms
            )
            ok_rows.append(result.metrics)
        else:
            entry["error"] = result.error
        cells_section[result.key] = entry

    group_histograms = {
        group: {
            name: {str(bin_): count for bin_, count in histogram.items()}
            for name, histogram in histograms.items()
        }
        for group, histograms in aggregate_group_histograms(grouped_histograms).items()
    }

    return {
        "schema": AGGREGATE_SCHEMA,
        "spec": {
            "scenarios": list(spec.scenarios),
            "protocols": list(spec.protocols),
            "sizes": list(spec.sizes),
            "seeds": spec.seeds,
            "rounds": spec.rounds,
            "public_ratio": spec.public_ratio,
            "root_seed": spec.root_seed,
            "latency": spec.latency,
            "variants": spec.variants,
            "nat_profiles": list(spec.nat_profiles),
            "loss_rates": list(spec.loss_rates),
        },
        "cells": cells_section,
        "groups": aggregate_groups(grouped),
        "group_histograms": group_histograms,
        "overall": aggregate_metrics(ok_rows) if ok_rows else {},
        "failed": sorted(r.key for r in results if not r.ok),
    }


def aggregate_json_bytes(result: MatrixRunResult) -> bytes:
    """Canonical serialisation of the aggregate — the byte-identity unit CI compares."""
    return (json.dumps(result.aggregate, indent=1, sort_keys=True) + "\n").encode("utf-8")


# ------------------------------------------------------------------ artifacts


def cells_csv_text(result: MatrixRunResult) -> str:
    """Wide CSV: one row per cell, one column per metric (union, sorted)."""
    metric_names = sorted({name for r in result.results for name in r.metrics})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["cell_key", "scenario", "protocol", "size", "seed_index", "seed", "status"]
        + metric_names
    )
    for r in result.results:
        row = [
            r.key,
            r.cell.scenario,
            r.cell.protocol,
            r.cell.size,
            r.cell.seed_index,
            r.seed,
            r.status,
        ]
        row.extend(repr(r.metrics[name]) if name in r.metrics else "" for name in metric_names)
        writer.writerow(row)
    return buffer.getvalue()


def write_artifacts(result: MatrixRunResult, out_dir: Path) -> Dict[str, Path]:
    """Write the aggregate JSON, per-cell CSV and markdown summary under ``out_dir``."""
    from repro.experiments.report import matrix_markdown_summary

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "aggregate": out_dir / "matrix_aggregate.json",
        "cells": out_dir / "matrix_cells.csv",
        "summary": out_dir / "matrix_summary.md",
    }
    paths["aggregate"].write_bytes(aggregate_json_bytes(result))
    paths["cells"].write_text(cells_csv_text(result))
    paths["summary"].write_text(matrix_markdown_summary(result.aggregate))
    return paths
