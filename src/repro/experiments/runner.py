"""Sharded multiprocess execution of experiment matrices.

:func:`run_matrix` expands a :class:`~repro.experiments.matrix.MatrixSpec` into cells
and executes them either in-process (``workers=1``) or on a ``multiprocessing`` pool,
one cell per dispatch (shard granularity 1, so workers stay load-balanced however
uneven the cells are). Each cell runs with a seed derived from the root seed and the
cell key, and its metrics are streamed back as the cell finishes; a cell whose runner
raises becomes a *failed cell* in the result — it never crashes or hangs the pool.

Determinism contract: the aggregate produced by :func:`aggregate_json_bytes` is
byte-identical for the same spec regardless of worker count, because cell seeds are
order-independent, results are re-sorted into spec order, wall-clock times are kept out
of the aggregate, and the JSON is serialised with sorted keys. CI relies on this (see
``scripts/ci.sh``).
"""

from __future__ import annotations

import csv
import io
import json
import multiprocessing
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.matrix import (
    DEFAULT_LOSS_RATE,
    DEFAULT_NAT_MIXTURE,
    DEFAULT_NAT_PROFILE,
    DEFAULT_TIMELINE,
    DEFAULT_UPNP_FRACTION,
    CellSpec,
    MatrixSpec,
    derive_cell_seed,
    run_cell,
    timeline_digest,
)
from repro.metrics.payload import MetricPayload

#: Schema tag written into every aggregate, so downstream tooling can detect drift.
#: v2 added the typed payload sections (per-cell ``histograms``/``series`` and the
#: per-group ``group_histograms``) plus the ``nat_profiles``/``loss_rates`` axes.
AGGREGATE_SCHEMA = "repro-matrix-aggregate-v2"


@dataclass
class CellResult:
    """Outcome of one executed cell: a metric payload on success, a traceback string
    on failure."""

    cell: CellSpec
    seed: int
    status: str  # "ok" | "failed"
    payload: MetricPayload = field(default_factory=MetricPayload)
    error: Optional[str] = None
    duration_s: float = 0.0  # wall clock; informational only, never aggregated

    @property
    def metrics(self) -> Dict[str, float]:
        """The payload's scalar metrics (what the CSV and group summaries consume)."""
        return self.payload.scalars

    @property
    def key(self) -> str:
        return self.cell.key

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class MatrixRunResult:
    """Everything a matrix run produced: per-cell results plus the aggregate dict."""

    spec: MatrixSpec
    results: List[CellResult]
    workers: int
    wall_seconds: float

    @property
    def failed(self) -> List[CellResult]:
        return [r for r in self.results if not r.ok]

    @property
    def aggregate(self) -> Dict:
        return build_aggregate(self.spec, self.results)


class ScenarioReuse:
    """Worker-local reuse of scenario-construction work across matrix cells.

    Cells within one group share their entire construction recipe except the derived
    cell seed, so the parts of scenario construction that are *not* functions of that
    seed — the validated protocol-config prototype for a parameter set, and pristine
    populated-scenario snapshots for build recipes that repeat exactly — are resolved
    once per worker process instead of being rebuilt for every cell.

    Reuse can never change results: config prototypes are read-only by the protocol
    contract (one prototype already serves every node of a scenario), snapshots are
    keyed by the full deterministic build recipe *including the seed* and handed out
    as :meth:`~repro.workload.Scenario.clone` copies, and everything seed-dependent
    is still built per cell. That is what keeps the 4-vs-1-worker byte-identical
    aggregate guarantee intact: a cache hit replays exactly the state a fresh build
    would have produced, no matter which worker served it.

    Snapshots are only captured once a recipe is requested a *second* time (cloning
    costs about as much as one small build, so speculatively snapshotting every cell
    would give the win back); repeat-heavy callers therefore pay one extra build
    before hits start. The snapshot store is a small LRU so long matrix runs cannot
    accumulate populations.
    """

    MAX_SNAPSHOTS = 4
    MAX_TRACKED_RECIPES = 256

    def __init__(self) -> None:
        self._configs: Dict[Tuple, object] = {}
        self._snapshots: "OrderedDict[Tuple, object]" = OrderedDict()
        self._requests: "OrderedDict[Tuple, int]" = OrderedDict()
        self.config_hits = 0
        self.snapshot_hits = 0

    def pss_config(self, key: Tuple, build: Callable[[], object]):
        """The validated config prototype for ``key`` (built on first request)."""
        prototype = self._configs.get(key)
        if prototype is None:
            prototype = build()
            self._configs[key] = prototype
        else:
            self.config_hits += 1
        return prototype

    def populated_scenario(self, recipe: Tuple, build: Callable[[], object]):
        """A populated scenario for ``recipe`` — cloned from the cache on repeats."""
        snapshot = self._snapshots.get(recipe)
        if snapshot is not None:
            self._snapshots.move_to_end(recipe)
            self.snapshot_hits += 1
            return snapshot.clone()
        scenario = build()
        count = self._requests.pop(recipe, 0) + 1
        self._requests[recipe] = count  # re-insert at the recent end
        while len(self._requests) > self.MAX_TRACKED_RECIPES:
            self._requests.popitem(last=False)
        if count >= 2:
            self._snapshots[recipe] = scenario.clone()
            while len(self._snapshots) > self.MAX_SNAPSHOTS:
                self._snapshots.popitem(last=False)
        return scenario


#: One reuse cache per process: forked pool workers each get their own copy-on-write
#: instance, and the sequential (workers=1) path shares the main process's.
_WORKER_REUSE: Optional[ScenarioReuse] = None


def _worker_reuse() -> ScenarioReuse:
    global _WORKER_REUSE
    if _WORKER_REUSE is None:
        _WORKER_REUSE = ScenarioReuse()
    return _WORKER_REUSE


def _execute_cell(payload: Tuple[CellSpec, int, str]) -> CellResult:
    """Top-level worker entry point (must be picklable for the multiprocessing pool).

    Any exception from the cell runner is captured into a failed :class:`CellResult`;
    the worker process itself always returns normally, so one bad cell can never take
    the pool down with it.
    """
    cell, root_seed, latency = payload
    # Under a spawn start method the registry is empty until the experiment modules
    # run their register_scenario() calls; importing the package triggers them.
    import repro.experiments  # noqa: F401

    seed = derive_cell_seed(root_seed, cell.key)
    started = time.perf_counter()
    try:
        payload = run_cell(cell, root_seed=root_seed, latency=latency, reuse=_worker_reuse())
    except Exception:
        return CellResult(
            cell=cell,
            seed=seed,
            status="failed",
            error=traceback.format_exc(limit=20),
            duration_s=time.perf_counter() - started,
        )
    return CellResult(
        cell=cell,
        seed=seed,
        status="ok",
        payload=payload,
        duration_s=time.perf_counter() - started,
    )


def _pool_context():
    """Fork where available (fast, inherits in-process registrations), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_matrix(
    spec: MatrixSpec,
    workers: int = 1,
    progress: Optional[Callable[[CellResult, int, int], None]] = None,
) -> MatrixRunResult:
    """Execute every cell of ``spec`` and return results in spec order.

    Parameters
    ----------
    workers:
        1 runs sequentially in-process; N > 1 uses a pool of N processes with one cell
        per dispatch. Results are identical either way (the parity test and CI enforce
        byte-identical aggregates).
    progress:
        Optional callback invoked as each cell completes (out of order under a pool)
        with ``(result, completed_count, total)``.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    cells = spec.validate()
    payloads = [(cell, spec.root_seed, spec.latency) for cell in cells]
    started = time.perf_counter()
    by_key: Dict[str, CellResult] = {}

    def note(result: CellResult) -> None:
        by_key[result.key] = result
        if progress is not None:
            progress(result, len(by_key), len(cells))

    if workers == 1 or len(cells) <= 1:
        for payload in payloads:
            note(_execute_cell(payload))
    else:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(cells))) as pool:
            for result in pool.imap_unordered(_execute_cell, payloads, chunksize=1):
                note(result)

    results = [by_key[cell.key] for cell in cells]
    return MatrixRunResult(
        spec=spec,
        results=results,
        workers=workers,
        wall_seconds=time.perf_counter() - started,
    )


# ------------------------------------------------------------------ aggregation


def _group_key(cell: CellSpec) -> str:
    """Cells differing only in seed index aggregate into one group.

    As in :attr:`CellSpec.key`, the deployment axes appear only at non-default values
    so pre-axis group names are unchanged.
    """
    parts = [f"scenario={cell.scenario}"]
    parts.extend(f"{name}={value}" for name, value in cell.params)
    parts.append(f"protocol={cell.protocol}")
    if cell.nat_profile != DEFAULT_NAT_PROFILE:
        parts.append(f"nat_profile={cell.nat_profile}")
    if cell.loss_rate != DEFAULT_LOSS_RATE:
        parts.append(f"loss_rate={cell.loss_rate:g}")
    if cell.nat_mixture != DEFAULT_NAT_MIXTURE:
        parts.append(f"nat_mixture={cell.nat_mixture}")
    if cell.upnp_fraction != DEFAULT_UPNP_FRACTION:
        parts.append(f"upnp_fraction={cell.upnp_fraction:g}")
    if cell.timeline != DEFAULT_TIMELINE:
        parts.append(f"timeline={cell.timeline}@{timeline_digest(cell.timeline)}")
    parts.append(f"size={cell.size}")
    return ";".join(parts)


def build_aggregate(spec: MatrixSpec, results: List[CellResult]) -> Dict:
    """The canonical aggregate structure (see :data:`AGGREGATE_SCHEMA`).

    Contains only deterministic values — no wall-clock times, hostnames or dates — so
    that re-running the same spec reproduces the same bytes. Scalar metrics are
    summarised per group and overall; histograms are merged bin-wise per group into
    ``group_histograms`` (e.g. the combined in-degree distribution across seeds);
    series stay per-cell.
    """
    from repro.metrics.collector import (
        aggregate_group_histograms,
        aggregate_groups,
        aggregate_metrics,
    )

    cells_section = {}
    grouped: Dict[str, List[Dict[str, float]]] = {}
    grouped_histograms: Dict[str, List[Dict[str, Dict[int, int]]]] = {}
    ok_rows: List[Dict[str, float]] = []
    for result in results:
        entry: Dict[str, object] = {"seed": result.seed, "status": result.status}
        if result.ok:
            payload_json = result.payload.to_json_dict()
            entry["metrics"] = payload_json["scalars"]
            if payload_json["histograms"]:
                entry["histograms"] = payload_json["histograms"]
            if payload_json["series"]:
                entry["series"] = payload_json["series"]
            grouped.setdefault(_group_key(result.cell), []).append(result.metrics)
            grouped_histograms.setdefault(_group_key(result.cell), []).append(
                result.payload.histograms
            )
            ok_rows.append(result.metrics)
        else:
            entry["error"] = result.error
        cells_section[result.key] = entry

    group_histograms = {
        group: {
            name: {str(bin_): count for bin_, count in histogram.items()}
            for name, histogram in histograms.items()
        }
        for group, histograms in aggregate_group_histograms(grouped_histograms).items()
    }

    spec_section = {
        "scenarios": list(spec.scenarios),
        "protocols": list(spec.protocols),
        "sizes": list(spec.sizes),
        "seeds": spec.seeds,
        "rounds": spec.rounds,
        "public_ratio": spec.public_ratio,
        "root_seed": spec.root_seed,
        "latency": spec.latency,
        "variants": spec.variants,
        "nat_profiles": list(spec.nat_profiles),
        "loss_rates": list(spec.loss_rates),
    }
    # The PR-4/PR-5 axes appear only when actually swept, so aggregates of pre-axis
    # specs stay byte-identical to their archived versions.
    if tuple(spec.nat_mixtures) != (DEFAULT_NAT_MIXTURE,):
        spec_section["nat_mixtures"] = list(spec.nat_mixtures)
    if tuple(spec.upnp_fractions) != (DEFAULT_UPNP_FRACTION,):
        spec_section["upnp_fractions"] = list(spec.upnp_fractions)
    if tuple(spec.timelines) != (DEFAULT_TIMELINE,):
        spec_section["timelines"] = list(spec.timelines)

    return {
        "schema": AGGREGATE_SCHEMA,
        "spec": spec_section,
        "cells": cells_section,
        "groups": aggregate_groups(grouped),
        "group_histograms": group_histograms,
        "overall": aggregate_metrics(ok_rows) if ok_rows else {},
        "failed": sorted(r.key for r in results if not r.ok),
    }


def aggregate_json_bytes(result: MatrixRunResult) -> bytes:
    """Canonical serialisation of the aggregate — the byte-identity unit CI compares."""
    return (json.dumps(result.aggregate, indent=1, sort_keys=True) + "\n").encode("utf-8")


# ------------------------------------------------------------------ artifacts


def cells_csv_text(result: MatrixRunResult) -> str:
    """Wide CSV: one row per cell, one column per metric (union, sorted)."""
    metric_names = sorted({name for r in result.results for name in r.metrics})
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["cell_key", "scenario", "protocol", "size", "seed_index", "seed", "status"]
        + metric_names
    )
    for r in result.results:
        row = [
            r.key,
            r.cell.scenario,
            r.cell.protocol,
            r.cell.size,
            r.cell.seed_index,
            r.seed,
            r.status,
        ]
        row.extend(repr(r.metrics[name]) if name in r.metrics else "" for name in metric_names)
        writer.writerow(row)
    return buffer.getvalue()


def write_artifacts(result: MatrixRunResult, out_dir: Path) -> Dict[str, Path]:
    """Write the aggregate JSON, per-cell CSV and markdown summary under ``out_dir``."""
    from repro.experiments.report import matrix_markdown_summary

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "aggregate": out_dir / "matrix_aggregate.json",
        "cells": out_dir / "matrix_cells.csv",
        "summary": out_dir / "matrix_summary.md",
    }
    paths["aggregate"].write_bytes(aggregate_json_bytes(result))
    paths["cells"].write_text(cells_csv_text(result))
    paths["summary"].write_text(matrix_markdown_summary(result.aggregate))
    return paths
