"""Fault model of the matrix runner: classification, retry policy and chaos injection.

Long matrix runs die three ways the cell code itself never sees: a worker process is
killed (OOM, a segfaulting extension, an operator), a worker hangs (a deadlock, a
pathological cell), or a result is mangled on its way back. This module gives the
runner a vocabulary for those *worker-level* faults — as opposed to deterministic
cell exceptions, which reproduce identically on every attempt and must never be
retried — plus two deterministic tools around them:

* a :class:`RetryPolicy` with capped exponential backoff and seed-derived jitter, so
  reschedule times are reproducible for a fixed root seed;
* a :class:`FaultPlan` — a serializable chaos spec (``repro matrix --chaos``) whose
  injection decisions are a pure function of ``(plan seed, cell key, attempt)``, so
  the same plan replays the same crashes, hangs and corruptions every time. Because
  cell results are pure functions of the cell key and derived seed, a chaos run that
  recovers every cell must produce a byte-identical aggregate to a fault-free run —
  which is exactly what the CI chaos smoke asserts against the committed baseline.

Worker-fault kinds the runner records (:data:`FAULT_KINDS`):

``crash``
    The worker process died without returning a result (observed via its sentinel).
``timeout``
    The cell exceeded its wall-clock budget and the watchdog killed the worker.
``corruption``
    The returned payload failed its integrity digest (:func:`payload_digest` is
    computed worker-side over the canonical payload JSON and re-checked by the
    parent, so wire corruption is caught, not aggregated).
"""

from __future__ import annotations

import copy
import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.errors import ExperimentError
from repro.simulator.core import derive_seed

#: Parent-side classification of worker-level faults (what retry histories record).
FAULT_CRASH = "crash"
FAULT_TIMEOUT = "timeout"
FAULT_CORRUPTION = "corruption"
FAULT_KINDS = (FAULT_CRASH, FAULT_TIMEOUT, FAULT_CORRUPTION)

#: Injection kinds a :class:`FaultPlan` can draw (how they manifest differs between
#: pool workers — real process death / real sleeps — and the in-process sequential
#: executor, which simulates them; the parent classifies both identically).
INJECT_CRASH = "crash"
INJECT_HANG = "hang"
INJECT_CORRUPT = "corrupt"

#: Schema tag of a JSON fault-plan document.
FAULT_PLAN_SCHEMA = "repro-faultplan-v1"

#: Exit code an injected crash kills the worker process with (diagnosable in logs).
CHAOS_EXIT_CODE = 43


def payload_digest(payload_json: Dict) -> str:
    """Integrity digest of a cell's payload, over its canonical JSON bytes.

    Computed by the worker right after measurement and re-computed by the parent on
    receipt; a mismatch classifies the attempt as ``corruption`` and the cell is
    retried instead of a mangled payload silently entering the aggregate.
    """
    canonical = json.dumps(payload_json, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class RetryPolicy:
    """How transient worker faults are retried.

    ``max_attempts`` is the total number of attempts a cell gets (1 = never retry);
    the delay before attempt *n* (n ≥ 2) is ``base_delay_s * 2**(n-2)`` capped at
    ``max_delay_s``, stretched by up to ``jitter`` (relative) drawn from a stream
    derived from the root seed and the cell key — deterministic for a fixed spec, so
    two resumed runs reschedule identically. Deterministic cell exceptions are never
    retried under any policy: they would fail identically forever.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ExperimentError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ExperimentError("retry delays must be non-negative")
        if self.jitter < 0:
            raise ExperimentError(f"jitter must be non-negative, got {self.jitter}")

    def delay_s(self, root_seed: int, cell_key: str, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based count of failed tries)."""
        base = min(self.max_delay_s, self.base_delay_s * (2 ** max(0, attempt - 1)))
        if base <= 0 or self.jitter <= 0:
            return base
        stretch = random.Random(
            derive_seed(root_seed, "retry-jitter", cell_key, attempt)
        ).random()
        return base * (1.0 + self.jitter * stretch)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos schedule for the matrix runner (``--chaos``).

    Each execution attempt of each cell draws once from a stream derived from
    ``(seed, cell key, attempt)``; the draw picks an injected fault (or none) by the
    configured rates. Injections stop after ``max_faults_per_cell`` attempts of a
    cell, so any retry policy with ``max_attempts > max_faults_per_cell`` is
    *guaranteed* to recover every cell — the property that makes chaos runs
    byte-comparable to fault-free baselines in CI.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: How long an injected hang sleeps (it is the watchdog's job to cut it short).
    hang_s: float = 3600.0
    max_faults_per_cell: int = 1

    def validate(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ExperimentError(f"{name} out of range: {rate}")
        if self.crash_rate + self.hang_rate + self.corrupt_rate > 1.0:
            raise ExperimentError("fault rates must sum to at most 1.0")
        if self.hang_s <= 0:
            raise ExperimentError(f"hang_s must be positive, got {self.hang_s}")
        if self.max_faults_per_cell < 0:
            raise ExperimentError(
                f"max_faults_per_cell must be non-negative: {self.max_faults_per_cell}"
            )

    def draw(self, cell_key: str, attempt: int) -> Optional[str]:
        """The fault injected into execution ``attempt`` (0-based) of ``cell_key`` —
        ``"crash"``, ``"hang"``, ``"corrupt"`` or ``None``. Pure function of the plan
        and its arguments: the same plan yields the same injection schedule."""
        if attempt >= self.max_faults_per_cell:
            return None
        roll = random.Random(derive_seed(self.seed, "chaos", cell_key, attempt)).random()
        if roll < self.crash_rate:
            return INJECT_CRASH
        if roll < self.crash_rate + self.hang_rate:
            return INJECT_HANG
        if roll < self.crash_rate + self.hang_rate + self.corrupt_rate:
            return INJECT_CORRUPT
        return None

    def corrupt_payload(self, payload_json: Dict) -> Dict:
        """A deterministically mangled copy of a payload (injected *after* the
        integrity digest is computed, so the parent's check must catch it)."""
        corrupted = copy.deepcopy(payload_json)
        scalars = corrupted.setdefault("scalars", {})
        scalars["__chaos_corruption__"] = 1.0
        return corrupted

    # ------------------------------------------------------------------ serialization

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "schema": FAULT_PLAN_SCHEMA,
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "corrupt_rate": self.corrupt_rate,
            "hang_s": self.hang_s,
            "max_faults_per_cell": self.max_faults_per_cell,
        }

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        payload = dict(data)
        schema = payload.pop("schema", FAULT_PLAN_SCHEMA)
        if schema != FAULT_PLAN_SCHEMA:
            raise ExperimentError(
                f"unknown fault-plan schema {schema!r}; expected {FAULT_PLAN_SCHEMA!r}"
            )
        try:
            plan = cls(**payload)  # type: ignore[arg-type]
        except TypeError as error:
            raise ExperimentError(f"bad fault-plan fields: {error}") from None
        plan.validate()
        return plan

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from a CLI ``--chaos`` value.

        A value naming an existing file (or ending in ``.json``) is read as a JSON
        fault-plan document; anything else is a compact ``key=value`` list, e.g.
        ``"seed=7,crash=0.2,hang=0.1,corrupt=0.2"`` (keys: ``seed``, ``crash``,
        ``hang``, ``corrupt``, ``hang_s``, ``max_faults``).
        """
        path = Path(text)
        if text.endswith(".json") or path.exists():
            if not path.exists():
                raise ExperimentError(f"fault-plan file not found: {path}")
            try:
                data = json.loads(path.read_text())
            except json.JSONDecodeError as error:
                raise ExperimentError(
                    f"fault-plan file {path} is not valid JSON: {error}"
                ) from None
            if not isinstance(data, dict):
                raise ExperimentError(f"fault-plan file {path} must hold a JSON object")
            return cls.from_json_dict(data)

        aliases = {
            "crash": "crash_rate",
            "hang": "hang_rate",
            "corrupt": "corrupt_rate",
            "seed": "seed",
            "hang_s": "hang_s",
            "hang-s": "hang_s",
            "max_faults": "max_faults_per_cell",
            "max-faults": "max_faults_per_cell",
        }
        fields: Dict[str, object] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ExperimentError(
                    f"bad --chaos entry {item!r}; expected key=value pairs "
                    f"(keys: {', '.join(sorted(set(aliases)))}) or a JSON file path"
                )
            key, _, raw = item.partition("=")
            field = aliases.get(key.strip())
            if field is None:
                raise ExperimentError(
                    f"unknown --chaos key {key.strip()!r}; expected one of "
                    f"{sorted(set(aliases))}"
                )
            try:
                value: object = (
                    int(raw) if field in ("seed", "max_faults_per_cell") else float(raw)
                )
            except ValueError:
                raise ExperimentError(
                    f"bad --chaos value for {key.strip()!r}: {raw!r}"
                ) from None
            fields[field] = value
        plan = cls(**fields)  # type: ignore[arg-type]
        plan.validate()
        return plan

    def describe(self) -> str:
        return (
            f"chaos(seed={self.seed}, crash={self.crash_rate:g}, "
            f"hang={self.hang_rate:g}, corrupt={self.corrupt_rate:g}, "
            f"max_faults_per_cell={self.max_faults_per_cell})"
        )
