"""Figures 1 and 2: estimation accuracy vs. history-window sizes (α, γ).

* **Figure 1** (static ratio): 1000 public and 4000 private nodes join over ~50 s
  following Poisson processes; the public/private ratio then stays constant. Larger
  windows converge more slowly but to lower steady-state error.
* **Figure 2** (dynamic ratio): same join phase, then — after a short pause — a new
  public node is added every 42 ms, raising the ratio from 0.2 to about 0.33 over a few
  rounds. Small windows track the change fastest; large windows lag but win once the
  ratio stabilises again.

The paper sweeps three window pairs: (α=10, γ=25), (α=25, γ=50) and (α=100, γ=250).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.base import (
    EstimationExperimentSpec,
    EstimationRun,
    run_estimation_cell,
    run_estimation_scenario,
)
from repro.experiments.matrix import CellContext, register_scenario
from repro.experiments.report import error_series_table, error_summary_table
from repro.membership.capabilities import RatioEstimating
from repro.membership.plugin import get_plugin

#: The (α, γ) pairs of Figures 1 and 2.
PAPER_WINDOW_PAIRS: Tuple[Tuple[int, int], ...] = ((10, 25), (25, 50), (100, 250))


def run_history_cell(ctx: CellContext):
    """One Figure 1/2 matrix cell: the (α, γ) history-window sweep.

    A thin capability gate over :func:`~repro.experiments.base.run_estimation_cell`:
    the sweep only makes sense for ratio-estimating protocols, so a cell that pairs
    this kind with e.g. Cyclon fails loudly (a failed cell naming the missing
    capability) instead of silently measuring nothing. The Figure 2 dynamic-ratio
    variant rides on the ``ratio_growth_*`` params.
    """
    get_plugin(ctx.cell.protocol).require(
        RatioEstimating, context="the 'history' scenario kind (α/γ sweep)"
    )
    if ctx.cell.protocol != "croupier":
        raise ExperimentError(
            "the 'history' scenario kind sweeps Croupier's (α, γ) windows; "
            f"protocol {ctx.cell.protocol!r} has no history-window configuration"
        )
    return run_estimation_cell(ctx)


register_scenario(
    "history",
    run_history_cell,
    description="Croupier's (α, γ) history-window sweep with a Poisson join transient "
    "(Figure 1; add ratio_growth_* params for Figure 2's dynamic ratio)",
    default_params={"alpha": 25, "gamma": 50, "join_window_ms": 5000.0},
    paper_variants=[
        {"alpha": alpha, "gamma": gamma, "join_window_ms": 5000.0}
        for alpha, gamma in PAPER_WINDOW_PAIRS
    ],
)


@dataclass
class HistoryWindowResult:
    """All runs of one history-window experiment (one per (α, γ) pair)."""

    dynamic: bool
    runs: List[EstimationRun] = field(default_factory=list)

    @property
    def series(self):
        return [run.series for run in self.runs]

    def run_for(self, alpha: int, gamma: int) -> Optional[EstimationRun]:
        for run in self.runs:
            if run.spec.alpha == alpha and run.spec.gamma == gamma:
                return run
        return None

    def to_text(self) -> str:
        figure = "Figure 2" if self.dynamic else "Figure 1"
        parts = [
            error_summary_table(
                self.series, title=f"{figure}: estimation error vs. history windows"
            ),
            "",
            error_series_table(self.series, metric="avg", title=f"{figure}(a): average error"),
            "",
            error_series_table(self.series, metric="max", title=f"{figure}(b): maximum error"),
        ]
        return "\n".join(parts)


def run_history_window_experiment(
    dynamic: bool = False,
    n_public: int = 1000,
    n_private: int = 4000,
    rounds: int = 250,
    window_pairs: Sequence[Tuple[int, int]] = PAPER_WINDOW_PAIRS,
    public_interarrival_ms: float = 50.0,
    private_interarrival_ms: float = 12.5,
    ratio_growth_start_round: int = 58,
    ratio_growth_interval_ms: float = 42.0,
    ratio_growth_count: Optional[int] = None,
    seed: int = 42,
    latency: str = "king",
) -> HistoryWindowResult:
    """Reproduce Figure 1 (``dynamic=False``) or Figure 2 (``dynamic=True``).

    The defaults are the paper-scale parameters; the benchmarks call this with smaller
    populations and fewer rounds (see ``benchmarks/``). ``ratio_growth_count`` defaults
    to enough new public nodes to raise the ratio by roughly the paper's three
    percentage points.
    """
    if ratio_growth_count is None:
        # Raising ω from p to p' with V private nodes requires adding
        # Δ = (p'·(U+V) − U) / (1 − p') public nodes; the paper's 0.30 → 0.33 move with
        # 1000/4000 nodes corresponds to ~250 additions. Scale the same relative move.
        total = n_public + n_private
        current = n_public / total
        target = min(0.95, current + 0.03)
        ratio_growth_count = max(1, int(round((target * total - n_public) / (1.0 - target))))

    result = HistoryWindowResult(dynamic=dynamic)
    for alpha, gamma in window_pairs:
        spec = EstimationExperimentSpec(
            label=f"alpha={alpha}, gamma={gamma}",
            n_public=n_public,
            n_private=n_private,
            alpha=alpha,
            gamma=gamma,
            rounds=rounds,
            seed=seed,
            public_interarrival_ms=public_interarrival_ms,
            private_interarrival_ms=private_interarrival_ms,
            latency=latency,
            ratio_growth_start_round=ratio_growth_start_round if dynamic else None,
            ratio_growth_interval_ms=ratio_growth_interval_ms,
            ratio_growth_count=ratio_growth_count if dynamic else 0,
        )
        result.runs.append(run_estimation_scenario(spec))
    return result
