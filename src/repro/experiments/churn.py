"""Figure 5: estimation accuracy under continuous churn.

The paper replaces a fixed fraction of randomly chosen public and private nodes with
fresh nodes every round (keeping the ratio stable), starting at t=61, and sweeps the
per-round churn rate over 0.1 %, 1 %, 2.5 % and 5 % — the last being roughly 50× the
churn measured in deployed P2P systems. The finding: churn up to 5 %/round has no
significant effect on the estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.experiments.base import (
    EstimationExperimentSpec,
    EstimationRun,
    run_estimation_cell,
    run_estimation_scenario,
)
from repro.experiments.matrix import register_scenario
from repro.experiments.report import error_series_table, error_summary_table

#: The per-round churn fractions of Figure 5.
PAPER_CHURN_LEVELS = (0.001, 0.01, 0.025, 0.05)

register_scenario(
    "churn",
    run_estimation_cell,
    description="steady-state churn: a fraction of each node class replaced every round (Figure 5)",
    default_params={"churn_fraction": 0.01, "churn_start_round": 10},
    paper_variants=[
        {"churn_fraction": level, "churn_start_round": 61} for level in PAPER_CHURN_LEVELS
    ],
)


@dataclass
class ChurnExperimentResult:
    """One estimation run per churn level."""

    runs: Dict[float, EstimationRun] = field(default_factory=dict)

    @property
    def series(self):
        return [self.runs[level].series for level in sorted(self.runs)]

    def final_avg_errors(self) -> Dict[float, Optional[float]]:
        return {level: run.series.final_avg_error() for level, run in self.runs.items()}

    def final_max_errors(self) -> Dict[float, Optional[float]]:
        return {level: run.series.final_max_error() for level, run in self.runs.items()}

    def to_text(self) -> str:
        parts = [
            error_summary_table(self.series, title="Figure 5: estimation error under churn"),
            "",
            error_series_table(self.series, metric="avg", title="Figure 5(a): average error"),
            "",
            error_series_table(self.series, metric="max", title="Figure 5(b): maximum error"),
        ]
        return "\n".join(parts)


def run_churn_experiment(
    churn_levels: Sequence[float] = PAPER_CHURN_LEVELS,
    total_nodes: int = 1000,
    public_ratio: float = 0.2,
    rounds: int = 250,
    churn_start_round: int = 61,
    alpha: int = 25,
    gamma: int = 50,
    join_window_ms: float = 10_000.0,
    seed: int = 42,
    latency: str = "king",
) -> ChurnExperimentResult:
    """Reproduce Figure 5 for the given churn levels."""
    result = ChurnExperimentResult()
    n_public = max(1, int(round(total_nodes * public_ratio)))
    n_private = max(0, total_nodes - n_public)
    for level in churn_levels:
        spec = EstimationExperimentSpec(
            label=f"churn={level * 100:g}%",
            n_public=n_public,
            n_private=n_private,
            alpha=alpha,
            gamma=gamma,
            rounds=rounds,
            seed=seed,
            public_interarrival_ms=join_window_ms / max(1, n_public),
            private_interarrival_ms=(
                join_window_ms / max(1, n_private) if n_private else None
            ),
            churn_fraction=level,
            churn_start_round=churn_start_round,
            latency=latency,
        )
        result.runs[level] = run_estimation_scenario(spec)
    return result
