"""Horizon-scale experiments: the paper's figures at 10⁵–10⁶ nodes.

The estimation scenario kinds measure by materialising per-node service objects
(:func:`~repro.metrics.probes.collect_ratio_estimates`) and walking the overlay
graph (``GraphProbe``), both of which are O(N) Python-object work per sample and
dominate wall-clock long before the protocol itself does. The ``scale`` kind
registered here runs the same workloads (instant population, optional Figure 5
churn) but measures through the columnar engine's streamed, array-native
statistics instead:

* the error series comes from :meth:`~repro.columnar.engine.ColumnarEngine.
  estimate_stats`, which is bit-identical to the per-node facade collection;
* the in-degree distribution comes from :meth:`~repro.columnar.engine.
  ColumnarEngine.in_degree_histogram` (a streamed histogram, never a per-node
  list), replacing the ``GraphProbe`` — path length and clustering walks are
  deliberately skipped at this scale;
* sampling cadence is a cell param (``measure_every``) so a 10⁵-node cell is not
  forced to pay a measurement sweep every round.

Cells of this kind still run on the object engine (the CI equivalence smoke
compares both at small N); the engine-native fast paths are taken whenever the
scenario exposes a columnar engine, and the facade-based fallback otherwise.

The module also hosts :func:`run_scale_experiment` — the ``repro run scale``
harness: the paper's static-ratio and churn figures at a given system size on
the columnar engine, reporting throughput (node·rounds/s) and peak RSS
alongside the estimation errors.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ExperimentError
from repro.experiments.base import cell_timeline, estimation_timeline
from repro.experiments.matrix import CellContext, measure_cell, register_scenario
from repro.metrics.estimation import EstimationErrorSample, EstimationErrorSeries
from repro.metrics.payload import MetricPayload, histogram_statistics
from repro.metrics.probes import (
    CoreProbe,
    EstimationProbe,
    OverheadProbe,
    ProbeContext,
    collect_ratio_estimates,
)
from repro.workload.scenario import ScenarioConfig, create_scenario


def _columnar_engine(scenario):
    """The scenario's columnar engine, or ``None`` for object-graph scenarios."""
    engine = getattr(scenario, "engine", None)
    if engine is not None and hasattr(engine, "estimate_stats"):
        return engine
    return None


def record_error_sample(series: EstimationErrorSeries, scenario, min_rounds: int = 2):
    """Append one estimation-error sample, engine-native when possible.

    On a columnar scenario the sample is computed by
    :meth:`~repro.columnar.engine.ColumnarEngine.estimate_stats` without building
    per-node services; the result is bit-identical to the facade path (a pinned
    engine invariant), so both branches produce the same series at equal N.
    """
    true_ratio = scenario.true_ratio()
    engine = _columnar_engine(scenario)
    if engine is None:
        return series.record(
            scenario.now, true_ratio, collect_ratio_estimates(scenario, min_rounds)
        )
    measured, _mean, avg_err, max_err = engine.estimate_stats(true_ratio, min_rounds)
    sample = EstimationErrorSample(
        time_ms=scenario.now,
        true_ratio=true_ratio,
        avg_error=avg_err,
        max_error=max_err,
        nodes_measured=measured,
    )
    series.samples.append(sample)
    return sample


class ScaleEstimationProbe(EstimationProbe):
    """``EstimationProbe`` with the O(N)-facade estimate scan replaced by the
    engine's streamed statistics on columnar scenarios (same scalars, same
    values — the engine path is pinned bit-identical to the facade path)."""

    def measure(self, scenario, payload: MetricPayload, context: ProbeContext) -> None:
        engine = _columnar_engine(scenario)
        if engine is None:
            return super().measure(scenario, payload, context)
        from repro.metrics.collector import percentile

        measured, mean_estimate, _avg, _max = engine.estimate_stats(
            scenario.true_ratio()
        )
        if measured and mean_estimate is not None:
            payload.set_scalar("est_mean", mean_estimate)
        series = context.error_series
        if series is None or not len(series):
            return
        avg_series = series.avg_error_series()
        final_avg = series.final_avg_error()
        final_max = series.final_max_error()
        if final_avg is not None:
            payload.set_scalar("est_err_avg_final", final_avg)
        if final_max is not None:
            payload.set_scalar("est_err_max_final", final_max)
        for q, label in context.series_percentiles:
            if avg_series:
                payload.set_scalar(f"est_err_avg_{label}", percentile(avg_series, q))
        payload.set_series(
            "est_err_avg",
            [
                (sample.time_ms, sample.avg_error)
                for sample in series.samples
                if sample.avg_error is not None
            ],
        )


def measure_in_degree(scenario, payload: MetricPayload) -> None:
    """The ``in_degree`` histogram plus summary scalars, without graph walks.

    Columnar scenarios stream the live→live in-degree counts straight off the
    view columns; object scenarios fall back to the overlay-graph distribution
    (scale cells on the object engine are small-N CI cells by construction).
    """
    engine = _columnar_engine(scenario)
    if engine is not None:
        histogram = engine.in_degree_histogram().to_histogram()
    else:
        from repro.metrics.graph import build_overlay_graph, in_degree_distribution

        graph = build_overlay_graph(scenario.overlay_graph())
        if not graph:
            return
        histogram = in_degree_distribution(graph)
    if not histogram:
        return
    stats = histogram_statistics(histogram)
    payload.set_histogram("in_degree", histogram)
    payload.set_scalar("indeg_mean", stats["mean"])
    payload.set_scalar("indeg_stddev", stats["stddev"])
    payload.set_scalar("indeg_max", stats["max"])


#: Reservoir capacity for the estimate-scatter figure: enough for stable
#: percentile read-outs, bounded regardless of N.
SCATTER_CAPACITY = 512


def sample_estimate_scatter(scenario) -> List[float]:
    """A uniform reservoir sample of per-node estimates (the scatter figure).

    The paper's per-node estimate scatter needs representative *raw* values,
    not just the mean/error aggregates — but keeping 10⁶ floats (or sorting
    them) defeats the streamed-metrics design. A fixed-capacity reservoir
    (:class:`~repro.columnar.streaming.ReservoirSample`) bounds that at
    :data:`SCATTER_CAPACITY` values regardless of N. Deterministic: the
    reservoir rng derives from the scenario's simulator seed. Returns ``[]``
    on non-columnar (or non-estimating) scenarios.
    """
    engine = _columnar_engine(scenario)
    if engine is None or not getattr(engine, "estimating", False):
        return []
    from repro.columnar.streaming import ReservoirSample

    reservoir = ReservoirSample(
        SCATTER_CAPACITY, rng=scenario.sim.derive_rng("estimate-scatter")
    )
    engine.estimate_reservoir(reservoir)
    return reservoir.values


def run_scale_cell(ctx: CellContext) -> MetricPayload:
    """Execute one horizon-scale matrix cell.

    Cell params understood (all optional): ``churn_fraction`` /
    ``churn_start_round`` (the Figure 5 workload), ``join_window_ms`` (Poisson
    join transient) and ``measure_every`` — the error-series sampling cadence in
    rounds (the last round is always sampled so the convergence tail exists).
    """
    cell = ctx.cell
    measure_every = max(1, int(cell.param("measure_every", 1)))
    timeline = cell_timeline(ctx)
    if cell.param("join_window_ms"):
        scenario = create_scenario(ctx.scenario_config())
    else:
        scenario = ctx.populated_scenario(ctx.n_public, ctx.n_private)
    installed = ctx.install_timeline(scenario, base=timeline)

    series = EstimationErrorSeries(name=cell.key)
    overhead_window = None
    half = max(1, cell.rounds // 2)
    for round_index in range(1, cell.rounds + 1):
        installed.advance_rounds(1)
        if round_index % measure_every == 0 or round_index == cell.rounds:
            record_error_sample(series, scenario)
        if round_index == half:
            overhead_window = scenario.traffic_snapshot()

    payload = measure_cell(
        scenario,
        series,
        overhead_window=overhead_window,
        probes=(CoreProbe(), ScaleEstimationProbe(), OverheadProbe()),
    )
    measure_in_degree(scenario, payload)
    if series.samples:
        payload.set_scalar(
            "est_nodes_measured", float(series.samples[-1].nodes_measured)
        )
    scatter = sample_estimate_scatter(scenario)
    if scatter:
        payload.set_series(
            "est_scatter", [(float(index), value) for index, value in enumerate(scatter)]
        )
    return payload


register_scenario(
    "scale",
    run_scale_cell,
    description=(
        "horizon-scale estimation cells (10⁵+ nodes): engine-native streamed "
        "metrics, no per-node object scans or graph walks"
    ),
    default_params={"measure_every": 5.0},
    paper_variants=(
        {"measure_every": 5.0},
        {"measure_every": 5.0, "churn_fraction": 0.01, "churn_start_round": 61.0},
    ),
    timeout_s=1800.0,
)


# ------------------------------------------------------------------ repro run scale


@dataclass
class ScaleVariantResult:
    """One harness variant (static or churn) at one system size."""

    label: str
    nodes: int
    rounds: int
    engine: str
    true_ratio: float
    est_mean: Optional[float]
    final_avg_error: Optional[float]
    final_max_error: Optional[float]
    nodes_measured: int
    packets_sent: int
    wall_seconds: float
    node_rounds_per_sec: float
    peak_rss_mb: float
    #: Reservoir-sampled per-node estimates (the scatter figure; empty on the
    #: object engine).
    est_scatter: List[float] = field(default_factory=list)


@dataclass
class ScaleRunResult:
    """`repro run scale`: the paper's static and churn figures at horizon scale."""

    nodes: int
    rounds: int
    engine: str
    seed: int
    variants: List[ScaleVariantResult] = field(default_factory=list)

    def to_text(self) -> str:
        from repro.experiments.report import format_table

        def _fmt(value: Optional[float], spec: str = ".4f") -> str:
            return "-" if value is None else format(value, spec)

        rows = [
            [
                v.label,
                v.nodes,
                v.rounds,
                f"{v.true_ratio:.3f}",
                _fmt(v.est_mean),
                _fmt(v.final_avg_error),
                _fmt(v.final_max_error),
                v.nodes_measured,
                v.packets_sent,
                f"{v.wall_seconds:.1f}",
                f"{v.node_rounds_per_sec:,.0f}",
                f"{v.peak_rss_mb:.0f}",
            ]
            for v in self.variants
        ]
        table = format_table(
            [
                "variant",
                "N",
                "rounds",
                "ω",
                "ω̂ mean",
                "err avg",
                "err max",
                "measured",
                "packets",
                "wall s",
                "node·rounds/s",
                "RSS MB",
            ],
            rows,
            title=(
                f"Horizon scale (engine={self.engine}, N={self.nodes:,}, "
                f"rounds={self.rounds}, seed={self.seed})"
            ),
        )
        scatter_lines = []
        for v in self.variants:
            if not v.est_scatter:
                continue
            from repro.metrics.collector import percentile

            quantiles = "  ".join(
                f"p{q}={percentile(v.est_scatter, q):.4f}"
                for q in (5, 25, 50, 75, 95)
            )
            scatter_lines.append(
                f"{v.label} estimate scatter ({len(v.est_scatter)} sampled): {quantiles}"
            )
        return table + (
            "\nStatic ratio and Figure 5 churn at horizon scale; error metrics are"
            "\nbit-identical to the per-node facade collection at equal N."
        ) + ("\n" + "\n".join(scatter_lines) if scatter_lines else "")


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_scale_experiment(
    nodes: int = 100_000,
    public_ratio: float = 0.2,
    rounds: int = 70,
    seed: int = 42,
    engine: str = "columnar",
    churn_fraction: float = 0.01,
    churn_start_round: Optional[int] = None,
    measure_every: int = 5,
    latency: str = "king",
) -> ScaleRunResult:
    """Run the paper's static-ratio and churn workloads at ``nodes`` system size.

    Defaults to the columnar engine — the whole point is N where the object graph
    does not fit the round budget — but accepts ``engine="object"`` for small-N
    cross-checks. ``churn_start_round`` defaults to the paper's t=61 when the
    horizon allows, else to the midpoint of the run.
    """
    if nodes < 2:
        raise ExperimentError("scale experiment needs at least 2 nodes")
    if rounds <= 0:
        raise ExperimentError("rounds must be positive")
    if churn_start_round is None:
        churn_start_round = 61 if rounds > 61 else max(1, rounds // 2)
    if churn_fraction > 0.0 and churn_start_round >= rounds:
        raise ExperimentError(
            f"churn_start_round={churn_start_round} is beyond rounds={rounds}"
        )
    measure_every = max(1, int(measure_every))
    n_public = max(1, int(round(nodes * public_ratio)))
    n_private = nodes - n_public

    result = ScaleRunResult(nodes=nodes, rounds=rounds, engine=engine, seed=seed)
    for label, fraction in (("static", 0.0), ("churn", churn_fraction)):
        if label == "churn" and churn_fraction <= 0.0:
            continue
        scenario = create_scenario(
            ScenarioConfig(
                protocol="croupier", seed=seed, latency=latency, engine=engine
            )
        )
        scenario.populate(n_public, n_private)
        timeline = estimation_timeline(
            n_public=n_public,
            n_private=n_private,
            churn_fraction=fraction,
            churn_start_round=churn_start_round,
        )
        installed = timeline.install(scenario, horizon_rounds=rounds)

        series = EstimationErrorSeries(name=f"scale-{label}")
        started = time.perf_counter()
        for round_index in range(1, rounds + 1):
            installed.advance_rounds(1)
            if round_index % measure_every == 0 or round_index == rounds:
                record_error_sample(series, scenario)
        wall = time.perf_counter() - started

        columnar = _columnar_engine(scenario)
        if columnar is not None:
            measured, mean_estimate, _avg, _max = columnar.estimate_stats(
                scenario.true_ratio()
            )
        else:
            estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
            measured = len(estimates)
            mean_estimate = sum(estimates) / measured if measured else None
        result.variants.append(
            ScaleVariantResult(
                label=label,
                nodes=scenario.live_count(),
                rounds=rounds,
                engine=engine,
                true_ratio=scenario.true_ratio(),
                est_mean=mean_estimate,
                final_avg_error=series.final_avg_error(),
                final_max_error=series.final_max_error(),
                nodes_measured=measured,
                packets_sent=int(scenario.network.packets_sent),
                wall_seconds=wall,
                node_rounds_per_sec=(nodes * rounds) / wall if wall > 0 else 0.0,
                peak_rss_mb=_peak_rss_mb(),
                est_scatter=sample_estimate_scatter(scenario),
            )
        )
    return result
