"""Figure 4: estimation accuracy for different public/private ratios.

The paper fixes the system size at 1000 nodes and sweeps the public fraction over
5 %, 10 %, 20 %, 33 %, 50 % and 80/90 %. Average error is essentially ratio-independent;
only very small public fractions (5 %) show a noticeably larger maximum error, caused by
the occasional private node that receives too few distinct estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.experiments.base import (
    EstimationExperimentSpec,
    EstimationRun,
    run_estimation_cell,
    run_estimation_scenario,
)
from repro.experiments.matrix import register_scenario
from repro.experiments.report import error_series_table, error_summary_table

#: The public/private ratios of Figure 4.
PAPER_RATIOS = (0.05, 0.1, 0.2, 0.33, 0.5, 0.9)

register_scenario(
    "ratio",
    run_estimation_cell,
    description="instant population at a swept public/private ratio (Figure 4)",
    default_params={"public_ratio": 0.2},
    paper_variants=[{"public_ratio": ratio} for ratio in PAPER_RATIOS],
)


@dataclass
class RatioSweepResult:
    """One estimation run per public/private ratio."""

    total_nodes: int
    runs: Dict[float, EstimationRun] = field(default_factory=dict)

    @property
    def series(self):
        return [self.runs[ratio].series for ratio in sorted(self.runs)]

    def final_avg_errors(self) -> Dict[float, Optional[float]]:
        return {ratio: run.series.final_avg_error() for ratio, run in self.runs.items()}

    def final_max_errors(self) -> Dict[float, Optional[float]]:
        return {ratio: run.series.final_max_error() for ratio, run in self.runs.items()}

    def to_text(self) -> str:
        parts = [
            error_summary_table(
                self.series, title="Figure 4: estimation error vs. public/private ratio"
            ),
            "",
            error_series_table(self.series, metric="avg", title="Figure 4(a): average error"),
            "",
            error_series_table(self.series, metric="max", title="Figure 4(b): maximum error"),
        ]
        return "\n".join(parts)


def run_ratio_sweep_experiment(
    ratios: Sequence[float] = PAPER_RATIOS,
    total_nodes: int = 1000,
    rounds: int = 200,
    alpha: int = 25,
    gamma: int = 50,
    join_window_ms: float = 10_000.0,
    seed: int = 42,
    latency: str = "king",
) -> RatioSweepResult:
    """Reproduce Figure 4 for the given ratios and system size."""
    result = RatioSweepResult(total_nodes=total_nodes)
    for ratio in ratios:
        n_public = max(1, int(round(total_nodes * ratio)))
        n_private = max(0, total_nodes - n_public)
        spec = EstimationExperimentSpec(
            label=f"ratio={ratio}",
            n_public=n_public,
            n_private=n_private,
            alpha=alpha,
            gamma=gamma,
            rounds=rounds,
            seed=seed,
            public_interarrival_ms=join_window_ms / max(1, n_public),
            private_interarrival_ms=(
                join_window_ms / max(1, n_private) if n_private else None
            ),
            latency=latency,
        )
        result.runs[ratio] = run_estimation_scenario(spec)
    return result
