"""A small, fast Croupier run used by the quickstart example and smoke tests."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.estimation import average_error, max_error
from repro.metrics.probes import collect_ratio_estimates
from repro.metrics.graph import (
    average_clustering_coefficient,
    average_path_length,
    build_overlay_graph,
)
from repro.metrics.partition import largest_cluster_fraction
from repro.workload.scenario import Scenario, ScenarioConfig


@dataclass
class QuickRunResult:
    """Summary of a short Croupier run."""

    live_nodes: int
    true_ratio: float
    mean_estimate: Optional[float]
    final_avg_error: Optional[float]
    final_max_error: Optional[float]
    biggest_cluster_fraction: float
    average_path_length: Optional[float]
    clustering_coefficient: Optional[float]
    sample_counts: Dict[str, int]

    def to_text(self) -> str:
        lines = [
            f"live nodes                : {self.live_nodes}",
            f"true public ratio         : {self.true_ratio:.3f}",
            f"mean estimated ratio      : "
            + (f"{self.mean_estimate:.3f}" if self.mean_estimate is not None else "n/a"),
            f"average estimation error  : "
            + (f"{self.final_avg_error:.4f}" if self.final_avg_error is not None else "n/a"),
            f"maximum estimation error  : "
            + (f"{self.final_max_error:.4f}" if self.final_max_error is not None else "n/a"),
            f"biggest cluster fraction  : {self.biggest_cluster_fraction:.3f}",
            f"average path length       : "
            + (
                f"{self.average_path_length:.2f}"
                if self.average_path_length is not None
                else "n/a"
            ),
            f"clustering coefficient    : "
            + (
                f"{self.clustering_coefficient:.3f}"
                if self.clustering_coefficient is not None
                else "n/a"
            ),
            f"samples drawn (public)    : {self.sample_counts.get('public', 0)}",
            f"samples drawn (private)   : {self.sample_counts.get('private', 0)}",
        ]
        return "\n".join(lines)


def quick_croupier_run(
    n_public: int = 20,
    n_private: int = 80,
    rounds: int = 60,
    seed: int = 1,
    samples: int = 200,
    latency: str = "constant",
) -> QuickRunResult:
    """Run a small Croupier system and summarise what the PSS delivers.

    This is intentionally laptop-sized (a couple of seconds); the figure-level
    experiments in this package are the paper-scale equivalents.
    """
    scenario = Scenario(ScenarioConfig(protocol="croupier", seed=seed, latency=latency))
    scenario.populate(n_public=n_public, n_private=n_private)
    scenario.run_rounds(rounds)

    estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
    true_ratio = scenario.true_ratio()
    mean_estimate = sum(estimates) / len(estimates) if estimates else None

    graph = build_overlay_graph(scenario.overlay_graph())
    metrics_rng = scenario.sim.derive_rng("quick-metrics")

    # Draw samples through the PSS API, spread over a handful of nodes so the reported
    # public/private mix reflects the service rather than one node's noise.
    sample_counts = {"public": 0, "private": 0}
    handles = scenario.live_handles()
    samplers = handles[: min(10, len(handles))]
    if samplers:
        per_node = max(1, samples // len(samplers))
        for handle in samplers:
            for address in handle.pss.sample_many(per_node):
                if address.is_public:
                    sample_counts["public"] += 1
                else:
                    sample_counts["private"] += 1

    return QuickRunResult(
        live_nodes=scenario.live_count(),
        true_ratio=true_ratio,
        mean_estimate=mean_estimate,
        final_avg_error=average_error(true_ratio, estimates),
        final_max_error=max_error(true_ratio, estimates),
        biggest_cluster_fraction=largest_cluster_fraction(graph),
        average_path_length=average_path_length(graph, sample_sources=30, rng=metrics_rng),
        clustering_coefficient=average_clustering_coefficient(graph),
        sample_counts=sample_counts,
    )
