"""Append-only cell-result journals: the checkpoint/resume layer of the matrix runner.

A journal is a JSONL file the runner appends to as cells reach a terminal state, so a
matrix run killed at any point leaves a usable record of everything it finished. The
first line is a header binding the journal to its spec — a digest over the spec's
canonical JSON plus every expanded cell key — and each subsequent line is one cell
record carrying the full metric payload, its integrity digest, and the execution
diagnostics (pid, attempts, fault history, wall-clock duration) that stay out of the
aggregate.

``repro matrix --resume <journal>`` reloads the journal, verifies the digest matches
the spec being run (a resumed journal from a *different* spec is an error, not a
silent partial run), replays terminal cells from their journalled payloads and
executes only the rest. Because cell results are pure functions of the root seed and
the cell key, and :meth:`~repro.metrics.payload.MetricPayload.from_json_dict` exactly
inverts :meth:`~repro.metrics.payload.MetricPayload.to_json_dict`, the resumed
aggregate is byte-identical to an uninterrupted run — CI enforces exactly that.

Tolerance: a process killed mid-write leaves a truncated final line; the loader drops
it (the cell simply re-runs). ``ok`` and ``failed`` (deterministic exception) records
are terminal; ``degraded`` cells — retries exhausted on transient faults — are NOT
treated as terminal on resume, because a fresh run may well succeed where a flaky
machine gave up.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.matrix import MatrixSpec

#: Schema tag of the journal header line.
JOURNAL_SCHEMA = "repro-matrix-journal-v1"

#: Cell statuses that a resume may replay instead of re-running. ``degraded`` is
#: deliberately absent: transient-fault exhaustion is worth another try on resume.
TERMINAL_STATUSES = ("ok", "failed")


def spec_digest(spec: MatrixSpec) -> str:
    """Content digest binding a journal to a spec.

    Hashes the spec's canonical JSON *and* the expanded cell keys, so any change that
    alters the grid — axis values, variant mode, a timeline preset edit (cell keys
    embed timeline digests) — invalidates old journals instead of half-resuming them.
    """
    canonical = json.dumps(
        {
            "spec": spec.spec_json_dict(),
            "cells": [cell.key for cell in spec.cells()],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


class JournalWriter:
    """Appends cell records to a journal file, one flushed JSON line per record.

    With ``resume=False`` (a fresh run) any pre-existing file is truncated and a new
    header written; with ``resume=True`` the writer appends after the journal's
    current contents — how a resumed run keeps extending the journal it resumed from.
    """

    def __init__(
        self, path: Path, spec: MatrixSpec, total_cells: int, resume: bool = False
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        digest = spec_digest(spec)
        fresh = (
            not resume or not self.path.exists() or self.path.stat().st_size == 0
        )
        if resume and not fresh:
            _repair_truncated_tail(self.path)
        mode = "a" if resume else "w"
        self._handle: Optional[IO[str]] = open(self.path, mode, encoding="utf-8")
        if fresh:
            self._write_line(
                {
                    "schema": JOURNAL_SCHEMA,
                    "spec_digest": digest,
                    "root_seed": spec.root_seed,
                    "total_cells": total_cells,
                }
            )

    def _write_line(self, record: Dict) -> None:
        if self._handle is None:  # pragma: no cover - write-after-close is a bug
            raise ExperimentError(f"journal {self.path} is closed")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush per record: the whole point is surviving an abrupt kill.
        self._handle.flush()

    def record_cell(
        self,
        key: str,
        seed: int,
        status: str,
        payload_json: Optional[Dict] = None,
        payload_digest: Optional[str] = None,
        error: Optional[str] = None,
        duration_s: float = 0.0,
        pid: Optional[int] = None,
        attempts: int = 1,
        faults: Optional[List[str]] = None,
    ) -> None:
        """Append one finished cell (terminal or degraded) to the journal."""
        record: Dict[str, object] = {
            "kind": "cell",
            "key": key,
            "seed": seed,
            "status": status,
            "duration_s": round(duration_s, 6),
            "pid": pid,
            "attempts": attempts,
            "faults": list(faults or ()),
        }
        if payload_json is not None:
            record["payload"] = payload_json
        if payload_digest is not None:
            record["payload_digest"] = payload_digest
        if error is not None:
            record["error"] = error
        self._write_line(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _repair_truncated_tail(path: Path) -> None:
    """Drop a truncated (mid-write-killed) final line before appending to a journal.

    Without this, resume-in-place would append its first record straight onto the
    half-written line, corrupting both. A missing final newline after a *complete*
    line is repaired the same way the loader reads it: the line is kept.
    """
    text = path.read_text(encoding="utf-8")
    if not text:
        return
    lines = text.splitlines()
    try:
        json.loads(lines[-1])
    except json.JSONDecodeError:
        lines = lines[:-1]
    repaired = "".join(line + "\n" for line in lines)
    if repaired != text:
        path.write_text(repaired, encoding="utf-8")


def load_journal(path: Path) -> Tuple[Dict[str, object], Dict[str, Dict]]:
    """Read a journal: ``(header, {cell key: last record})``.

    A truncated trailing line (the run was killed mid-write) is dropped silently; a
    malformed line anywhere *else* is an error — that's corruption, not a kill. When
    a cell appears more than once (a resumed run re-ran a degraded cell), the last
    record wins.
    """
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"journal not found: {path}")
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ExperimentError(f"journal {path} is empty")

    records: List[Dict] = []
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # truncated by a mid-write kill; the cell just re-runs
            raise ExperimentError(
                f"journal {path} line {index + 1} is corrupt (not trailing truncation)"
            ) from None
        if not isinstance(record, dict):
            raise ExperimentError(f"journal {path} line {index + 1} is not an object")
        records.append(record)

    if not records:
        raise ExperimentError(f"journal {path} holds no readable records")
    header = records[0]
    if header.get("schema") != JOURNAL_SCHEMA:
        raise ExperimentError(
            f"journal {path} has schema {header.get('schema')!r}; "
            f"expected {JOURNAL_SCHEMA!r}"
        )

    cells: Dict[str, Dict] = {}
    for record in records[1:]:
        if record.get("kind") != "cell" or "key" not in record:
            continue
        cells[str(record["key"])] = record
    return header, cells


def load_resumable(path: Path, spec: MatrixSpec) -> Dict[str, Dict]:
    """The journal's terminal cell records, keyed by cell key, verified against ``spec``.

    Raises when the journal was written for a different spec (digest mismatch) — the
    derived seeds would differ and a mixed aggregate would be silently wrong. Records
    with non-terminal statuses (``degraded``) are excluded so resume re-runs them.
    """
    header, cells = load_journal(path)
    expected = spec_digest(spec)
    recorded = header.get("spec_digest")
    if recorded != expected:
        raise ExperimentError(
            f"journal {path} was written for a different spec "
            f"(journal digest {recorded}, this spec {expected}); "
            "resume requires the identical matrix spec"
        )
    known_keys = {cell.key for cell in spec.cells()}
    return {
        key: record
        for key, record in cells.items()
        if key in known_keys and record.get("status") in TERMINAL_STATUSES
    }
