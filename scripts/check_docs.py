#!/usr/bin/env python3
"""Documentation front-door checker, wired into CI before the columnar gates.

Two classes of rot this catches:

1. **Dead links** — every relative link (and ``#anchor`` fragment) in
   ``README.md`` and ``docs/*.md`` must resolve: the target file exists inside
   the repo, and the fragment matches a heading under GitHub's slugification
   (lowercase, punctuation stripped, spaces to hyphens, ``-N`` suffixes for
   duplicates). External ``http(s)://`` links are left alone — CI must not
   depend on the network.

2. **Phantom CLI flags** — any ``--flag`` appearing on a ``repro ...`` /
   ``python -m repro ...`` invocation inside a fenced code block is checked
   against the real argparse tree (``repro.cli.build_parser()``), per
   subcommand. Documented flags that the parser does not accept fail the
   build; the docs can never drift ahead of (or behind) the CLI again.

Exit status: 0 clean, 1 findings (one ``path:line: message`` per finding).
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
FLAG_RE = re.compile(r"(--[a-z][a-z0-9-]*)")
INVOCATION_RE = re.compile(r"(?:^|\s|\$ )(?:python -m )?repro\s+([a-z-]+)\b")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.is_file()]


def github_slugs(lines: List[str]) -> Set[str]:
    """Slugs GitHub generates for a file's headings (duplicate-suffix aware)."""
    seen: Dict[str, int] = {}
    slugs: Set[str] = set()
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if not match:
            continue
        text = match.group(2)
        # Strip inline markdown: links keep their text, code/emphasis markers drop.
        text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
        text = re.sub(r"[`*_]", "", text)
        slug = re.sub(r"[^\w\s-]", "", text.strip().lower(), flags=re.UNICODE)
        slug = re.sub(r"\s", "-", slug)
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        slugs.add(slug if count == 0 else f"{slug}-{count}")
    return slugs


def check_links(path: Path, lines: List[str], slug_cache: Dict[Path, Set[str]],
                problems: List[str]) -> None:
    in_fence = False
    for lineno, line in enumerate(lines, start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            raw_path, _, fragment = target.partition("#")
            if raw_path:
                resolved = (path.parent / raw_path).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno}: dead link "
                        f"target {target!r}"
                    )
                    continue
                if resolved.is_dir() or resolved.suffix.lower() != ".md":
                    if fragment:
                        problems.append(
                            f"{path.relative_to(REPO_ROOT)}:{lineno}: anchor on "
                            f"non-markdown target {target!r}"
                        )
                    continue
            else:
                resolved = path.resolve()
            if fragment:
                if resolved not in slug_cache:
                    slug_cache[resolved] = github_slugs(
                        resolved.read_text(encoding="utf-8").splitlines()
                    )
                if fragment.lower() not in slug_cache[resolved]:
                    problems.append(
                        f"{path.relative_to(REPO_ROOT)}:{lineno}: dead anchor "
                        f"{target!r} (no matching heading)"
                    )


def cli_flag_map() -> Dict[str, Set[str]]:
    """Subcommand -> set of accepted long flags, introspected from argparse."""
    parser = build_parser()
    flags: Dict[str, Set[str]] = {"": {
        opt for action in parser._actions for opt in action.option_strings
        if opt.startswith("--")
    }}
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                flags[name] = {
                    opt
                    for sub_action in sub._actions
                    for opt in sub_action.option_strings
                    if opt.startswith("--")
                }
    return flags


def check_cli_flags(path: Path, lines: List[str], flags: Dict[str, Set[str]],
                    problems: List[str]) -> None:
    in_fence = False
    command = ""
    for lineno, line in enumerate(lines, start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            command = ""
            continue
        if not in_fence:
            continue
        invocation = INVOCATION_RE.search(line)
        if invocation:
            command = invocation.group(1)
        elif not line.rstrip().endswith("\\") and not line.startswith((" ", "\t")):
            # A fresh non-continuation, non-indented line ends the invocation.
            if not line.strip().startswith("--"):
                command = ""
        if not command or command not in flags:
            continue
        known = flags[command] | flags[""]
        for flag in FLAG_RE.findall(line):
            if flag not in known:
                problems.append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}: flag {flag!r} is "
                    f"not accepted by `repro {command}`".replace("repro ` ", "repro`")
                )


def main() -> int:
    problems: List[str] = []
    slug_cache: Dict[Path, Set[str]] = {}
    flags = cli_flag_map()
    files = doc_files()
    for path in files:
        lines = path.read_text(encoding="utf-8").splitlines()
        check_links(path, lines, slug_cache, problems)
        check_cli_flags(path, lines, flags, problems)
    if problems:
        for problem in problems:
            print(problem)
        print(f"check_docs: {len(problems)} problem(s) in {len(files)} file(s)")
        return 1
    print(f"check_docs: OK ({len(files)} markdown file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
