#!/usr/bin/env python
"""Gate the columnar engine against the object backend on one mixed aggregate.

Reads a ``matrix_aggregate.json`` produced with ``--engines object,columnar``,
pairs every columnar cell group with its object twin (same group key minus the
``engine=columnar`` part), and requires:

* both engines measured estimates (``est_mean`` present on both sides);
* the group-mean estimates agree within ``--tolerance`` (absolute);
* both engines' converged average errors stay below ``--max-error``.

The two engines are *statistically* equivalent, not bit-identical: the columnar
engine runs a round-synchronous model (no per-message latency, ring estimator
cache), so their RNG streams differ by construction. This check is the CI
contract that the model simplifications do not move the estimator.

Exit status 0 on success; 1 with a per-group report on any violation.

Usage::

    python scripts/check_columnar_equivalence.py artifacts/ci-columnar-w1/matrix_aggregate.json
"""

from __future__ import annotations

import argparse
import json
import sys

ENGINE_PART = "engine=columnar"


def split_groups(groups):
    """-> (columnar_groups, object_groups) keyed by the engine-less group key."""
    columnar, plain = {}, {}
    for name, metrics in groups.items():
        parts = name.split(";")
        if ENGINE_PART in parts:
            stem = ";".join(part for part in parts if part != ENGINE_PART)
            columnar[stem] = (name, metrics)
        else:
            plain[name] = (name, metrics)
    return columnar, plain


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("aggregate", help="matrix_aggregate.json with both engines")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="max |est_mean(columnar) - est_mean(object)| per group (default 0.05)",
    )
    parser.add_argument(
        "--max-error",
        type=float,
        default=0.15,
        help="max converged est_err_avg_final for either engine (default 0.15)",
    )
    args = parser.parse_args(argv)

    with open(args.aggregate, "r", encoding="utf-8") as handle:
        aggregate = json.load(handle)
    groups = aggregate.get("groups", {})
    failed = aggregate.get("failed", [])
    if failed:
        print(f"FAIL: aggregate has {len(failed)} failed cells: {failed}")
        return 1

    columnar, plain = split_groups(groups)
    if not columnar:
        print("FAIL: no engine=columnar groups in the aggregate")
        return 1

    problems = []
    compared = 0
    for stem, (col_name, col_metrics) in sorted(columnar.items()):
        if stem not in plain:
            problems.append(f"{col_name}: no object-engine twin group {stem!r}")
            continue
        obj_name, obj_metrics = plain[stem]
        col_mean = col_metrics.get("est_mean", {}).get("mean")
        obj_mean = obj_metrics.get("est_mean", {}).get("mean")
        if col_mean is None or obj_mean is None:
            problems.append(
                f"{stem}: est_mean missing (columnar={col_mean}, object={obj_mean})"
            )
            continue
        compared += 1
        delta = abs(col_mean - obj_mean)
        status = "ok" if delta <= args.tolerance else "FAIL"
        print(
            f"{status}: {stem}\n"
            f"    est_mean columnar={col_mean:.4f} object={obj_mean:.4f} "
            f"delta={delta:.4f} (tolerance {args.tolerance})"
        )
        if delta > args.tolerance:
            problems.append(f"{stem}: est_mean delta {delta:.4f} > {args.tolerance}")
        for label, metrics in (("columnar", col_metrics), ("object", obj_metrics)):
            err = metrics.get("est_err_avg_final", {}).get("mean")
            if err is None:
                problems.append(f"{stem}: {label} has no est_err_avg_final")
            elif err > args.max_error:
                problems.append(
                    f"{stem}: {label} est_err_avg_final {err:.4f} > {args.max_error}"
                )

    if compared == 0:
        problems.append("no comparable (columnar, object) group pairs found")
    if problems:
        print("\ncolumnar-vs-object equivalence FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nequivalence OK: {compared} group pair(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
