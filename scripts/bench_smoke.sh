#!/usr/bin/env bash
# Perf-trajectory smoke run: tier-1 tests plus a <=60s subset of the hot-path
# micro-benchmarks, writing BENCH_hotpaths.json at the repository root.
#
# Every PR should leave a fresh trajectory point behind:
#
#   ./scripts/bench_smoke.sh            # quick scenario (300 nodes x 30 rounds)
#   BENCH_FULL=1 ./scripts/bench_smoke.sh   # full acceptance scenario (1000 x 100)
#   BENCH_SKIP_TESTS=1 ./scripts/bench_smoke.sh   # bench only (CI runs tests itself)
#   BENCH_OUTPUT=artifacts/bench_smoke.json ./scripts/bench_smoke.sh
#       # write elsewhere — CI uses this so a quick run never overwrites the
#       # committed full-mode BENCH_hotpaths.json (regenerate that deliberately
#       # with `python benchmarks/run_bench.py`)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [ "${BENCH_SKIP_TESTS:-0}" != "1" ]; then
    echo "== tier-1 tests =="
    python -m pytest tests/ -x -q
fi

echo
echo "== hot-path benchmarks =="
ARGS=()
if [ -n "${BENCH_OUTPUT:-}" ]; then
    ARGS+=(--output "$BENCH_OUTPUT")
fi
if [ "${BENCH_FULL:-0}" = "1" ]; then
    python benchmarks/run_bench.py "${ARGS[@]}"
else
    python benchmarks/run_bench.py --quick "${ARGS[@]}"
fi
