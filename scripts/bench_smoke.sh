#!/usr/bin/env bash
# Perf-trajectory smoke run: tier-1 tests plus a <=60s subset of the hot-path
# micro-benchmarks, writing BENCH_hotpaths.json at the repository root.
#
# Every PR should leave a fresh trajectory point behind:
#
#   ./scripts/bench_smoke.sh            # quick scenario (300 nodes x 30 rounds)
#   BENCH_FULL=1 ./scripts/bench_smoke.sh   # full acceptance scenario (1000 x 100)
#   BENCH_SKIP_TESTS=1 ./scripts/bench_smoke.sh   # bench only (CI runs tests itself)
#   BENCH_OUTPUT=artifacts/bench_smoke.json ./scripts/bench_smoke.sh
#       # write elsewhere — CI uses this so a quick run never overwrites the
#       # committed full-mode BENCH_hotpaths.json (regenerate that deliberately
#       # with `python benchmarks/run_bench.py`)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

if [ "${BENCH_SKIP_TESTS:-0}" != "1" ]; then
    echo "== tier-1 tests =="
    python -m pytest tests/ -x -q
fi

echo
echo "== hot-path benchmarks =="
ARGS=()
if [ -n "${BENCH_OUTPUT:-}" ]; then
    ARGS+=(--output "$BENCH_OUTPUT")
fi
if [ "${BENCH_FULL:-0}" = "1" ]; then
    python benchmarks/run_bench.py "${ARGS[@]}"
else
    python benchmarks/run_bench.py --quick "${ARGS[@]}"
fi

echo
echo "== determinism-lint trajectory (cold vs warm cache) =="
# The lint gate runs on every CI invocation, so its wall clock is a perf
# trajectory of its own: a cold full-repo strict pass, then a warm repeat
# against the cache the cold pass just wrote (fresh temp path — the developer's
# working cache is not touched). Injected into the bench JSON next to the
# simulator hot paths so regressions show up in the same artifact.
python - "${BENCH_OUTPUT:-BENCH_hotpaths.json}" <<'PYEOF'
import json, re, subprocess, sys, tempfile, time
from pathlib import Path

out = Path(sys.argv[1])
with tempfile.TemporaryDirectory() as tmp:
    cmd = [sys.executable, "-m", "repro", "lint", "src", "--strict",
           "--cache", "--cache-path", str(Path(tmp) / "lint-cache.json")]
    timings = []
    for label in ("cold", "warm"):
        start = time.perf_counter()
        proc = subprocess.run(cmd, capture_output=True, text=True)
        elapsed = time.perf_counter() - start
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"strict lint failed during {label} bench run")
        timings.append(elapsed)
        print(f"{label}: {elapsed:.3f}s")
cold_s, warm_s = timings
files = int(re.search(r"in (\d+) file\(s\)", proc.stdout).group(1))
report = json.loads(out.read_text())
report["lint"] = {
    "files": files,
    "lint_cold_s": round(cold_s, 3),
    "lint_warm_s": round(warm_s, 3),
    "lint_files_per_s": round(files / cold_s, 1),
    "warm_speedup": round(cold_s / warm_s, 1),
}
out.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
print(f"lint trajectory: {files} files, cold {cold_s:.2f}s, warm {warm_s:.2f}s "
      f"-> updated {out}")
PYEOF
