#!/usr/bin/env bash
# Local mirror of the CI gate (.github/workflows/ci.yml): byte-compile the package,
# run the tier-1 tests, the <=60s bench smoke, a mini experiment-matrix whose
# aggregate must be byte-identical between a 4-worker and a 1-worker run AND to the
# committed baseline aggregate, a workload-timeline mini-matrix with the same
# 4-vs-1 parity, a `--dry-run` cell-key stability diff, a chaos smoke (injected
# worker crashes/hangs/corruption must recover to the identical bytes), a
# kill-and-resume smoke (truncated journal + --resume must rebuild the identical
# bytes), and a cross-PR regression diff against the committed baseline.
#
#   ./scripts/ci.sh
#
# Runs from any checkout without installing the package (uses `python -m repro`).
#
# The baseline (artifacts/baseline/matrix_aggregate.json) is committed; it is the
# exact aggregate the mini-matrix produced when it was last deliberately changed.
# Regenerate it ONLY for an intentional semantic change, with:
#
#   PYTHONPATH=src python -m repro matrix \
#       --scenarios static --protocols croupier,cyclon --sizes 60 \
#       --seeds 2 --rounds 10 --latency constant \
#       --nat-mixtures none,paper --upnp-fractions 0,0.2 \
#       --workers 1 --out artifacts/baseline
#   git add -f artifacts/baseline/matrix_aggregate.json
#
# The committed cell list (artifacts/baseline/matrix_cells.txt) pins the legacy and
# timeline cell keys, derived seeds and timeline digests; regenerate it together
# with the baseline whenever a key change is intentional:
#
#   { PYTHONPATH=src python -m repro matrix \
#         --scenarios static --protocols croupier,cyclon --sizes 60 \
#         --seeds 2 --rounds 10 --latency constant \
#         --nat-mixtures none,paper --upnp-fractions 0,0.2 --dry-run;
#     PYTHONPATH=src python -m repro matrix \
#         --scenarios static --protocols croupier --sizes 40 \
#         --seeds 2 --rounds 70 --latency constant \
#         --timelines paper-churn --dry-run; } 2>/dev/null \
#     > artifacts/baseline/matrix_cells.txt
#   git add -f artifacts/baseline/matrix_cells.txt
#
# The columnar golden (artifacts/baseline/columnar_aggregate.json) pins the
# columnar engine's results (and byte-parity with the object cells of the same
# grid). Regenerate it ONLY for an intentional engine-semantics change, with:
#
#   PYTHONPATH=src python -m repro matrix \
#       --scenarios static --protocols croupier --sizes 60 \
#       --seeds 2 --rounds 40 --latency constant \
#       --engines object,columnar --workers 1 --out artifacts/ci-columnar-w1
#   cp artifacts/ci-columnar-w1/matrix_aggregate.json \
#      artifacts/baseline/columnar_aggregate.json
#   git add -f artifacts/baseline/columnar_aggregate.json
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo
echo "== determinism lint (strict, cached, 30s budget) =="
# AST-based determinism & invariant gate (docs/determinism_lint.md). Runs in
# seconds and before tier-1 so a seeding/ordering violation fails fast with a
# file:line finding instead of a byte-diff three stages later. Strict mode also
# fails on stale suppressions, stale allowlist entries and non-canonical
# allowlist paths. The incremental cache (.repro-lint-cache.json, git-ignored)
# makes repeat runs near-instant; the budget below is a hard wall-clock gate on
# the FULL-repo strict run even from a cold cache — busting it means the lint
# pass itself regressed, which would erode its run-before-everything value.
LINT_START=$(date +%s)
python -m repro lint src --strict --cache
LINT_ELAPSED=$(( $(date +%s) - LINT_START ))
echo "lint wall clock: ${LINT_ELAPSED}s (budget 30s)"
if [ "$LINT_ELAPSED" -gt 30 ]; then
    echo "ERROR: strict lint exceeded its 30s full-repo budget" >&2
    exit 1
fi

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== docs check (links, anchors, CLI flags) =="
# README.md + docs/*.md: every relative link and #anchor must resolve, and
# every --flag on a `repro ...` invocation in a fenced block must exist in the
# argparse tree (scripts/check_docs.py). No network access — external links
# are not fetched.
python scripts/check_docs.py

echo
echo "== columnar tests on the pure-array fallback (REPRO_NO_NUMPY=1) =="
# The full tier-1 suite above runs with whatever backend is installed; this
# re-runs the columnar-facing tests with numpy vectorisation disabled, so both
# execution paths stay green locally. CI additionally runs the whole suite in a
# numpy-less job (.github/workflows/ci.yml, job `no-numpy`).
REPRO_NO_NUMPY=1 python -m pytest -x -q \
    tests/test_columnar.py tests/test_streaming_histograms.py

echo
echo "== bench smoke (perf trajectory) =="
# The smoke run is quick-mode; write it under artifacts/ so it never overwrites
# the committed full-mode BENCH_hotpaths.json.
BENCH_SKIP_TESTS=1 BENCH_OUTPUT=artifacts/bench_smoke.json ./scripts/bench_smoke.sh

echo
echo "== mini-matrix smoke: 4-vs-1 worker parity (incl. NAT-mixture + UPnP cells) =="
MATRIX_ARGS=(--scenarios static --protocols croupier,cyclon --sizes 60
             --seeds 2 --rounds 10 --latency constant
             --nat-mixtures none,paper --upnp-fractions 0,0.2)
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 4 --out artifacts/ci-matrix-w4
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 1 --out artifacts/ci-matrix-w1
cmp artifacts/ci-matrix-w4/matrix_aggregate.json \
    artifacts/ci-matrix-w1/matrix_aggregate.json
echo "parity OK: 4-worker aggregate is byte-identical to the sequential run"

echo
echo "== timeline mini-matrix: paper-churn preset, 4-vs-1 worker parity =="
TIMELINE_ARGS=(--scenarios static --protocols croupier --sizes 40
               --seeds 2 --rounds 70 --latency constant
               --timelines paper-churn)
python -m repro matrix "${TIMELINE_ARGS[@]}" --workers 4 --out artifacts/ci-timeline-w4
python -m repro matrix "${TIMELINE_ARGS[@]}" --workers 1 --out artifacts/ci-timeline-w1
cmp artifacts/ci-timeline-w4/matrix_aggregate.json \
    artifacts/ci-timeline-w1/matrix_aggregate.json
echo "parity OK: timeline cells are byte-identical across worker counts"

echo
echo "== columnar engine: equivalence vs object backend + golden byte-parity =="
# The same small grid on both engines. The columnar aggregate must be
# byte-identical across worker counts, across the numpy and pure-array
# backends, and to the committed golden; the estimator means of the two
# engines must agree within tolerance (the engines are statistically
# equivalent, not bit-identical — the columnar model is round-synchronous).
COLUMNAR_ARGS=(--scenarios static --protocols croupier --sizes 60
               --seeds 2 --rounds 40 --latency constant
               --engines object,columnar)
python -m repro matrix "${COLUMNAR_ARGS[@]}" --workers 4 --out artifacts/ci-columnar-w4
python -m repro matrix "${COLUMNAR_ARGS[@]}" --workers 1 --out artifacts/ci-columnar-w1
cmp artifacts/ci-columnar-w4/matrix_aggregate.json \
    artifacts/ci-columnar-w1/matrix_aggregate.json
echo "parity OK: columnar cells are byte-identical across worker counts"
REPRO_NO_NUMPY=1 python -m repro matrix "${COLUMNAR_ARGS[@]}" --workers 1 \
    --out artifacts/ci-columnar-nonumpy
cmp artifacts/ci-columnar-w1/matrix_aggregate.json \
    artifacts/ci-columnar-nonumpy/matrix_aggregate.json
echo "backend OK: numpy and pure-array fallback runs are byte-identical"
cmp artifacts/baseline/columnar_aggregate.json \
    artifacts/ci-columnar-w1/matrix_aggregate.json
echo "golden OK: columnar aggregate matches the committed golden byte for byte"
python scripts/check_columnar_equivalence.py \
    artifacts/ci-columnar-w1/matrix_aggregate.json

echo
echo "== columnar scale smoke: one 10^5-node cell inside the wall-clock budget =="
# A single 100k-node Croupier cell through the full matrix stack (scale kind,
# engine-native streamed metrics). The 300s budget is ~8x the measured wall
# time on the CI container class; busting it is a perf regression, not noise.
timeout 300 python -m repro matrix --scenarios scale --protocols croupier \
    --engines columnar --sizes 100000 --seeds 1 --rounds 5 --latency constant \
    --workers 1 --heartbeat 0 --out artifacts/ci-scale
python - <<'PYEOF'
import json
groups = json.load(open("artifacts/ci-scale/matrix_aggregate.json"))["groups"]
[(name, metrics)] = groups.items()
mean = metrics["est_mean"]["mean"]
measured = metrics["est_nodes_measured"]["mean"]
assert measured == 100000.0, f"expected 100000 measured nodes, got {measured}"
assert abs(mean - 0.2) < 0.05, f"estimate off at scale: {mean}"
print(f"scale OK: {name}\n  est_mean={mean:.4f} over {measured:.0f} nodes")
PYEOF

echo
echo "== cell-key stability: dry-run vs committed cell list =="
# Legacy cell keys, derived seeds and timeline digests must never drift silently —
# a drift re-seeds every archived cell. Regeneration recipe: see the header.
{ python -m repro matrix "${MATRIX_ARGS[@]}" --dry-run;
  python -m repro matrix "${TIMELINE_ARGS[@]}" --dry-run; } 2>/dev/null \
    | diff - artifacts/baseline/matrix_cells.txt
echo "cell keys OK: keys, seeds and timeline digests match the committed list"

echo
echo "== chaos smoke: injected crashes/hangs/corruption, byte-parity with baseline =="
# Every cell suffers at most one seed-derived fault and is retried on a fresh
# worker; the recovered aggregate must be byte-identical to the committed
# baseline — fault tolerance may never change results, only survive faults.
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 2 \
    --chaos 'seed=7,crash=0.3,hang=0.1,corrupt=0.3' --cell-timeout 20 \
    --heartbeat 0 --out artifacts/ci-matrix-chaos
cmp artifacts/baseline/matrix_aggregate.json \
    artifacts/ci-matrix-chaos/matrix_aggregate.json
echo "chaos OK: aggregate recovered byte-identical under injected faults"

echo
echo "== resume smoke: truncated journal --resume, byte-parity with baseline =="
# Simulate a mid-run kill: keep the journal header plus the first five cell
# records (the sixth truncated mid-write), resume in place, and require the
# rebuilt aggregate to match the committed baseline byte for byte.
JOURNAL=artifacts/ci-matrix-w1/matrix_journal.jsonl
{ head -n 6 "$JOURNAL"; tail -n +7 "$JOURNAL" | head -c 25; } \
    > artifacts/ci-matrix-resume.jsonl
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 2 \
    --resume artifacts/ci-matrix-resume.jsonl \
    --heartbeat 0 --out artifacts/ci-matrix-resumed
cmp artifacts/baseline/matrix_aggregate.json \
    artifacts/ci-matrix-resumed/matrix_aggregate.json
echo "resume OK: killed-then-resumed aggregate is byte-identical to the baseline"

echo
echo "== baseline gate: cross-PR diff against the committed aggregate =="
# The mini-matrix is a pure function of its spec, so the aggregate must be
# byte-identical to the committed baseline...
cmp artifacts/baseline/matrix_aggregate.json \
    artifacts/ci-matrix-w1/matrix_aggregate.json
echo "baseline bytes OK: aggregate is byte-identical to the committed baseline"
# ...and the semantic gate (group means, 5% tolerance; histogram shapes, KS
# distance 0.1) keeps reporting what a deliberate regeneration would change.
python -m repro report --diff artifacts/baseline/matrix_aggregate.json \
                              artifacts/ci-matrix-w1/matrix_aggregate.json
echo "baseline gate OK: no regressions vs artifacts/baseline/matrix_aggregate.json"

echo
echo "CI gate passed."
