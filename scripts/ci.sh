#!/usr/bin/env bash
# Local mirror of the CI gate (.github/workflows/ci.yml): byte-compile the package,
# run the tier-1 tests, the <=60s bench smoke, and a mini experiment-matrix whose
# aggregate must be byte-identical between a 4-worker and a 1-worker run.
#
#   ./scripts/ci.sh
#
# Runs from any checkout without installing the package (uses `python -m repro`).
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== bench smoke (perf trajectory) =="
BENCH_SKIP_TESTS=1 ./scripts/bench_smoke.sh

echo
echo "== mini-matrix smoke: 4-vs-1 worker parity =="
MATRIX_ARGS=(--scenarios static --protocols croupier,cyclon --sizes 60
             --seeds 2 --rounds 10 --latency constant)
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 4 --out artifacts/ci-matrix-w4
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 1 --out artifacts/ci-matrix-w1
cmp artifacts/ci-matrix-w4/matrix_aggregate.json \
    artifacts/ci-matrix-w1/matrix_aggregate.json
echo "parity OK: 4-worker aggregate is byte-identical to the sequential run"

echo
echo "== report --diff smoke: aggregate self-comparison must show zero regressions =="
python -m repro report --diff artifacts/ci-matrix-w4/matrix_aggregate.json \
                              artifacts/ci-matrix-w1/matrix_aggregate.json
echo "trend gate OK: self-diff reports no regressions"

echo
echo "CI gate passed."
