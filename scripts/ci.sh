#!/usr/bin/env bash
# Local mirror of the CI gate (.github/workflows/ci.yml): byte-compile the package,
# run the tier-1 tests, the <=60s bench smoke, a mini experiment-matrix whose
# aggregate must be byte-identical between a 4-worker and a 1-worker run, and a
# cross-PR regression diff against the committed baseline aggregate.
#
#   ./scripts/ci.sh
#
# Runs from any checkout without installing the package (uses `python -m repro`).
#
# The baseline (artifacts/baseline/matrix_aggregate.json) is committed; it is the
# exact aggregate the mini-matrix produced when it was last deliberately changed.
# Regenerate it ONLY for an intentional semantic change, with:
#
#   PYTHONPATH=src python -m repro matrix \
#       --scenarios static --protocols croupier,cyclon --sizes 60 \
#       --seeds 2 --rounds 10 --latency constant \
#       --nat-mixtures none,paper --upnp-fractions 0,0.2 \
#       --workers 1 --out artifacts/baseline
#   git add -f artifacts/baseline/matrix_aggregate.json
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== compileall =="
python -m compileall -q src

echo
echo "== tier-1 tests =="
python -m pytest -x -q

echo
echo "== bench smoke (perf trajectory) =="
BENCH_SKIP_TESTS=1 ./scripts/bench_smoke.sh

echo
echo "== mini-matrix smoke: 4-vs-1 worker parity (incl. NAT-mixture + UPnP cells) =="
MATRIX_ARGS=(--scenarios static --protocols croupier,cyclon --sizes 60
             --seeds 2 --rounds 10 --latency constant
             --nat-mixtures none,paper --upnp-fractions 0,0.2)
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 4 --out artifacts/ci-matrix-w4
python -m repro matrix "${MATRIX_ARGS[@]}" --workers 1 --out artifacts/ci-matrix-w1
cmp artifacts/ci-matrix-w4/matrix_aggregate.json \
    artifacts/ci-matrix-w1/matrix_aggregate.json
echo "parity OK: 4-worker aggregate is byte-identical to the sequential run"

echo
echo "== baseline gate: cross-PR diff against the committed aggregate =="
# Group means (5% tolerance) AND per-group histogram shapes (KS distance 0.1) must
# not regress relative to the committed baseline; exit 1 fails the gate.
python -m repro report --diff artifacts/baseline/matrix_aggregate.json \
                              artifacts/ci-matrix-w1/matrix_aggregate.json
echo "baseline gate OK: no regressions vs artifacts/baseline/matrix_aggregate.json"

echo
echo "CI gate passed."
