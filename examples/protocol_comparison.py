#!/usr/bin/env python3
"""Compare Croupier against Gozar, Nylon and Cyclon on one NATed deployment.

This is a laptop-sized version of the paper's evaluation story (Figures 6 and 7): the
same population — 20 % public nodes, 80 % private nodes behind restricted-cone NATs — is
run under each protocol, and the script reports:

* randomness of the overlay (average path length, clustering coefficient, in-degree
  spread),
* steady-state protocol overhead for public and private nodes (bytes/second),
* connectivity after a catastrophic failure of 80 % of all nodes.

Run it with::

    python examples/protocol_comparison.py [total_nodes] [rounds]
"""

from __future__ import annotations

import sys

from repro.experiments.report import format_table
from repro.metrics.graph import (
    average_clustering_coefficient,
    average_path_length,
    build_overlay_graph,
    degree_statistics,
)
from repro.metrics.overhead import measure_overhead
from repro.metrics.partition import largest_cluster_fraction
from repro.workload.failure import catastrophic_failure
from repro.workload.scenario import Scenario, ScenarioConfig

PROTOCOLS = ("croupier", "gozar", "nylon", "cyclon")


def run_one(protocol: str, total_nodes: int, rounds: int, seed: int = 11) -> dict:
    """Run one protocol and return the comparison row."""
    scenario = Scenario(ScenarioConfig(protocol=protocol, seed=seed, latency="king"))
    if protocol == "cyclon":
        scenario.populate(n_public=total_nodes, n_private=0)  # NAT-oblivious baseline
    else:
        n_public = max(1, total_nodes // 5)
        scenario.populate(n_public=n_public, n_private=total_nodes - n_public)

    warmup = rounds // 2
    scenario.run_rounds(warmup)
    snapshot = scenario.traffic_snapshot()
    scenario.run_rounds(rounds - warmup)

    graph = build_overlay_graph(scenario.overlay_graph())
    metrics_rng = scenario.sim.derive_rng("example-metrics", protocol)
    overhead = measure_overhead(
        protocol,
        scenario.monitor,
        snapshot,
        scenario.now,
        scenario.live_public_ids(),
        scenario.live_private_ids(),
    )
    row = {
        "path length": average_path_length(graph, sample_sources=40, rng=metrics_rng),
        "clustering": average_clustering_coefficient(graph),
        "in-degree stddev": degree_statistics(graph)["stddev"],
        "public B/s": overhead.public_bytes_per_second,
        "private B/s": overhead.private_bytes_per_second,
    }
    outcome = catastrophic_failure(scenario, 0.8)
    row["cluster after 80% failure"] = outcome.biggest_cluster_fraction
    return row


def main() -> int:
    total_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 60
    print(
        f"Comparing peer-sampling protocols on {total_nodes} nodes "
        f"(80% private), {rounds} rounds"
    )
    print("This takes a minute or two at the default size.\n")

    rows = []
    columns = [
        "path length",
        "clustering",
        "in-degree stddev",
        "public B/s",
        "private B/s",
        "cluster after 80% failure",
    ]
    for protocol in PROTOCOLS:
        result = run_one(protocol, total_nodes, rounds)
        rows.append([protocol] + [result[c] for c in columns])
        print(f"  finished {protocol}")
    print()
    print(format_table(["protocol"] + columns, rows, title="Protocol comparison"))
    print()
    print(
        "Expected shape (paper, Figures 6-7): Croupier matches the baselines'\n"
        "randomness, has the lowest private-node overhead of the NAT-aware protocols,\n"
        "and keeps the largest connected cluster after massive failures."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
