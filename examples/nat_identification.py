#!/usr/bin/env python3
"""NAT-type identification walkthrough (Algorithm 1 of the paper).

Builds a tiny Internet: four public helper nodes, then one node of each gateway kind —
a truly public host, a host behind a restricted-cone NAT, a host behind a full-cone NAT,
a host behind a UPnP-capable NAT, and a firewalled host — and runs the distributed
identification protocol for each, printing the verdict and the reason (matching IP,
IP mismatch, timeout or UPnP shortcut).

Run it with::

    python examples/nat_identification.py
"""

from __future__ import annotations

from repro.nat.firewall import FirewallBox
from repro.nat.nat_box import NatBox
from repro.nat.types import NatProfile
from repro.nat.upnp import UpnpNatBox
from repro.natid.protocol import NatIdentificationClient, NatIdentificationServer
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.core import Simulator
from repro.simulator.host import Host
from repro.simulator.latency import KingLatencyModel
from repro.simulator.network import Network


def build_helpers(sim, network, count=4):
    """Public nodes that answer MatchingIpTest / ForwardTest for everyone else."""
    addresses = []
    for index in range(count):
        address = NodeAddress(
            node_id=index + 1,
            endpoint=Endpoint(f"1.0.0.{index + 1}", 7000),
            nat_type=NatType.PUBLIC,
        )
        host = Host(sim, network, address)
        NatIdentificationServer(host, public_node_provider=lambda: addresses).start()
        addresses.append(address)
    return addresses


def subject_hosts(sim, network):
    """One node under test per gateway kind."""
    subjects = []

    public = Host(
        sim,
        network,
        NodeAddress(10, Endpoint("1.0.1.1", 7000), NatType.PUBLIC),
    )
    subjects.append(("no gateway (open Internet)", public, False))

    def nated(node_id, external_ip, internal_ip, box):
        address = NodeAddress(
            node_id,
            Endpoint(external_ip, 7000),
            NatType.PRIVATE,
            private_endpoint=Endpoint(internal_ip, 7000),
        )
        return Host(sim, network, address, natbox=box)

    subjects.append(
        (
            "restricted-cone NAT",
            nated(11, "2.0.0.1", "10.0.0.1", NatBox("2.0.0.1", NatProfile.restricted_cone())),
            False,
        )
    )
    subjects.append(
        (
            "full-cone NAT",
            nated(12, "2.0.0.2", "10.0.0.2", NatBox("2.0.0.2", NatProfile.full_cone())),
            False,
        )
    )
    subjects.append(
        (
            "UPnP IGD-capable NAT",
            nated(13, "2.0.0.3", "10.0.0.3", UpnpNatBox("2.0.0.3")),
            True,
        )
    )
    firewall = FirewallBox("1.0.2.1")
    firewalled = Host(
        sim,
        network,
        NodeAddress(
            14,
            Endpoint("1.0.2.1", 7000),
            NatType.PRIVATE,
            private_endpoint=Endpoint("1.0.2.1", 7000),
        ),
        natbox=firewall,
    )
    subjects.append(("stateful firewall (no translation)", firewalled, False))
    return subjects


def main() -> int:
    sim = Simulator(seed=7)
    network = Network(sim, latency_model=KingLatencyModel(seed=7))
    helpers = build_helpers(sim, network)

    print("Distributed NAT-type identification (Algorithm 1)")
    print(f"helper public nodes: {[str(a.endpoint) for a in helpers]}")
    print()

    clients = []
    for label, host, has_upnp in subject_hosts(sim, network):
        client = NatIdentificationClient(host, supports_upnp_igd=has_upnp)
        client.identify(helpers[:2])
        clients.append((label, host, client))

    sim.run()

    header = f"{'gateway':38} {'verdict':8} {'reason':16} {'elapsed':>9}"
    print(header)
    print("-" * len(header))
    for label, host, client in clients:
        result = client.result
        print(
            f"{label:38} {result.nat_type.value:8} {result.reason:16} "
            f"{result.elapsed_ms:7.0f}ms"
        )
    print()
    print(
        "Public verdicts require a ForwardResp from a node the client never contacted\n"
        "and a matching IP address; everything else is (correctly) classified private."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
