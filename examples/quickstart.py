#!/usr/bin/env python3
"""Quickstart: run a small Croupier system and inspect what the PSS delivers.

This builds a 100-node system (20 public, 80 private nodes behind restricted-cone NATs),
runs 60 one-second gossip rounds in the discrete-event simulator and prints:

* the true public/private ratio and the mean estimate across nodes,
* the average and maximum estimation error (the paper's Figures 1–5 metrics),
* overlay health (biggest cluster, path length, clustering coefficient),
* the public/private mix of samples drawn through the peer-sampling API.

Run it with::

    python examples/quickstart.py [seed]

CI (badge: ``.github/workflows/ci.yml``) runs this script — and every other example —
as a subprocess smoke test on each push/PR, plus the tier-1 tests, the bench smoke and
an experiment-matrix parity check. Reproduce the whole gate locally with::

    ./scripts/ci.sh

or explore the full protocol × scenario × size × seed grid yourself::

    PYTHONPATH=src python -m repro matrix --list
"""

from __future__ import annotations

import sys

from repro.experiments import quick_croupier_run


def main() -> int:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    print("Croupier quickstart — 20 public + 80 private nodes, 60 gossip rounds")
    print(f"(seed = {seed})")
    print()
    result = quick_croupier_run(n_public=20, n_private=80, rounds=60, seed=seed)
    print(result.to_text())
    print()
    expected_public = result.true_ratio
    observed_public = result.sample_counts["public"] / max(
        1, sum(result.sample_counts.values())
    )
    print(
        "samples drawn through the PSS API are "
        f"{observed_public:.1%} public vs. a true share of {expected_public:.1%} — "
        "the split views plus the ratio estimator keep sampling unbiased."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
