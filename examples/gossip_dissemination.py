#!/usr/bin/env python3
"""Using Croupier as a substrate: epidemic dissemination over NATed nodes.

The paper motivates peer sampling with applications such as information dissemination:
a node with a piece of news repeatedly pushes it to a few peers obtained from the PSS,
and those peers do the same. This example builds that application on top of Croupier —
including the paper's key point that rumors sent *to private nodes* only get through on
NAT mappings the private node itself opened, so a NAT-oblivious PSS would leave most of
the network uninformed.

A small rumor-mongering component runs on every node and combines the two classic
epidemic styles in a NAT-friendly way:

* **push**: every round, an informed node draws ``fanout`` samples from its local
  Croupier instance and pushes the rumor to the *public* ones directly (private targets
  cannot be pushed to — their NATs drop unsolicited traffic);
* **pull**: every round, every node (informed or not) asks one sampled public node
  whether it has news; the answer rides back over the NAT mapping the asker just
  opened, which is how the private majority gets informed.

Run it with::

    python examples/gossip_dissemination.py [total_nodes] [rounds]
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.constants import PSS_PORT
from repro.core.croupier import Croupier
from repro.simulator.component import Component
from repro.simulator.message import Message, Packet
from repro.workload.scenario import Scenario, ScenarioConfig

RUMOR_PORT = 7100


@dataclass
class Rumor(Message):
    rumor_id: int = 1

    def payload_size(self) -> int:
        return 16


@dataclass
class RumorPull(Message):
    """'Got any news?' — sent to a sampled public node every round."""

    def payload_size(self) -> int:
        return 4


class RumorMonger(Component):
    """Push-pull epidemic dissemination driven by Croupier samples."""

    def __init__(self, host, pss: Croupier, fanout: int = 2):
        super().__init__(host, RUMOR_PORT, name="RumorMonger")
        self.pss = pss
        self.fanout = fanout
        self.informed = False
        self.informed_at_round = None
        self.subscribe(Rumor, self._on_rumor)
        self.subscribe(RumorPull, self._on_pull)

    def on_start(self) -> None:
        self.schedule_periodic(1000.0, self._gossip, jitter_ms=50.0)

    def seed_rumor(self) -> None:
        self.informed = True
        self.informed_at_round = 0

    def _gossip(self) -> None:
        # Push to public samples (the only nodes unsolicited traffic can reach).
        if self.informed:
            for _ in range(self.fanout):
                target = self.pss.sample()
                if target is not None and target.is_public:
                    self.send(target.endpoint.with_port(RUMOR_PORT), Rumor())
        # Pull from one public sample; the answer traverses our own NAT mapping.
        if not self.informed:
            target = self.pss.sample()
            if target is not None and target.is_public:
                self.send(target.endpoint.with_port(RUMOR_PORT), RumorPull())

    def _on_rumor(self, packet: Packet) -> None:
        if not self.informed:
            self.informed = True
            self.informed_at_round = self.pss.current_round

    def _on_pull(self, packet: Packet) -> None:
        if self.informed:
            self.send(packet.source, Rumor())


def main() -> int:
    total_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    rounds = int(sys.argv[2]) if len(sys.argv) > 2 else 40
    n_public = max(1, total_nodes // 5)
    n_private = total_nodes - n_public

    scenario = Scenario(ScenarioConfig(protocol="croupier", seed=5, latency="king"))
    scenario.populate(n_public=n_public, n_private=n_private)
    scenario.run_rounds(10)  # let views and ratio estimates converge

    mongers = []
    for handle in scenario.live_handles():
        monger = RumorMonger(handle.host, handle.pss)
        monger.start()
        mongers.append(monger)

    mongers[0].seed_rumor()
    print(
        f"Seeding one rumor in a {total_nodes}-node system "
        f"({n_public} public / {n_private} private), fanout 2"
    )
    for round_index in range(1, rounds + 1):
        scenario.run_rounds(1)
        informed = sum(1 for m in mongers if m.informed)
        if round_index % 5 == 0 or informed == total_nodes:
            print(f"  round {round_index:3d}: informed {informed}/{total_nodes}")
        if informed == total_nodes:
            break

    informed_public = sum(1 for m in mongers if m.informed and m.address.is_public)
    informed_private = sum(1 for m in mongers if m.informed and m.address.is_private)
    print()
    print(f"informed public nodes : {informed_public}/{n_public}")
    print(f"informed private nodes: {informed_private}/{n_private}")
    print(
        "\nBecause Croupier's samples are uniform over public AND private nodes, the\n"
        "rumor reaches the private majority too — the property a NAT-oblivious PSS\n"
        "loses (its samples, and therefore its pushes, concentrate on public nodes)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
