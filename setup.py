"""Packaging entry point.

The project deliberately uses a classic ``setup.py`` / ``setup.cfg`` layout instead of a
``pyproject.toml`` build: the reproduction environment is fully offline, and pip's
PEP 517 build isolation would try (and fail) to download ``setuptools`` and ``wheel``
from PyPI. The legacy path installs with the interpreter's already-present setuptools,
so ``pip install -e .`` works without network access.
"""

from setuptools import setup

setup()
