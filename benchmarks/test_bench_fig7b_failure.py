"""Figure 7(b): connectivity after catastrophic failure.

Paper scale: 1000 nodes with 80 % private, failures of 40–90 % of all nodes at one
instant; Croupier's biggest surviving cluster stays above ~85 % of the survivors at 90 %
failures, far ahead of Gozar and Nylon. The benchmark uses a reduced population and the
two harshest failure levels, asserting that Croupier remains at least as well connected
as both baselines.
"""

from repro.experiments import run_failure_experiment

BENCH_NODES = 300
BENCH_FRACTIONS = (0.8, 0.9)
BENCH_PROTOCOLS = ("croupier", "gozar", "nylon")
WARMUP_ROUNDS = 40


def test_fig7b_connectivity_after_catastrophic_failure(once):
    result = once(
        run_failure_experiment,
        protocols=BENCH_PROTOCOLS,
        failure_fractions=BENCH_FRACTIONS,
        total_nodes=BENCH_NODES,
        private_ratio=0.8,
        warmup_rounds=WARMUP_ROUNDS,
        seed=42,
    )
    print()
    print(result.to_text())

    for fraction in BENCH_FRACTIONS:
        croupier = result.cluster_at("croupier", fraction)
        gozar = result.cluster_at("gozar", fraction)
        nylon = result.cluster_at("nylon", fraction)
        # Croupier keeps the overlay at least as connected as both baselines.
        assert croupier >= gozar - 0.03
        assert croupier >= nylon - 0.03
    # And at 90% failures it still holds a large majority of survivors together.
    assert result.cluster_at("croupier", 0.9) > 0.7
