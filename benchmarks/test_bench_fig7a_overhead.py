"""Figure 7(a): protocol overhead — average load per node, public vs. private.

Paper scale: 1000 nodes at ratio 0.2, Croupier with α=25, γ=100, at most 10 estimates of
5 bytes piggy-backed per shuffle. The paper's claims asserted here: Croupier's private
overhead is less than half of Gozar's and less than a quarter of Nylon's, and its public
overhead is the lowest of the three NAT-aware protocols.
"""

from repro.experiments import run_overhead_experiment

BENCH_NODES = 150
WARMUP_ROUNDS = 25
MEASURE_ROUNDS = 30


def test_fig7a_protocol_overhead(once):
    result = once(
        run_overhead_experiment,
        total_nodes=BENCH_NODES,
        public_ratio=0.2,
        warmup_rounds=WARMUP_ROUNDS,
        measure_rounds=MEASURE_ROUNDS,
        croupier_alpha=25,
        croupier_gamma=100,
        seed=42,
    )
    print()
    print(result.to_text())

    private = result.private_loads()
    public = result.public_loads()
    assert private["croupier"] < 0.5 * private["gozar"]
    assert private["croupier"] < 0.25 * private["nylon"]
    assert public["croupier"] < public["gozar"]
    assert public["croupier"] < 1.5 * public["nylon"]
    # Sanity: the Cyclon baseline (public-only) is cheaper than every NAT-aware PSS.
    baseline = result.cyclon_baseline_bps()
    assert baseline is not None
    assert baseline < result.reports["croupier"].all_bytes_per_second
