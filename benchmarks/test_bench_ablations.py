"""Ablation benches for the design choices called out in DESIGN.md (A1, A3, A4).

These are not paper figures; they quantify why Croupier is built the way it is:
splitting the view keeps private nodes represented, piggy-backing estimates trades a few
bytes per message for estimation accuracy, and tail selection keeps views fresh.
"""

from repro.experiments.ablations import (
    run_piggyback_bound_ablation,
    run_selection_policy_ablation,
    run_view_representation_ablation,
)


def test_ablation_a1_view_representation(once):
    result = once(
        run_view_representation_ablation,
        protocols=("croupier", "cyclon", "gozar"),
        total_nodes=120,
        public_ratio=0.2,
        rounds=60,
        samples_per_node=15,
        seed=7,
    )
    print()
    print(result.to_text())
    # Croupier's samples reflect the true 80% private share; NAT-oblivious Cyclon
    # under-represents private nodes.
    assert abs(result.representation_bias("croupier")) < 0.12
    assert (
        result.private_fraction_in_samples["croupier"]
        > result.private_fraction_in_samples["cyclon"]
    )


def test_ablation_a3_piggyback_bound(once):
    result = once(
        run_piggyback_bound_ablation,
        bounds=(0, 5, 10, 20),
        total_nodes=100,
        rounds=70,
        seed=7,
    )
    print()
    print(result.to_text())
    # Message size grows monotonically with the bound.
    sizes = [result.message_bytes_by_bound[b] for b in (0, 5, 10, 20)]
    assert sizes == sorted(sizes)
    # Sharing estimates is never worse (within noise) than sharing none.
    assert result.avg_error_by_bound[10] <= result.avg_error_by_bound[0] + 0.02


def test_ablation_a4_selection_policy(once):
    result = once(
        run_selection_policy_ablation,
        total_nodes=100,
        rounds=70,
        seed=7,
    )
    print()
    print(result.to_text())
    assert set(result.avg_error_by_policy) == {"tail", "random"}
    # Tail selection keeps descriptors at least as fresh as random selection.
    assert (
        result.mean_view_age_by_policy["tail"]
        <= result.mean_view_age_by_policy["random"] + 1.0
    )
