"""Figure 1: estimation error vs. history-window sizes, static public/private ratio.

Paper scale: ``run_history_window_experiment(dynamic=False)`` with 1000 public + 4000
private nodes, 250 rounds and window pairs (10, 25), (25, 50), (100, 250). The default
benchmark scale below keeps the same ratio and join profile at 1/20 of the population.
"""

from repro.experiments import run_history_window_experiment

BENCH_PUBLIC = 50
BENCH_PRIVATE = 200
BENCH_ROUNDS = 90
BENCH_WINDOWS = ((10, 25), (25, 50), (50, 125))


def test_fig1_static_ratio_history_windows(once):
    result = once(
        run_history_window_experiment,
        dynamic=False,
        n_public=BENCH_PUBLIC,
        n_private=BENCH_PRIVATE,
        rounds=BENCH_ROUNDS,
        window_pairs=BENCH_WINDOWS,
        public_interarrival_ms=100.0,
        private_interarrival_ms=25.0,
        seed=42,
    )
    print()
    print(result.to_text())

    # Shape checks (paper: all window pairs converge; larger windows end up at least as
    # accurate as the smallest once the ratio is static).
    small = result.run_for(*BENCH_WINDOWS[0]).series
    large = result.run_for(*BENCH_WINDOWS[-1]).series
    assert small.final_avg_error() is not None and small.final_avg_error() < 0.05
    assert large.final_avg_error() is not None and large.final_avg_error() < 0.05
    assert large.final_max_error() <= small.final_max_error() * 1.5 + 0.01
