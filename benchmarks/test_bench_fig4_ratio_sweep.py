"""Figure 4: estimation accuracy for different public/private ratios.

Paper scale: 1000 nodes, ratios 0.05–0.9. The paper finds the average error essentially
ratio-independent, with only the smallest public fractions showing a larger maximum
error (the occasional starved private node).
"""

from repro.experiments import run_ratio_sweep_experiment

BENCH_RATIOS = (0.05, 0.2, 0.5)
BENCH_NODES = 150
BENCH_ROUNDS = 80


def test_fig4_public_private_ratio_sweep(once):
    result = once(
        run_ratio_sweep_experiment,
        ratios=BENCH_RATIOS,
        total_nodes=BENCH_NODES,
        rounds=BENCH_ROUNDS,
        join_window_ms=5_000.0,
        seed=42,
    )
    print()
    print(result.to_text())

    avg_errors = result.final_avg_errors()
    max_errors = result.final_max_errors()
    assert set(avg_errors) == set(BENCH_RATIOS)
    # Average error stays small for every ratio (Figure 4a).
    assert all(error < 0.06 for error in avg_errors.values())
    # The spread across ratios is modest — no strong dependence on the ratio itself.
    values = sorted(avg_errors.values())
    assert values[-1] - values[0] < 0.05
    # The scarcest-public configuration has the (weakly) largest maximum error (4b).
    assert max_errors[0.05] >= max(max_errors[0.2], max_errors[0.5]) - 0.02
