"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure of the paper at a reduced default scale (so the
whole suite completes in minutes); the module docstrings state the paper-scale
invocation. Benchmarks print the same text tables the experiment harnesses produce, so
``pytest benchmarks/ --benchmark-only -s`` shows the regenerated series alongside the
timing statistics.
"""

import pytest


def pytest_configure(config):
    # The benchmark suite lives outside the default testpaths; nothing to configure,
    # but keeping a conftest here makes the directory importable by pytest plugins.
    pass


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulation experiments are minutes-long)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
