"""Shared configuration for the benchmark harness.

Every benchmark regenerates one figure of the paper at a reduced default scale (so the
whole suite completes in minutes); the module docstrings state the paper-scale
invocation. Benchmarks print the same text tables the experiment harnesses produce, so
``pytest benchmarks/ -m bench --benchmark-only -s`` shows the regenerated series
alongside the timing statistics.

Every test in this directory is marked ``bench``, and the repo-wide pytest
configuration (setup.cfg) deselects that marker by default — the tier-1 gate
(``python -m pytest -x -q``) therefore skips the benchmark suite by marker rather than
by path selection.
"""

import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(config, items):
    # This hook sees the whole session's items, not just this directory's — mark only
    # the tests that actually live under benchmarks/.
    for item in items:
        if _BENCH_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (simulation experiments are minutes-long)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
