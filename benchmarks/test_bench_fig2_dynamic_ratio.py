"""Figure 2: estimation error vs. history-window sizes, dynamic public/private ratio.

Paper scale: same join phase as Figure 1, then one new public node every 42 ms from
round 58, raising the ratio by about three percentage points. Small windows track the
change fastest; large windows lag but win after the ratio stabilises.
"""

from repro.experiments import run_history_window_experiment

BENCH_PUBLIC = 40
BENCH_PRIVATE = 160
BENCH_ROUNDS = 110
BENCH_WINDOWS = ((10, 25), (50, 125))
GROWTH_START_ROUND = 40


def test_fig2_dynamic_ratio_history_windows(once):
    result = once(
        run_history_window_experiment,
        dynamic=True,
        n_public=BENCH_PUBLIC,
        n_private=BENCH_PRIVATE,
        rounds=BENCH_ROUNDS,
        window_pairs=BENCH_WINDOWS,
        public_interarrival_ms=100.0,
        private_interarrival_ms=25.0,
        ratio_growth_start_round=GROWTH_START_ROUND,
        ratio_growth_interval_ms=500.0,
        seed=42,
    )
    print()
    print(result.to_text())

    small_run = result.run_for(*BENCH_WINDOWS[0])
    large_run = result.run_for(*BENCH_WINDOWS[1])
    # The ratio actually grew.
    assert small_run.final_true_ratio > 0.2
    # Both estimators follow the change and stay within a few points of the new ratio.
    assert small_run.series.final_avg_error() < 0.06
    assert large_run.series.final_avg_error() < 0.1

    # Right after the growth phase the small window tracks the moving ratio at least as
    # well as the large window (the paper's crossover behaviour).
    growth_ms = (GROWTH_START_ROUND + 15) * 1000.0
    small_sample = [s for s in small_run.series.samples if s.time_ms >= growth_ms][0]
    large_sample = [s for s in large_run.series.samples if s.time_ms >= growth_ms][0]
    assert small_sample.avg_error <= large_sample.avg_error + 0.02
