"""Micro-benchmarks and the acceptance benchmark for the hot-path overhaul (PR 1).

The per-round cost of a simulation used to be dominated by avoidable allocation:
eager descriptor re-ageing, defensive copies on every view operation, per-packet IP
string parsing and per-packet delivery closures. This suite pins the optimised paths
individually and then runs the PR's acceptance scenario — 1000 Croupier nodes for 100
gossip rounds — against the wall-clock baseline measured on the seed implementation
*on this same container*, asserting the contracted ≥3× speedup **and** bit-identical
outputs (same event count, same mean ratio estimate).

Run with ``pytest benchmarks/test_bench_hotpaths.py -s`` to see the timings;
``benchmarks/run_bench.py`` emits the same measurements as ``BENCH_hotpaths.json``.
"""

import random

from repro.core.estimator import RatioEstimate, RatioEstimator
from repro.membership.descriptor import NodeDescriptor
from repro.membership.view import PartialView
from repro.metrics.probes import collect_ratio_estimates
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.core import Simulator
from repro.workload.scenario import Scenario, ScenarioConfig

#: Wall-clock seconds for the 1000-node × 100-round Croupier scenario measured on the
#: seed implementation (commit 8b078d8) on this container, together with the outputs
#: the optimised code must reproduce exactly.
SEED_BASELINE_1000x100 = {
    "seconds": 83.48,
    "events_executed": 292357,
    "mean_estimate": 0.20146065899706894,
}

#: The contracted minimum speedup for this PR's acceptance scenario.
REQUIRED_SPEEDUP = 3.0


def make_descriptor(node_id: int, age: int = 0) -> NodeDescriptor:
    address = NodeAddress(
        node_id=node_id,
        endpoint=Endpoint(f"1.0.{node_id // 250}.{node_id % 250 + 1}", 7000),
        nat_type=NatType.PUBLIC,
    )
    return NodeDescriptor(address=address, age=age)


def full_view(size: int) -> PartialView:
    view = PartialView(size)
    for node_id in range(1, size + 1):
        view.add(make_descriptor(node_id, age=node_id % 7))
    return view


# --------------------------------------------------------------------- view layer


def test_bench_increase_ages_is_constant_time(benchmark):
    """Lazy ageing: 1000 rounds of ageing a 1000-entry view is 1000 counter bumps."""
    view = full_view(1000)

    def run():
        for _ in range(1000):
            view.increase_ages()
        return view.round_clock

    clock = benchmark(run)
    assert clock >= 1000
    # Ages materialise correctly on access: node 1 entered at clock 0 with age 1.
    assert view.get(1).age == view.round_clock + 1


def test_bench_view_random_subset(benchmark):
    """Subset selection from a full view — the per-shuffle selection cost."""
    view = full_view(10)
    rng = random.Random(3)

    def run():
        return view.random_subset(rng, 5, exclude_ids=(1,))

    subset = benchmark(run)
    assert len(subset) == 5


def test_bench_update_view_swapper(benchmark):
    """One swapper merge of a full view with a typical shuffle subset."""
    rng = random.Random(0)
    view = full_view(10)
    received = [make_descriptor(100 + i) for i in range(5)]

    def run():
        sent = view.random_subset(rng, 5)
        view.update_view(sent=sent, received=received, self_id=999)
        return len(view)

    size = benchmark(run)
    assert size <= 10


def test_bench_update_view_large_batch(benchmark):
    """The deque-based eviction queue keeps large merges linear in the batch size."""
    size = 2000

    def run():
        view = full_view(size)
        sent = view.descriptors()
        received = [make_descriptor(size + 1 + i) for i in range(size)]
        view.update_view(sent=sent, received=received, self_id=0)
        return len(view)

    final = benchmark(run)
    assert final == size


# --------------------------------------------------------------------- kernel layer


def test_bench_event_loop_throughput(benchmark):
    """Schedule-and-run cost of 10k events using the direct (callback, arg) slot."""

    def run():
        sim = Simulator(seed=1)
        sink = []
        for index in range(10_000):
            sim.schedule(float(index % 100), sink.append, index)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 10_000


def test_bench_event_loop_with_cancellations(benchmark):
    """Heavy-cancellation workload: the run loop discards each dead entry exactly once."""

    def run():
        sim = Simulator(seed=1)
        for index in range(5_000):
            handle = sim.schedule(float(index % 50), lambda: None)
            if index % 2:
                handle.cancel()
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 2_500


def test_bench_pending_events_is_o1(benchmark):
    """The live-event counter answers pending_events without scanning the queue."""
    sim = Simulator(seed=1)
    for index in range(50_000):
        sim.schedule(float(index), lambda: None)

    def run():
        total = 0
        for _ in range(10_000):
            total += sim.pending_events
        return total

    total = benchmark(run)
    assert total == 10_000 * 50_000


# --------------------------------------------------------------------- estimator layer


def test_bench_estimator_round_with_warm_cache(benchmark):
    """Estimator round against a γ-sized neighbour cache (lazy ageing, no rebuilds)."""
    estimator = RatioEstimator(alpha=25, gamma=50, is_public=True)
    rng = random.Random(1)
    estimator.merge_estimates([RatioEstimate(i, 0.2, age=i % 5) for i in range(200)])

    def run():
        for _ in range(5):
            estimator.record_shuffle_request(rng.random() < 0.2)
        estimator.merge_estimates([RatioEstimate(300 + (i % 10), 0.21, age=0) for i in range(10)])
        subset = estimator.estimates_subset(rng, 10)
        estimator.advance_round()
        return len(subset), estimator.estimate_ratio()

    count, value = benchmark(run)
    assert count == 10
    assert 0.0 <= value <= 1.0


# --------------------------------------------------------------------- full scenario


def test_bench_croupier_gossip_round_1000_nodes(once):
    """Wall-clock cost of one gossip round for a warmed-up 1000-node Croupier system."""
    scenario = Scenario(ScenarioConfig(protocol="croupier", seed=3))
    scenario.populate(n_public=200, n_private=800)
    scenario.run_rounds(5)  # warm up views

    def run():
        scenario.run_rounds(1)
        return scenario.live_count()

    live = once(run)
    assert live == 1000


def test_bench_croupier_1000x100_meets_speedup_budget(once):
    """The PR's acceptance scenario: ≥3× faster than the seed code, same outputs."""
    import time

    def run():
        started = time.perf_counter()
        scenario = Scenario(ScenarioConfig(protocol="croupier", seed=3))
        scenario.populate(n_public=200, n_private=800)
        scenario.run_rounds(100)
        elapsed = time.perf_counter() - started
        estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
        return elapsed, scenario.sim.events_executed, sum(estimates) / len(estimates)

    elapsed, events, mean_estimate = once(run)
    # Bit-identical experiment outputs vs. the seed implementation.
    assert events == SEED_BASELINE_1000x100["events_executed"]
    assert mean_estimate == SEED_BASELINE_1000x100["mean_estimate"]
    speedup = SEED_BASELINE_1000x100["seconds"] / elapsed
    print(f"\n1000x100 croupier: {elapsed:.2f}s vs seed {SEED_BASELINE_1000x100['seconds']:.2f}s "
          f"-> {speedup:.2f}x")
    assert speedup >= REQUIRED_SPEEDUP, (
        f"hot-path budget regressed: {elapsed:.2f}s is only "
        f"{speedup:.2f}x over the seed baseline (need >= {REQUIRED_SPEEDUP}x)"
    )
