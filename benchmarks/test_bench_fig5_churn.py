"""Figure 5: estimation accuracy under continuous churn.

Paper scale: 1000 nodes at ratio 0.2, churn of 0.1 %, 1 %, 2.5 % and 5 % of nodes
replaced per round starting at t=61. The paper's finding — churn up to 5 %/round has no
significant effect on estimation — is asserted by comparing against the churn-free run.
"""

from repro.experiments import run_churn_experiment

BENCH_LEVELS = (0.0, 0.01, 0.05)
BENCH_NODES = 120
BENCH_ROUNDS = 90
CHURN_START_ROUND = 30


def test_fig5_estimation_under_churn(once):
    result = once(
        run_churn_experiment,
        churn_levels=BENCH_LEVELS,
        total_nodes=BENCH_NODES,
        public_ratio=0.2,
        rounds=BENCH_ROUNDS,
        churn_start_round=CHURN_START_ROUND,
        join_window_ms=5_000.0,
        seed=42,
    )
    print()
    print(result.to_text())

    avg_errors = result.final_avg_errors()
    assert set(avg_errors) == set(BENCH_LEVELS)
    calm = avg_errors[0.0]
    heavy = avg_errors[0.05]
    assert calm is not None and heavy is not None
    # Heavy churn degrades the estimate only mildly (paper: "no significant effect").
    assert heavy < 0.08
    assert heavy <= calm + 0.05
