"""Figure 3: effect of system size on estimation accuracy.

Paper scale: systems of 50, 100, 500, 1000 and 5000 nodes at ratio 0.2 with α=25, γ=50.
The benchmark sweeps a reduced ladder with the same ratio; the paper's observation —
accuracy improves with system size and saturates — is asserted on the endpoints.
"""

from repro.experiments import run_system_size_experiment

BENCH_SIZES = (50, 150, 400)
BENCH_ROUNDS = 80


def test_fig3_system_size_sweep(once):
    result = once(
        run_system_size_experiment,
        sizes=BENCH_SIZES,
        public_ratio=0.2,
        rounds=BENCH_ROUNDS,
        join_window_ms=10_000.0,
        seed=42,
    )
    print()
    print(result.to_text())

    avg_errors = result.final_avg_errors()
    max_errors = result.final_max_errors()
    assert set(avg_errors) == set(BENCH_SIZES)
    # Every size converges to a small error...
    assert all(error < 0.06 for error in avg_errors.values())
    # ...and the largest system is at least as accurate as the smallest (Figure 3).
    assert avg_errors[BENCH_SIZES[-1]] <= avg_errors[BENCH_SIZES[0]] + 0.005
    assert max_errors[BENCH_SIZES[-1]] <= max_errors[BENCH_SIZES[0]] + 0.01
