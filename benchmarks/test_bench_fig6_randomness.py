"""Figure 6: randomness properties — in-degree distribution, path length, clustering.

Paper scale: 1000 nodes (ratio 0.2), 250 rounds, protocols Croupier, Gozar, Nylon and
Cyclon (public-only baseline). The benchmark runs a reduced population and asserts the
qualitative claims: every NAT-aware protocol's path length stays close to Cyclon's, and
private-node in-degrees are concentrated rather than starved.
"""

from repro.experiments import run_randomness_experiment

BENCH_NODES = 150
BENCH_ROUNDS = 80
BENCH_PROTOCOLS = ("croupier", "gozar", "nylon", "cyclon")


def test_fig6_randomness_properties(once):
    result = once(
        run_randomness_experiment,
        protocols=BENCH_PROTOCOLS,
        total_nodes=BENCH_NODES,
        public_ratio=0.2,
        rounds=BENCH_ROUNDS,
        measure_every_rounds=20,
        path_length_sources=40,
        seed=42,
    )
    print()
    print(result.to_text())

    cyclon = result.per_protocol["cyclon"]
    for name in ("croupier", "gozar", "nylon"):
        measurement = result.per_protocol[name]
        # Figure 6(b): average path length tracks Cyclon closely.
        assert measurement.path_length.last() is not None
        assert measurement.path_length.last() <= cyclon.path_length.last() + 1.0
        # Figure 6(c): clustering stays low (well below a clustered/complete graph).
        assert measurement.clustering.last() < 0.5
        # Figure 6(a): nobody is isolated — minimum in-degree is at least 1.
        assert min(measurement.in_degree_histogram) >= 1
        # Out-degree (view occupancy) is full or nearly full for live overlay health.
        assert measurement.in_degree_stats["mean"] >= 8.0
