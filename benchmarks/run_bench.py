#!/usr/bin/env python
"""Standalone hot-path benchmark runner: emits the perf-trajectory point.

Writes ``BENCH_hotpaths.json`` (at the repository root by default) with wall-clock
measurements of the simulation hot paths plus the PR-1 acceptance scenario (1000
Croupier nodes × 100 gossip rounds), compared against the seed-implementation baseline
measured on this container. Every future perf PR re-runs this script and appends its
numbers to the trajectory, so regressions are visible across PRs.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run (~1 min)
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # <= 60 s smoke subset
    PYTHONPATH=src python benchmarks/run_bench.py --output /tmp/bench.json

The scenario measurements assert output fidelity (event counts and the mean ratio
estimate must match the seed implementation bit for bit) before timings are recorded —
a fast-but-wrong run never produces a trajectory point.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.estimator import RatioEstimate, RatioEstimator  # noqa: E402
from repro.membership.descriptor import NodeDescriptor  # noqa: E402
from repro.membership.view import PartialView  # noqa: E402
from repro.metrics.probes import collect_ratio_estimates  # noqa: E402
from repro.net.address import Endpoint, NatType, NodeAddress  # noqa: E402
from repro.simulator.core import Simulator  # noqa: E402
from repro.workload.scenario import Scenario, ScenarioConfig  # noqa: E402

#: Seed-implementation (commit 8b078d8) wall-clock baselines measured on this container.
SEED_BASELINES = {
    "croupier_1000x100": {
        "seconds": 83.48,
        "events_executed": 292357,
        "mean_estimate": 0.20146065899706894,
    },
}


def _timeit(func, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for one call of ``func``."""
    best = None
    for _ in range(repeats):
        started = time.perf_counter()
        func()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best


def _make_descriptor(node_id: int, age: int = 0) -> NodeDescriptor:
    address = NodeAddress(
        node_id=node_id,
        endpoint=Endpoint(f"1.0.{node_id // 250}.{node_id % 250 + 1}", 7000),
        nat_type=NatType.PUBLIC,
    )
    return NodeDescriptor(address=address, age=age)


def bench_micro() -> dict:
    """Per-primitive timings (seconds) for the optimised hot paths."""
    results = {}

    view = PartialView(1000)
    for node_id in range(1, 1001):
        view.add(_make_descriptor(node_id, age=node_id % 7))

    def ages():
        for _ in range(100_000):
            view.increase_ages()

    results["increase_ages_100k_on_1000_entries"] = _timeit(ages)

    rng = random.Random(3)
    small_view = PartialView(10)
    for node_id in range(1, 11):
        small_view.add(_make_descriptor(node_id, age=node_id))

    def subsets():
        for _ in range(10_000):
            small_view.random_subset(rng, 5, exclude_ids=(1,))

    results["random_subset_10k"] = _timeit(subsets)

    received = [_make_descriptor(100 + i) for i in range(5)]

    def merges():
        for _ in range(10_000):
            sent = small_view.random_subset(rng, 5)
            small_view.update_view(sent=sent, received=received, self_id=999)

    results["update_view_10k"] = _timeit(merges)

    def events():
        sim = Simulator(seed=1)
        sink = []
        for index in range(50_000):
            handle = sim.schedule(float(index % 100), sink.append, index)
            if index % 3 == 0:
                handle.cancel()
        sim.run()
        assert sim.pending_events == 0

    results["event_loop_50k_with_cancels"] = _timeit(events)

    estimator = RatioEstimator(alpha=25, gamma=50, is_public=True)
    estimator.merge_estimates([RatioEstimate(i, 0.2, age=i % 5) for i in range(200)])
    est_rng = random.Random(1)

    def estimator_rounds():
        for _ in range(10_000):
            estimator.record_shuffle_request(True)
            estimator.estimates_subset(est_rng, 10)
            estimator.advance_round()

    results["estimator_10k_rounds_warm_cache"] = _timeit(estimator_rounds)
    return results


def bench_matrix_throughput(workers_list=(1, 2, 4), cells: int = 8) -> dict:
    """Matrix-runner throughput (cells/minute) at several worker counts.

    Runs the same fixed-seed grid at each worker count and asserts the aggregates stay
    byte-identical before recording any timing — parallel scaling must never change
    results. On single-core containers the scaling is flat; the trajectory records
    that honestly.
    """
    from repro.experiments.matrix import MatrixSpec
    from repro.experiments.runner import aggregate_json_bytes, run_matrix

    spec = MatrixSpec(
        scenarios=("static",),
        protocols=("croupier",),
        sizes=(100,),
        seeds=cells,
        rounds=10,
        latency="constant",
        root_seed=5,
    )
    results = {}
    reference = None
    for workers in workers_list:
        run = run_matrix(spec, workers=workers)
        if run.failed:
            raise SystemExit(f"matrix bench cell failed: {run.failed[0].error}")
        blob = aggregate_json_bytes(run)
        if reference is None:
            reference = blob
        elif blob != reference:
            raise SystemExit(
                f"FIDELITY FAILURE: matrix aggregate differs at workers={workers}"
            )
        results[f"workers_{workers}"] = {
            "cells": len(run.results),
            "seconds": round(run.wall_seconds, 3),
            "cells_per_minute": round(60.0 * len(run.results) / run.wall_seconds, 1),
        }
    return results


def bench_scenario_reuse(n_public: int = 40, n_private: int = 160,
                         warmup_rounds: int = 20, seed: int = 3) -> dict:
    """Cost of branching off a warmed scenario via clone() vs rebuilding it.

    This is the amortisation the failure harness and the matrix reuse cache lean
    on: one build-and-warm-up, then one clone per destructive treatment. The two
    paths are asserted to land in identical states before timings are recorded.
    """
    started = time.perf_counter()
    warmed = Scenario(ScenarioConfig(protocol="croupier", seed=seed, latency="constant"))
    warmed.populate(n_public=n_public, n_private=n_private)
    warmed.run_rounds(warmup_rounds)
    build_seconds = time.perf_counter() - started

    clone_seconds = _timeit(warmed.clone)
    # Fidelity: a clone run forward must land exactly where a fresh same-seed
    # scenario run for the same total rounds lands.
    branched = warmed.clone()
    branched.run_rounds(5)
    rebuilt = Scenario(ScenarioConfig(protocol="croupier", seed=seed, latency="constant"))
    rebuilt.populate(n_public=n_public, n_private=n_private)
    rebuilt.run_rounds(warmup_rounds + 5)
    if (
        branched.sim.events_executed != rebuilt.sim.events_executed
        or branched.network.packets_sent != rebuilt.network.packets_sent
    ):
        raise SystemExit("FIDELITY FAILURE: clone continuation diverged from rebuild")
    return {
        "n_nodes": n_public + n_private,
        "warmup_rounds": warmup_rounds,
        "build_and_warm_seconds": round(build_seconds, 4),
        "clone_seconds": round(clone_seconds, 4),
        "clone_speedup": round(build_seconds / clone_seconds, 1),
    }


def bench_columnar_scale(nodes: int, rounds: int, seed: int = 3) -> dict:
    """Columnar-engine throughput at horizon scale: node·rounds/second + peak RSS.

    Populate and round phases are timed separately — the gossip throughput number
    (``node_rounds_per_sec``) covers only the round loop. A sanity assertion keeps
    the trajectory honest: the converged mean estimate must sit near ω.
    """
    import resource

    from repro.workload.scenario import create_scenario

    started = time.perf_counter()
    scenario = create_scenario(
        ScenarioConfig(
            protocol="croupier", seed=seed, latency="constant", engine="columnar"
        )
    )
    n_public = max(1, nodes // 5)
    scenario.populate(n_public=n_public, n_private=nodes - n_public)
    populate_seconds = time.perf_counter() - started

    round_started = time.perf_counter()
    scenario.run_rounds(rounds)
    round_seconds = time.perf_counter() - round_started

    true_ratio = scenario.true_ratio()
    measured, mean_estimate, avg_error, _max = scenario.engine.estimate_stats(true_ratio)
    if measured < nodes * 0.9 or abs(mean_estimate - true_ratio) > 0.1:
        raise SystemExit(
            "FIDELITY FAILURE: columnar scale run did not converge "
            f"(measured={measured}, mean={mean_estimate}, true={true_ratio})"
        )
    return {
        "n_nodes": nodes,
        "rounds": rounds,
        "engine_numpy": scenario.engine.use_numpy,
        "populate_seconds": round(populate_seconds, 3),
        "round_seconds": round(round_seconds, 3),
        "node_rounds_per_sec": round(nodes * rounds / round_seconds, 1),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
        "packets_sent": scenario.network.packets_sent,
        "mean_estimate": round(mean_estimate, 6),
        "avg_error": round(avg_error, 6),
        "true_ratio": true_ratio,
    }


def bench_scenario(n_public: int, n_private: int, rounds: int, seed: int = 3) -> dict:
    """Time one full Croupier scenario and capture its (deterministic) outputs."""
    started = time.perf_counter()
    scenario = Scenario(ScenarioConfig(protocol="croupier", seed=seed))
    scenario.populate(n_public=n_public, n_private=n_private)
    scenario.run_rounds(rounds)
    elapsed = time.perf_counter() - started
    estimates = [e for e in collect_ratio_estimates(scenario) if e is not None]
    return {
        "n_nodes": n_public + n_private,
        "rounds": rounds,
        "seconds": round(elapsed, 3),
        "events_executed": scenario.sim.events_executed,
        "packets_sent": scenario.network.packets_sent,
        "mean_estimate": sum(estimates) / len(estimates),
        "true_ratio": scenario.true_ratio(),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run a <=60s subset (micro benches + a 300-node scenario)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hotpaths.json",
        help="where to write the JSON trajectory point",
    )
    args = parser.parse_args()

    report = {
        "bench": "hotpaths",
        "mode": "quick" if args.quick else "full",
        "python": sys.version.split()[0],
        "micro_seconds": bench_micro(),
        "matrix_throughput": bench_matrix_throughput(),
        "scenario_reuse": bench_scenario_reuse(),
        "seed_baselines": SEED_BASELINES,
    }

    if args.quick:
        report["scenarios"] = {
            "croupier_300x30": bench_scenario(n_public=60, n_private=240, rounds=30)
        }
        report["columnar_scale"] = {
            "croupier_10000x20": bench_columnar_scale(nodes=10_000, rounds=20)
        }
    else:
        scenario = bench_scenario(n_public=200, n_private=800, rounds=100)
        baseline = SEED_BASELINES["croupier_1000x100"]
        if scenario["events_executed"] != baseline["events_executed"]:
            raise SystemExit(
                "FIDELITY FAILURE: event count "
                f"{scenario['events_executed']} != seed {baseline['events_executed']}"
            )
        if scenario["mean_estimate"] != baseline["mean_estimate"]:
            raise SystemExit(
                "FIDELITY FAILURE: mean estimate "
                f"{scenario['mean_estimate']!r} != seed {baseline['mean_estimate']!r}"
            )
        scenario["speedup_vs_seed"] = round(baseline["seconds"] / scenario["seconds"], 2)
        report["scenarios"] = {"croupier_1000x100": scenario}
        # The columnar acceptance points: 10^5- and 10^6-node Croupier
        # populations through the paper's 70 rounds, on the flat-array engine
        # (plus a 10^4 quick point for cheap cross-run comparison).
        report["columnar_scale"] = {
            "croupier_10000x20": bench_columnar_scale(nodes=10_000, rounds=20),
            "croupier_100000x70": bench_columnar_scale(nodes=100_000, rounds=70),
            "croupier_1000000x70": bench_columnar_scale(nodes=1_000_000, rounds=70),
        }

    args.output.write_text(json.dumps(report, indent=1, sort_keys=True) + "\n")
    print(json.dumps(report, indent=1, sort_keys=True))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
