"""Micro-benchmarks of the hot paths: event loop, view operations, estimator, shuffle round.

Unlike the figure benches (one full experiment per figure), these measure the per-call
cost of the primitives that dominate a simulation's runtime, so regressions in the
simulator or the protocol inner loops show up directly in ``--benchmark-compare`` runs.
"""

import random

from repro.core.estimator import RatioEstimate, RatioEstimator
from repro.membership.descriptor import NodeDescriptor
from repro.membership.view import PartialView
from repro.net.address import Endpoint, NatType, NodeAddress
from repro.simulator.core import Simulator
from repro.workload.scenario import Scenario, ScenarioConfig


def make_descriptor(node_id: int, age: int = 0) -> NodeDescriptor:
    """A small public-node descriptor for the view/estimator micro-benchmarks."""
    address = NodeAddress(
        node_id=node_id,
        endpoint=Endpoint(f"1.0.{node_id // 250}.{node_id % 250 + 1}", 7000),
        nat_type=NatType.PUBLIC,
    )
    return NodeDescriptor(address=address, age=age)


def test_bench_event_loop_throughput(benchmark):
    """Schedule-and-run cost of 10k no-op events."""

    def run():
        sim = Simulator(seed=1)
        for index in range(10_000):
            sim.schedule(float(index % 100), lambda: None)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 10_000


def test_bench_view_update(benchmark):
    """One swapper merge of a full view with a typical shuffle subset."""
    rng = random.Random(0)
    view = PartialView(10)
    for node_id in range(1, 11):
        view.add(make_descriptor(node_id, age=node_id))
    received = [make_descriptor(100 + i) for i in range(5)]

    def run():
        sent = view.random_subset(rng, 5)
        view.update_view(sent=sent, received=received, self_id=999)
        return len(view)

    size = benchmark(run)
    assert size <= 10


def test_bench_estimator_round(benchmark):
    """One estimator round: record hits, merge estimates, advance, read the estimate."""
    estimator = RatioEstimator(alpha=25, gamma=50, is_public=True)
    rng = random.Random(1)
    incoming = [RatioEstimate(i, 0.2, age=i % 5) for i in range(10)]

    def run():
        for _ in range(5):
            estimator.record_shuffle_request(rng.random() < 0.2)
        estimator.merge_estimates(incoming)
        estimator.advance_round()
        return estimator.estimate_ratio()

    value = benchmark(run)
    assert 0.0 <= value <= 1.0


def test_bench_croupier_gossip_round(benchmark):
    """Wall-clock cost of one full gossip round for a 100-node Croupier system."""
    scenario = Scenario(ScenarioConfig(protocol="croupier", seed=3, latency="constant"))
    scenario.populate(n_public=20, n_private=80)
    scenario.run_rounds(5)  # warm up views

    def run():
        scenario.run_rounds(1)
        return scenario.live_count()

    live = benchmark(run)
    assert live == 100
