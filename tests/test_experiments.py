"""Integration tests for the experiment harnesses (scaled-down versions of each figure)."""

import pytest

from repro.experiments import (
    quick_croupier_run,
    run_churn_experiment,
    run_failure_experiment,
    run_history_window_experiment,
    run_overhead_experiment,
    run_randomness_experiment,
    run_ratio_sweep_experiment,
    run_system_size_experiment,
)
from repro.experiments.ablations import (
    run_piggyback_bound_ablation,
    run_selection_policy_ablation,
    run_view_representation_ablation,
)
from repro.experiments.base import EstimationExperimentSpec, run_estimation_scenario
from repro.errors import ExperimentError


class TestQuickRun:
    def test_quick_run_summary(self):
        result = quick_croupier_run(n_public=10, n_private=40, rounds=40, seed=3)
        assert result.live_nodes == 50
        assert result.true_ratio == pytest.approx(0.2)
        assert result.final_avg_error is not None and result.final_avg_error < 0.1
        assert result.biggest_cluster_fraction == pytest.approx(1.0)
        assert result.sample_counts["public"] + result.sample_counts["private"] == 200
        assert "estimation error" in result.to_text()


class TestEstimationSpec:
    def test_spec_validation(self):
        with pytest.raises(ExperimentError):
            run_estimation_scenario(
                EstimationExperimentSpec(label="bad", n_public=0, n_private=10)
            )

    def test_series_collected_every_round(self):
        run = run_estimation_scenario(
            EstimationExperimentSpec(
                label="tiny", n_public=5, n_private=20, rounds=20, latency="constant"
            )
        )
        assert len(run.series) == 20
        assert run.live_nodes == 25
        assert run.final_true_ratio == pytest.approx(0.2)


class TestHistoryWindows:
    def test_static_ratio_accuracy_improves_with_larger_windows(self):
        result = run_history_window_experiment(
            dynamic=False,
            n_public=12,
            n_private=48,
            rounds=80,
            window_pairs=((5, 10), (25, 50)),
            public_interarrival_ms=50.0,
            private_interarrival_ms=12.5,
            latency="constant",
            seed=11,
        )
        small = result.run_for(5, 10).series
        large = result.run_for(25, 50).series
        assert small.final_avg_error() is not None
        assert large.final_avg_error() is not None
        # Larger windows give a steadier (not worse) converged estimate.
        assert large.final_avg_error() <= small.final_avg_error() * 1.5
        assert "Figure 1" in result.to_text()

    def test_dynamic_ratio_growth_happens(self):
        result = run_history_window_experiment(
            dynamic=True,
            n_public=10,
            n_private=40,
            rounds=60,
            window_pairs=((5, 10),),
            public_interarrival_ms=20.0,
            private_interarrival_ms=5.0,
            ratio_growth_start_round=20,
            ratio_growth_interval_ms=200.0,
            latency="constant",
            seed=11,
        )
        run = result.runs[0]
        # The true ratio rose above the initial 0.2 because public nodes were added.
        assert run.final_true_ratio > 0.2
        # The estimator followed it: error stays bounded.
        assert run.series.final_avg_error() < 0.15


class TestSystemSizeAndRatioSweep:
    def test_system_size_errors_reported_per_size(self):
        result = run_system_size_experiment(
            sizes=(30, 90), rounds=60, join_window_ms=3_000.0, latency="constant", seed=9
        )
        errors = result.final_avg_errors()
        assert set(errors) == {30, 90}
        assert all(e is not None and e < 0.2 for e in errors.values())
        # Larger systems estimate at least as accurately as tiny ones (paper Figure 3).
        assert errors[90] <= errors[30] * 1.5 + 0.01

    def test_ratio_sweep_reports_all_ratios(self):
        result = run_ratio_sweep_experiment(
            ratios=(0.1, 0.5), total_nodes=60, rounds=60, join_window_ms=2_000.0,
            latency="constant", seed=9,
        )
        errors = result.final_avg_errors()
        assert set(errors) == {0.1, 0.5}
        assert all(e < 0.15 for e in errors.values())


class TestChurn:
    def test_churn_does_not_break_estimation(self):
        result = run_churn_experiment(
            churn_levels=(0.0, 0.05),
            total_nodes=60,
            rounds=70,
            churn_start_round=20,
            join_window_ms=2_000.0,
            latency="constant",
            seed=13,
        )
        calm = result.runs[0.0].series.final_avg_error()
        churned = result.runs[0.05].series.final_avg_error()
        assert calm is not None and churned is not None
        # 5%/round churn should not blow up the estimation error (paper Figure 5).
        assert churned < 0.12


class TestRandomnessOverheadFailure:
    def test_randomness_metrics_shapes(self):
        result = run_randomness_experiment(
            protocols=("croupier", "cyclon"),
            total_nodes=60,
            rounds=40,
            measure_every_rounds=20,
            latency="constant",
            seed=17,
        )
        croupier = result.per_protocol["croupier"]
        cyclon = result.per_protocol["cyclon"]
        assert croupier.in_degree_histogram and cyclon.in_degree_histogram
        assert croupier.path_length.last() is not None
        assert croupier.path_length.last() < 4.0
        assert 0.0 <= croupier.clustering.last() <= 1.0
        assert "Figure 6" in result.to_text()

    def test_overhead_orderings_match_paper(self):
        result = run_overhead_experiment(
            total_nodes=100,
            warmup_rounds=15,
            measure_rounds=20,
            latency="constant",
            seed=19,
        )
        private = result.private_loads()
        public = result.public_loads()
        # The paper's headline: Croupier's private-node overhead is well below Gozar's
        # and Nylon's, and its public-node overhead is also the lowest of the three.
        assert private["croupier"] < 0.5 * private["gozar"]
        assert private["croupier"] < 0.25 * private["nylon"]
        assert public["croupier"] < public["gozar"]
        relative = result.relative_loads()
        assert set(relative) == {"croupier", "gozar", "nylon"}
        assert result.cyclon_baseline_bps() > 0

    def test_failure_experiment_croupier_at_least_as_resilient(self):
        result = run_failure_experiment(
            protocols=("croupier", "gozar"),
            failure_fractions=(0.8,),
            total_nodes=150,
            warmup_rounds=30,
            latency="constant",
            seed=23,
        )
        croupier = result.cluster_at("croupier", 0.8)
        gozar = result.cluster_at("gozar", 0.8)
        assert 0.0 < croupier <= 1.0
        assert croupier >= gozar - 0.05
        assert "Figure 7(b)" in result.to_text()


class TestAblations:
    def test_view_representation_croupier_unbiased(self):
        result = run_view_representation_ablation(
            protocols=("croupier", "cyclon"),
            total_nodes=60,
            rounds=40,
            samples_per_node=10,
            seed=29,
        )
        # Croupier keeps private nodes represented close to their true share; a
        # NAT-oblivious Cyclon under-represents them.
        assert abs(result.representation_bias("croupier")) < 0.15
        assert result.private_fraction_in_samples["croupier"] > result.private_fraction_in_samples["cyclon"]
        assert "Ablation A1" in result.to_text()

    def test_piggyback_bound_tradeoff(self):
        result = run_piggyback_bound_ablation(
            bounds=(0, 10), total_nodes=50, rounds=50, seed=31
        )
        # More piggy-backed estimates -> bigger messages.
        assert result.message_bytes_by_bound[10] > result.message_bytes_by_bound[0]
        # And (weakly) better estimation than sharing nothing at all.
        assert result.avg_error_by_bound[10] <= result.avg_error_by_bound[0] + 0.02

    def test_selection_policy_ablation_runs(self):
        result = run_selection_policy_ablation(total_nodes=40, rounds=40, seed=37)
        assert set(result.avg_error_by_policy) == {"tail", "random"}
        assert all(v is not None for v in result.avg_error_by_policy.values())
